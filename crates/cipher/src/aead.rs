//! Encrypt-then-MAC AEAD with GCM-like length arithmetic.
//!
//! `seal` produces `|plaintext| + 16` bytes — the exact ciphertext
//! expansion of AES-GCM in TLS, which is what makes the paper's Figure 2
//! record-length clusters line up with the JSON payload sizes.

use crate::mac::{tags_equal, Mac128};
use crate::stream::Wm20;
use crate::{Key, Nonce};

/// Tag length in bytes (matches GCM).
pub const TAG_LEN: usize = 16;

/// AEAD failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// Ciphertext shorter than a tag.
    TooShort,
    /// Tag verification failed.
    BadTag,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeadError::TooShort => write!(f, "ciphertext shorter than the tag"),
            AeadError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for AeadError {}

/// Encrypt `plaintext`, authenticating `aad` alongside it.
///
/// Layout: `ciphertext || tag(16)`. The MAC covers
/// `aad || le64(aad.len()) || ciphertext || le64(ct.len())`, closing the
/// usual concatenation ambiguity.
pub fn seal(key: &Key, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sealed_len(plaintext.len()));
    seal_into(key, nonce, aad, plaintext, &mut out);
    out
}

/// [`seal`] appending `ciphertext || tag` to `out` — the hot record
/// paths reuse one output buffer across records instead of allocating
/// per call. Bytes appended are exactly [`sealed_len`]`(plaintext.len())`.
pub fn seal_into(key: &Key, nonce: &Nonce, aad: &[u8], plaintext: &[u8], out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(plaintext);
    // Keystream block 0 is reserved for the MAC key, payload starts at 1
    // (same layout as ChaCha20-Poly1305).
    let cipher = Wm20::new(key, nonce);
    cipher.apply(1, &mut out[start..]);
    let tag = compute_tag(&cipher, aad, &out[start..]);
    out.extend_from_slice(&tag);
}

/// Decrypt and verify a `seal` output.
pub fn open(key: &Key, nonce: &Nonce, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, AeadError> {
    let mut out = Vec::with_capacity(sealed.len().saturating_sub(TAG_LEN));
    open_into(key, nonce, aad, sealed, &mut out)?;
    Ok(out)
}

/// [`open`] appending the recovered plaintext to `out`. Nothing is
/// appended unless the tag verifies.
pub fn open_into(
    key: &Key,
    nonce: &Nonce,
    aad: &[u8],
    sealed: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), AeadError> {
    if sealed.len() < TAG_LEN {
        return Err(AeadError::TooShort);
    }
    let (ct, tag_bytes) = sealed.split_at(sealed.len() - TAG_LEN);
    let cipher = Wm20::new(key, nonce);
    let expect = compute_tag(&cipher, aad, ct);
    let got: [u8; TAG_LEN] = tag_bytes.try_into().expect("tag length");
    if !tags_equal(&expect, &got) {
        return Err(AeadError::BadTag);
    }
    let start = out.len();
    out.extend_from_slice(ct);
    cipher.apply(1, &mut out[start..]);
    Ok(())
}

/// Exact sealed length for a given plaintext length.
pub fn sealed_len(plaintext_len: usize) -> usize {
    plaintext_len + TAG_LEN
}

fn compute_tag(cipher: &Wm20, aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let block0 = cipher.block(0);
    let mac_key: [u8; 16] = block0[..16].try_into().expect("16 bytes");
    let mut mac = Mac128::new(&mac_key);
    mac.update(aad);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(ciphertext);
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = [3; 32];
    const NONCE: Nonce = [5; 12];

    #[test]
    fn seal_open_roundtrip() {
        let sealed = seal(&KEY, &NONCE, b"header", b"secret payload");
        assert_eq!(sealed.len(), sealed_len(14));
        let opened = open(&KEY, &NONCE, b"header", &sealed).unwrap();
        assert_eq!(opened, b"secret payload");
    }

    #[test]
    fn empty_plaintext() {
        let sealed = seal(&KEY, &NONCE, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&KEY, &NONCE, b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn rejects_wrong_aad() {
        let sealed = seal(&KEY, &NONCE, b"aad-1", b"payload");
        assert_eq!(
            open(&KEY, &NONCE, b"aad-2", &sealed),
            Err(AeadError::BadTag)
        );
    }

    #[test]
    fn rejects_wrong_key_or_nonce() {
        let sealed = seal(&KEY, &NONCE, b"", b"payload");
        let mut k2 = KEY;
        k2[0] ^= 1;
        let mut n2 = NONCE;
        n2[0] ^= 1;
        assert_eq!(open(&k2, &NONCE, b"", &sealed), Err(AeadError::BadTag));
        assert_eq!(open(&KEY, &n2, b"", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn rejects_bitflips_anywhere() {
        let sealed = seal(&KEY, &NONCE, b"a", b"some longer plaintext here");
        for i in 0..sealed.len() {
            let mut corrupted = sealed.clone();
            corrupted[i] ^= 0x01;
            assert!(open(&KEY, &NONCE, b"a", &corrupted).is_err(), "byte {i}");
        }
    }

    #[test]
    fn rejects_truncation() {
        let sealed = seal(&KEY, &NONCE, b"", b"payload");
        assert_eq!(
            open(&KEY, &NONCE, b"", &sealed[..10]),
            Err(AeadError::TooShort)
        );
        assert!(open(&KEY, &NONCE, b"", &sealed[..sealed.len() - 1]).is_err());
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let sealed = seal(&KEY, &NONCE, b"", b"AAAAAAAAAAAAAAAAAAAAAAAA");
        assert!(!sealed.windows(4).any(|w| w == b"AAAA"));
    }

    #[test]
    fn aad_not_included_in_output() {
        let with = seal(&KEY, &NONCE, b"long associated data string", b"p");
        let without = seal(&KEY, &NONCE, b"", b"p");
        assert_eq!(with.len(), without.len());
    }
}
