//! The one `BENCH_*.json` serializer and validator every harness
//! binary shares.
//!
//! Each bench used to hand-roll its own report writing and schema
//! check; this module is the single source of truth for the document
//! shape so a drift in one harness cannot silently diverge from what
//! CI's `bench_diff` gate parses. The layout:
//!
//! ```json
//! {"bench":"<name>","metrics":{...},"telemetry":{...},"trace":{...}}
//! ```
//!
//! Serialization is canonical — metric keys sort lexicographically
//! (duplicates collapse, last value wins), telemetry uses the
//! `wm-telemetry` snapshot codec, trace counts come pre-sorted from
//! the `BTreeMap` tally — so the emitted bytes are a pure function of
//! the report's *content*, never of the order a harness pushed
//! metrics in. That is what lets `wm_obs::bench_diff` compare
//! artifacts byte-range by byte-range and CI diff them across runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use wm_telemetry::Snapshot;

use crate::TraceTally;

/// Serialize a bench report: headline metrics (canonically sorted by
/// key), the merged telemetry snapshot (per-stage span timings,
/// per-class record counters, …) and the trace-event summary counts,
/// aggregated across every session the harness ran.
pub fn bench_json(
    name: &str,
    metrics: &[(&str, f64)],
    telemetry: &Snapshot,
    trace: &TraceTally,
) -> String {
    let sorted: BTreeMap<&str, f64> = metrics.iter().copied().collect();
    let mut s = String::with_capacity(512);
    let _ = write!(s, "{{\"bench\":\"{name}\",\"metrics\":{{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{k}\":{v:.6}");
    }
    s.push_str("},\"telemetry\":");
    s.push_str(&telemetry.to_json_string());
    s.push_str(",\"trace\":{");
    for (i, (k, v)) in trace.0.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{k}\":{v}");
    }
    s.push_str("}}");
    s
}

/// Write `BENCH_<name>.json` in the working directory and report where.
pub fn write_bench_json(
    name: &str,
    metrics: &[(&str, f64)],
    telemetry: &Snapshot,
    trace: &TraceTally,
) {
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    match std::fs::write(&path, bench_json(name, metrics, telemetry, trace)) {
        Ok(()) => println!("\n  wrote {}", path.display()),
        Err(e) => eprintln!("\n  could not write {}: {e}", path.display()),
    }
}

/// Validate a bench document: right bench name, and every `required`
/// metric present as a finite, non-negative number. Parsing reuses
/// [`wm_obs::BenchDoc`] — the same reader CI's `bench_diff` gate runs
/// — so "validates in-process" and "diffs in CI" can never disagree
/// about what a well-formed report is.
pub fn validate_bench_json<S: AsRef<str>>(
    json: &str,
    bench: &str,
    required: &[S],
) -> Result<(), String> {
    let doc = wm_obs::BenchDoc::parse(json)?;
    if doc.bench != bench {
        return Err(format!("bench name is {:?}, expected {bench:?}", doc.bench));
    }
    for key in required {
        let key = key.as_ref();
        let Some(value) = doc.metrics.get(key) else {
            return Err(format!("missing required metric {key:?}"));
        };
        if !value.is_finite() || *value < 0.0 {
            return Err(format!("metric {key:?} = {value} out of range"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_keys_serialize_in_canonical_order() {
        let a = bench_json(
            "t",
            &[("zeta", 1.0), ("alpha", 2.0)],
            &Snapshot::default(),
            &TraceTally::default(),
        );
        let b = bench_json(
            "t",
            &[("alpha", 2.0), ("zeta", 1.0)],
            &Snapshot::default(),
            &TraceTally::default(),
        );
        assert_eq!(a, b, "push order must not shape the artifact bytes");
        assert!(a.find("\"alpha\"").unwrap() < a.find("\"zeta\"").unwrap());
    }

    #[test]
    fn duplicate_keys_collapse_last_wins() {
        let json = bench_json(
            "t",
            &[("k", 1.0), ("k", 2.0)],
            &Snapshot::default(),
            &TraceTally::default(),
        );
        assert!(json.contains("\"k\":2.000000"), "{json}");
        assert_eq!(json.matches("\"k\":").count(), 1);
    }

    #[test]
    fn validator_checks_name_presence_and_range() {
        let json = bench_json(
            "demo",
            &[("good", 1.0), ("neg", -1.0)],
            &Snapshot::default(),
            &TraceTally::default(),
        );
        validate_bench_json(&json, "demo", &["good"]).expect("present + finite");
        assert!(validate_bench_json(&json, "other", &["good"])
            .unwrap_err()
            .contains("bench name"));
        assert!(validate_bench_json(&json, "demo", &["absent"])
            .unwrap_err()
            .contains("absent"));
        assert!(validate_bench_json(&json, "demo", &["neg"])
            .unwrap_err()
            .contains("out of range"));
        // Owned keys (dynamic per-intensity names) work too.
        let dynamic: Vec<String> = vec!["good".into()];
        validate_bench_json(&json, "demo", &dynamic).expect("String keys accepted");
    }

    #[test]
    fn validator_rejects_non_json_input() {
        assert!(validate_bench_json("not json", "demo", &["x"]).is_err());
    }
}
