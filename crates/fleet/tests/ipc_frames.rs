//! Byte-level hostility sweep over the process-shard IPC protocol,
//! mirroring the checkpoint truncation proptests: every prefix of
//! every frame must decode to a typed [`FrameError`], every mutated
//! frame must parse to a typed error or a valid message, and a live
//! worker process fed garbage must reply with a typed `Err` and exit —
//! never panic, never hang.

use std::io::{Read, Write};
use std::process::{Command, Stdio};
use std::sync::Arc;

use wm_capture::time::{Duration, SimTime};
use wm_core::IntervalClassifier;
use wm_fleet::{decode_frame, encode_frame, FrameError, RemoteError, Reply, Request, MAX_FRAME};
use wm_json::Value;
use wm_online::OnlineConfig;
use wm_story::bandersnatch::tiny_film;

fn classifier() -> IntervalClassifier {
    IntervalClassifier {
        type1: (10, 20),
        type2: (30, 40),
        slack: 2,
    }
}

/// One encoded frame per request/reply shape the protocol can carry.
fn sample_frames() -> Vec<Vec<u8>> {
    let requests = vec![
        Request::Init {
            shard: 3,
            cfg: OnlineConfig::scaled(20),
            classifier: classifier(),
            graph: Arc::new(tiny_film()),
        },
        Request::Restore(vec![0xDE, 0xAD, 0xBE, 0xEF]),
        Request::Feed {
            time: SimTime(1_234_567),
            victim: 42,
            max_victims: 256,
            frame: vec![0x17; 64],
        },
        Request::Checkpoint {
            taken: SimTime(9_999),
        },
        Request::EvictIdle {
            now: SimTime(50_000),
            idle: Duration::from_micros(10_000),
        },
        Request::FinishAll,
        Request::Drain(vec![1, 2, 3, 40_000]),
        Request::Adopt {
            victim: 7,
            seen: SimTime(88),
            state: Value::object(vec![("k".to_string(), Value::from(1i64))]),
        },
        Request::Shutdown,
    ];
    let replies = vec![
        Reply::Ok,
        Reply::Verdicts {
            verdicts: Vec::new(),
            live: vec![1, 9],
            state_bytes: 4_096,
        },
        Reply::Blob(vec![0x00, 0xFF, 0x7F]),
        Reply::Drained(vec![(5, SimTime(123), Value::from(true))]),
        Reply::Err(RemoteError::Victim(19)),
        Reply::Err(RemoteError::Envelope),
        Reply::Err(RemoteError::Internal),
    ];
    let mut frames = Vec::new();
    for req in &requests {
        let mut buf = Vec::new();
        req.encode(&mut buf);
        frames.push(buf);
    }
    for reply in &replies {
        let mut buf = Vec::new();
        reply.encode(&mut buf);
        frames.push(buf);
    }
    frames
}

#[test]
fn every_prefix_of_every_frame_is_a_typed_incomplete() {
    for (i, frame) in sample_frames().iter().enumerate() {
        // The full frame is valid and self-delimiting.
        let decoded = decode_frame(frame).unwrap_or_else(|e| panic!("frame {i}: {e}"));
        assert_eq!(decoded.consumed, frame.len(), "frame {i}");
        // Every strict prefix reports exactly how many bytes are
        // missing — the contract a stream reader resumes on.
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Err(FrameError::Incomplete { need }) => {
                    let expect = if cut < 4 { 4 - cut } else { frame.len() - cut };
                    assert_eq!(need, expect, "frame {i} prefix {cut}");
                }
                other => panic!("frame {i} prefix {cut}: {other:?}"),
            }
        }
    }
}

#[test]
fn hostile_lengths_and_opcodes_are_typed_never_panics() {
    // Zero length: a frame must carry at least its opcode.
    let mut zero = Vec::new();
    zero.extend_from_slice(&0u32.to_le_bytes());
    zero.push(0x01);
    assert_eq!(decode_frame(&zero), Err(FrameError::Empty));
    // Length beyond the cap is rejected before any allocation.
    for len in [MAX_FRAME + 1, u32::MAX] {
        let mut huge = Vec::new();
        huge.extend_from_slice(&len.to_le_bytes());
        huge.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode_frame(&huge), Err(FrameError::Oversize { len }));
    }
    // Every possible opcode over an empty payload: parses to a valid
    // message or a typed error, never a panic.
    for opcode in 0u16..=255 {
        let opcode = opcode as u8;
        let mut buf = Vec::new();
        encode_frame(opcode, &[], &mut buf);
        let frame = decode_frame(&buf).unwrap();
        let _ = Request::parse(frame.opcode, frame.payload);
        let _ = Reply::parse(frame.opcode, frame.payload);
    }
}

#[test]
fn truncated_and_corrupted_payloads_parse_to_typed_errors() {
    for (i, frame) in sample_frames().iter().enumerate() {
        let full = decode_frame(frame).unwrap();
        let opcode = full.opcode;
        // Truncate the payload at every boundary, re-sealing the
        // header so the damage reaches the typed parser, not the
        // framing layer.
        for cut in 0..full.payload.len() {
            let mut buf = Vec::new();
            encode_frame(opcode, &full.payload[..cut], &mut buf);
            let frame = decode_frame(&buf).unwrap();
            let _ = Request::parse(frame.opcode, frame.payload);
            let _ = Reply::parse(frame.opcode, frame.payload);
        }
        // Flip one byte at every payload position.
        for pos in 0..full.payload.len() {
            let mut payload = full.payload.to_vec();
            payload[pos] ^= 0xFF;
            let mut buf = Vec::new();
            encode_frame(opcode, &payload, &mut buf);
            let frame = decode_frame(&buf).unwrap();
            let _ = Request::parse(frame.opcode, frame.payload);
            let _ = Reply::parse(frame.opcode, frame.payload);
        }
        // Unknown opcode over a valid payload stays typed.
        let mut buf = Vec::new();
        encode_frame(0xEE, full.payload, &mut buf);
        let frame = decode_frame(&buf).unwrap();
        assert!(
            matches!(
                Request::parse(frame.opcode, frame.payload),
                Err(FrameError::UnknownOpcode(0xEE))
            ),
            "frame {i}: request parser must type unknown opcodes"
        );
        assert!(
            matches!(
                Reply::parse(frame.opcode, frame.payload),
                Err(FrameError::UnknownOpcode(0xEE))
            ),
            "frame {i}: reply parser must type unknown opcodes"
        );
    }
}

/// Feed a live worker process hostile bytes: it must answer with a
/// typed `Err` reply and exit nonzero — the supervisor's cue to
/// respawn — instead of hanging on a length it can never satisfy.
#[test]
fn worker_process_rejects_garbage_and_exits() {
    let hostile: Vec<(Vec<u8>, &str, bool)> = vec![
        // Oversize length field.
        (
            (MAX_FRAME + 1).to_le_bytes().to_vec(),
            "oversize header",
            true,
        ),
        // Zero-length frame.
        (0u32.to_le_bytes().to_vec(), "zero-length header", true),
        // Valid header, garbage opcode.
        (
            {
                let mut b = Vec::new();
                encode_frame(0x6B, &[1, 2, 3], &mut b);
                b
            },
            "unknown opcode",
            true,
        ),
        // Request before Init: a protocol-order violation the worker
        // answers with a typed Err, then keeps serving (it exits 0 on
        // the EOF that follows).
        (
            {
                let mut b = Vec::new();
                Request::FinishAll.encode(&mut b);
                b
            },
            "request before init",
            false,
        ),
    ];
    for (bytes, what, expect_nonzero) in hostile {
        let mut child = Command::new(env!("CARGO_BIN_EXE_shard_worker"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn shard_worker");
        // Safety net: a hung worker is a test failure, not a hung CI
        // lane.
        let pid = child.id();
        let reaper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(30));
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        });
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(&bytes)
            .expect("write hostile bytes");
        drop(child.stdin.take());
        let mut out = Vec::new();
        child
            .stdout
            .as_mut()
            .unwrap()
            .read_to_end(&mut out)
            .expect("read reply");
        let status = child.wait().expect("wait worker");
        if expect_nonzero {
            assert!(
                !status.success(),
                "{what}: worker must exit nonzero so the supervisor respawns"
            );
        } else {
            assert!(status.success(), "{what}: worker must survive to EOF");
        }
        let frame = decode_frame(&out).unwrap_or_else(|e| panic!("{what}: unframed reply: {e}"));
        match Reply::parse(frame.opcode, frame.payload) {
            Ok(Reply::Err(_)) => {}
            other => panic!("{what}: expected a typed Err reply, got {other:?}"),
        }
        drop(reaper); // detached; the worker is already dead
    }
    // Clean EOF before any frame is a clean exit, not an error.
    let mut child = Command::new(env!("CARGO_BIN_EXE_shard_worker"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard_worker");
    drop(child.stdin.take());
    let status = child.wait().expect("wait worker");
    assert!(status.success(), "EOF before any frame must exit 0");
}
