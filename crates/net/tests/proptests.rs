//! Property-based tests for the network substrate.
//!
//! Hand-rolled: the offline build environment has no proptest, so each
//! property runs over a few hundred cases drawn from the crate's own
//! seeded `SimRng`. Failures print the case seed for replay.

use wm_net::headers::{build_frame, parse_frame, FlowId, TcpFlags, FRAME_OVERHEAD};
use wm_net::rng::SimRng;
use wm_net::tcp::{unwrap_u32, TcpEndpoint, TcpSegment, MSS};
use wm_net::time::SimTime;

fn arb_flow(rng: &mut SimRng) -> FlowId {
    FlowId {
        src_ip: (rng.next_u64() as u32).to_be_bytes(),
        src_port: rng.next_u64() as u16,
        dst_ip: (rng.next_u64() as u32).to_be_bytes(),
        dst_port: rng.next_u64() as u16,
    }
}

fn arb_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.uniform_u64(0, max_len as u64) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Frames round-trip for any flow, sequence numbers and payload.
#[test]
fn frame_roundtrip() {
    for case in 0..300u64 {
        let mut rng = SimRng::new(0x00F0_0000 + case);
        let flow = arb_flow(&mut rng);
        let seq = rng.next_u64() as u32;
        let ack = rng.next_u64() as u32;
        let ts = rng.next_u64() as u32;
        let id = rng.next_u64() as u16;
        let payload = arb_bytes(&mut rng, 1_599);
        let frame = build_frame(&flow, seq, ack, TcpFlags::PSH_ACK, ts, 0, id, &payload);
        assert_eq!(frame.len(), FRAME_OVERHEAD + payload.len(), "case {case}");
        let (f, tcp, p) = parse_frame(&frame).expect("parse own frame");
        assert_eq!(f, flow, "case {case}");
        assert_eq!(tcp.seq, seq, "case {case}");
        assert_eq!(tcp.ack, ack, "case {case}");
        assert_eq!(tcp.ts_val, ts, "case {case}");
        assert_eq!(p, &payload[..], "case {case}");
    }
}

/// Truncating a frame anywhere never panics the parser.
#[test]
fn frame_parser_total() {
    for case in 0..200u64 {
        let mut rng = SimRng::new(0x00F1_0000 + case);
        let flow = arb_flow(&mut rng);
        let payload = arb_bytes(&mut rng, 199);
        let frame = build_frame(&flow, 1, 2, TcpFlags::ACK, 3, 4, 5, &payload);
        let cut = rng.uniform_u64(0, frame.len() as u64) as usize;
        let _ = parse_frame(&frame[..cut]);
    }
}

/// Flow canonicalization is direction-invariant and idempotent.
#[test]
fn flow_canonical() {
    for case in 0..300u64 {
        let mut rng = SimRng::new(0x00F2_0000 + case);
        let flow = arb_flow(&mut rng);
        let c = flow.canonical();
        assert_eq!(c, flow.reversed().canonical(), "case {case}");
        assert_eq!(c, c.canonical(), "case {case}");
        assert!(c == flow || c == flow.reversed(), "case {case}");
    }
}

/// Sequence unwrap: wrapping any 64-bit offset to 32 bits and
/// unwrapping near the true value recovers it exactly.
#[test]
fn unwrap_recovers() {
    for case in 0..500u64 {
        let mut rng = SimRng::new(0x00F3_0000 + case);
        let base = rng.uniform_u64(0, (1 << 48) - 1);
        let delta = rng.uniform_u64(0, 1 << 21) as i64 - (1 << 20);
        let truth = base.saturating_add_signed(delta);
        let wire = truth as u32;
        assert_eq!(unwrap_u32(base, wire), truth, "case {case}");
    }
}

/// Any byte stream delivered through two TCP endpoints arrives
/// intact, whatever the write chunking.
#[test]
fn tcp_delivers_any_stream() {
    for case in 0..40u64 {
        let mut rng = SimRng::new(0x00F4_0000 + case);
        let data = arb_bytes(&mut rng, 19_999);
        let flow = FlowId {
            src_ip: [10, 0, 0, 1],
            src_port: 40000,
            dst_ip: [10, 0, 0, 2],
            dst_port: 443,
        };
        let mut a = TcpEndpoint::new(flow, 100, 200);
        let mut b = TcpEndpoint::new(flow.reversed(), 200, 100);
        let n_cuts = rng.uniform_u64(0, 5) as usize;
        let mut offsets: Vec<usize> = (0..n_cuts)
            .map(|_| rng.uniform_u64(0, data.len() as u64) as usize)
            .collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        for w in offsets.windows(2) {
            a.write(&data[w[0]..w[1]]);
        }
        let mut to_b: Vec<TcpSegment> = a.flush(SimTime(1));
        let mut to_a: Vec<TcpSegment> = Vec::new();
        let mut received = Vec::new();
        for _ in 0..10_000 {
            if to_a.is_empty() && to_b.is_empty() {
                break;
            }
            for seg in std::mem::take(&mut to_b) {
                let act = b.on_segment(SimTime(2), &seg);
                received.extend(act.delivered);
                to_a.extend(act.to_send);
            }
            for seg in std::mem::take(&mut to_a) {
                let act = a.on_segment(SimTime(2), &seg);
                to_b.extend(act.to_send);
            }
        }
        assert_eq!(received, data, "case {case}");
        assert!(a.fully_acked(), "case {case}");
    }
}

/// Delivery is invariant to segment reordering (reassembly).
#[test]
fn tcp_reorder_invariant() {
    for case in 0..60u64 {
        let mut rng = SimRng::new(0x00F5_0000 + case);
        let mut data = arb_bytes(&mut rng, MSS as u64 as usize * 6 - 1);
        if data.is_empty() {
            data.push(0xaa);
        }
        let flow = FlowId {
            src_ip: [10, 0, 0, 1],
            src_port: 40000,
            dst_ip: [10, 0, 0, 2],
            dst_port: 443,
        };
        let mut a = TcpEndpoint::new(flow, 1, 2);
        let mut b = TcpEndpoint::new(flow.reversed(), 2, 1);
        a.write(&data);
        let mut segs = a.flush(SimTime(1));
        // Fisher–Yates shuffle.
        for i in (1..segs.len()).rev() {
            let j = rng.uniform_u64(0, i as u64) as usize;
            segs.swap(i, j);
        }
        let mut received = Vec::new();
        for seg in &segs {
            received.extend(b.on_segment(SimTime(2), seg).delivered);
        }
        assert_eq!(received, data, "case {case}");
    }
}

/// Duplicated segments never duplicate delivered bytes.
#[test]
fn tcp_duplicate_invariant() {
    for case in 0..60u64 {
        let mut rng = SimRng::new(0x00F6_0000 + case);
        let mut data = arb_bytes(&mut rng, MSS * 3 - 1);
        if data.is_empty() {
            data.push(0xbb);
        }
        let flow = FlowId {
            src_ip: [10, 0, 0, 1],
            src_port: 40000,
            dst_ip: [10, 0, 0, 2],
            dst_port: 443,
        };
        let mut a = TcpEndpoint::new(flow, 1, 2);
        let mut b = TcpEndpoint::new(flow.reversed(), 2, 1);
        a.write(&data);
        let segs = a.flush(SimTime(1));
        let dup_idx = rng.uniform_u64(0, segs.len() as u64 - 1) as usize;
        let mut received = Vec::new();
        for (i, seg) in segs.iter().enumerate() {
            received.extend(b.on_segment(SimTime(2), seg).delivered);
            if i == dup_idx {
                received.extend(b.on_segment(SimTime(2), seg).delivered);
            }
        }
        assert_eq!(received, data, "case {case}");
    }
}
