//! The session event loop.

use crate::config::{SessionConfig, SessionOutput, SessionStats};
use std::collections::VecDeque;
use std::sync::Arc;
use wm_capture::labels::{LabeledRecord, RecordClass};
use wm_capture::tap::Tap;
use wm_cipher::kdf::{derive_key, derive_seed};
use wm_http::{Request, RequestParser, ResponseParser};
use wm_net::headers::{FlowId, TcpFlags, FRAME_OVERHEAD};
use wm_net::link::Link;
use wm_net::queue::{Event, EventQueue, PeerId, TimerKind};
use wm_net::rng::SimRng;
use wm_net::tcp::{TcpEndpoint, TcpSegment};
use wm_net::time::{Duration, SimTime};
use wm_netflix::{NetflixServer, ServerConfig};
use wm_player::{Player, PlayerActions, PlayerTelemetry, RequestKind};
use wm_telemetry::{Histogram, Registry};
use wm_tls::handshake::{simulate_handshake, Sender};
use wm_tls::record::{ContentType, MAX_FRAGMENT, RECORD_HEADER_LEN};
use wm_tls::{RecordEngine, SessionKeys};

/// Session-layer timer kinds (player kinds start at 0x100).
const TCP_RTO: TimerKind = TimerKind(1);
const SERVER_SEND: TimerKind = TimerKind(2);
const HS_FLIGHT: TimerKind = TimerKind(3);
const PLAYER_START: TimerKind = TimerKind(4);

/// Hard ceiling on processed events (runaway guard).
const MAX_EVENTS: u64 = 100_000_000;

/// Run one complete viewing session.
///
/// Deterministic: equal configs produce byte-identical traces.
pub fn run_session(config: &SessionConfig) -> Result<SessionOutput, String> {
    SessionState::new(config).run()
}

struct SessionState<'a> {
    cfg: &'a SessionConfig,
    queue: EventQueue,
    rng: SimRng,

    client_tcp: TcpEndpoint,
    server_tcp: TcpEndpoint,
    client_tls: RecordEngine,
    server_tls: RecordEngine,
    up_link: Link,
    down_link: Link,

    /// Bytes of peer handshake transcript each side must discard before
    /// the record engines take over.
    client_skip: usize,
    server_skip: usize,
    hs_flights: Vec<(Sender, Vec<u8>)>,
    hs_cursor: usize,

    player: Player,
    server: NetflixServer,
    req_parser: RequestParser,
    resp_parser: ResponseParser,
    /// Responses waiting for their service delay.
    server_out: VecDeque<(SimTime, Vec<u8>)>,

    /// (time, segment) pairs the tap observed, ordered at finish.
    tapped: Vec<(SimTime, TcpSegment)>,
    labels: Vec<LabeledRecord>,
    player_done: bool,
    events: u64,

    /// Per-session metric registry (None when telemetry is disabled).
    registry: Option<Registry>,
    spans: Option<SimSpans>,
}

/// Session-layer span histograms: wall-clock time spent in each
/// pipeline stage. Cloning clones `Arc` handles only.
#[derive(Clone)]
struct SimSpans {
    player_ns: Arc<Histogram>,
    server_ns: Arc<Histogram>,
    seal_ns: Arc<Histogram>,
    open_ns: Arc<Histogram>,
}

impl SimSpans {
    fn register(registry: &Registry) -> Self {
        SimSpans {
            player_ns: registry.histogram("sim.player_ns"),
            server_ns: registry.histogram("sim.server_ns"),
            seal_ns: registry.histogram("sim.tls.seal_ns"),
            open_ns: registry.histogram("sim.tls.open_ns"),
        }
    }
}

const CLIENT_FLOW: FlowId = FlowId {
    src_ip: [192, 168, 1, 23],
    src_port: 51_744,
    dst_ip: [198, 38, 120, 10],
    dst_port: 443,
};

impl<'a> SessionState<'a> {
    fn new(cfg: &'a SessionConfig) -> Self {
        let seed = cfg.seed;
        let master = {
            let mut key = [0u8; 32];
            let mut s = derive_seed(seed, "tls master");
            for chunk in key.chunks_mut(8) {
                chunk.copy_from_slice(&wm_cipher::kdf::splitmix64(&mut s).to_le_bytes());
            }
            key
        };
        let keys = SessionKeys {
            client_write: derive_key(&master, "client write key"),
            server_write: derive_key(&master, "server write key"),
            suite: cfg.suite,
        };
        let isn_c = derive_seed(seed, "client isn") as u32;
        let isn_s = derive_seed(seed, "server isn") as u32;

        let hs = simulate_handshake(
            &cfg.profile.handshake_shape(),
            derive_seed(seed, "handshake"),
        );
        let client_hs_bytes: usize = hs
            .iter()
            .filter(|f| f.sender == Sender::Client)
            .map(|f| f.wire.len())
            .sum();
        let server_hs_bytes: usize = hs
            .iter()
            .filter(|f| f.sender == Sender::Server)
            .map(|f| f.wire.len())
            .sum();

        let mut player_cfg = cfg.player.clone();
        if cfg.defense.injects_dummies() {
            player_cfg.dummy_reports = true;
        }
        let mut player = Player::new(
            cfg.profile,
            cfg.graph.clone(),
            cfg.script.clone(),
            player_cfg,
            seed,
        );
        let mut server = NetflixServer::new(
            cfg.graph.clone(),
            ServerConfig {
                media_scale: cfg.media_scale,
            },
        );
        let mut client_tls = RecordEngine::client(&keys);
        let mut server_tls = RecordEngine::server(&keys);
        let mut up_link = Link::new(cfg.conditions.upstream());
        let mut down_link = Link::new(cfg.conditions.downstream());

        // Telemetry attaches observation-only handles; component RNGs
        // and all simulation-visible state are untouched, so a session
        // replays byte-identically with or without it.
        let (registry, spans) = if cfg.telemetry {
            let registry = Registry::new();
            up_link.set_telemetry(wm_net::LinkTelemetry::register(&registry, "up"));
            down_link.set_telemetry(wm_net::LinkTelemetry::register(&registry, "down"));
            client_tls.set_telemetry(wm_tls::EngineTelemetry::register(&registry, "client"));
            server_tls.set_telemetry(wm_tls::EngineTelemetry::register(&registry, "server"));
            player.set_telemetry(PlayerTelemetry::register(&registry));
            server.set_telemetry(wm_netflix::ServerTelemetry::register(&registry));
            let spans = SimSpans::register(&registry);
            (Some(registry), Some(spans))
        } else {
            (None, None)
        };

        SessionState {
            cfg,
            queue: EventQueue::new(),
            rng: SimRng::new(derive_seed(seed, "links")),
            client_tcp: TcpEndpoint::new(CLIENT_FLOW, isn_c, isn_s),
            server_tcp: TcpEndpoint::new(CLIENT_FLOW.reversed(), isn_s, isn_c),
            client_tls,
            server_tls,
            up_link,
            down_link,
            client_skip: server_hs_bytes,
            server_skip: client_hs_bytes,
            hs_flights: hs.into_iter().map(|f| (f.sender, f.wire)).collect(),
            hs_cursor: 0,
            player,
            server,
            req_parser: RequestParser::new(),
            resp_parser: ResponseParser::new(),
            server_out: VecDeque::new(),
            tapped: Vec::new(),
            labels: Vec::new(),
            player_done: false,
            events: 0,
            registry,
            spans,
        }
    }

    fn run(mut self) -> Result<SessionOutput, String> {
        self.emit_syn_exchange();
        // First handshake flight shortly after the TCP handshake.
        self.queue.schedule(
            SimTime(45_000),
            Event::Timer {
                owner: PeerId::Client,
                kind: HS_FLIGHT,
            },
        );

        while let Some((now, event)) = self.queue.pop() {
            self.events += 1;
            if self.events > MAX_EVENTS {
                return Err(format!("event budget exhausted at {now}"));
            }
            match event {
                Event::SegmentArrival { to, segment } => self.on_segment(now, to, &segment),
                Event::Timer { owner, kind } => self.on_timer(now, owner, kind),
            }
        }

        if !self.player_done {
            return Err("queue drained before the session completed".into());
        }

        // Assemble the capture in time order.
        self.tapped.sort_by_key(|(t, _)| *t);
        let mut tap = Tap::new();
        if let Some(reg) = &self.registry {
            tap.set_telemetry(reg);
        }
        let (syn_times, tapped) = (self.syn_times(), std::mem::take(&mut self.tapped));
        tap.record_control(syn_times.0, &CLIENT_FLOW, 0, 0, TcpFlags::SYN);
        tap.record_control(
            syn_times.1,
            &CLIENT_FLOW.reversed(),
            0,
            1,
            TcpFlags::SYN_ACK,
        );
        tap.record_control(syn_times.2, &CLIENT_FLOW, 1, 1, TcpFlags::ACK);
        for (t, seg) in tapped {
            tap.record_segment(t, &seg);
        }
        let packets = tap.len();
        let trace = tap.into_trace();

        let telemetry = match &self.registry {
            Some(reg) => {
                reg.counter("sim.events").add(self.events);
                reg.snapshot()
            }
            None => Default::default(),
        };

        Ok(SessionOutput {
            trace,
            truth: self.player.truth().to_vec(),
            decisions: self.player.decisions(),
            labels: self.labels,
            server_log: self.server.state_log().to_vec(),
            stats: SessionStats {
                duration: self.queue.now(),
                packets_captured: packets,
                client_tcp: self.client_tcp.stats,
                server_tcp: self.server_tcp.stats,
                events: self.events,
            },
            telemetry,
        })
    }

    /// SYN / SYN-ACK / ACK frame times (recorded for pcap realism; the
    /// endpoints start established).
    fn syn_times(&self) -> (SimTime, SimTime, SimTime) {
        (SimTime(1_000), SimTime(19_000), SimTime(38_000))
    }

    fn emit_syn_exchange(&mut self) {
        // Times are nominal; the handshake flights start at 45 ms.
    }

    // ---- event handlers -------------------------------------------------

    fn on_timer(&mut self, now: SimTime, owner: PeerId, kind: TimerKind) {
        match (owner, kind) {
            (_, TCP_RTO) => self.on_rto(now, owner),
            (PeerId::Server, SERVER_SEND) => self.on_server_send(now),
            (PeerId::Client, HS_FLIGHT) => self.on_hs_flight(now),
            (PeerId::Client, PLAYER_START) => {
                let actions = {
                    let spans = self.spans.clone();
                    let _s = spans.as_ref().map(|s| s.player_ns.span());
                    self.player.start(now)
                };
                self.apply_player_actions(now, actions);
            }
            (PeerId::Client, kind) => {
                let actions = {
                    let spans = self.spans.clone();
                    let _s = spans.as_ref().map(|s| s.player_ns.span());
                    self.player.on_timer(now, kind)
                };
                self.apply_player_actions(now, actions);
            }
            _ => {}
        }
    }

    fn on_hs_flight(&mut self, now: SimTime) {
        if self.hs_cursor >= self.hs_flights.len() {
            // Handshake done: hand over to the player.
            self.queue.schedule(
                now + Duration::from_millis(5),
                Event::Timer {
                    owner: PeerId::Client,
                    kind: PLAYER_START,
                },
            );
            return;
        }
        let (sender, wire) = self.hs_flights[self.hs_cursor].clone();
        self.hs_cursor += 1;
        match sender {
            Sender::Client => {
                self.client_tcp.write(&wire);
                self.flush_tcp(now, PeerId::Client);
            }
            Sender::Server => {
                self.server_tcp.write(&wire);
                self.flush_tcp(now, PeerId::Server);
            }
        }
        // Next flight one half-RTT plus processing later.
        self.queue.schedule(
            now + Duration::from_millis(60),
            Event::Timer {
                owner: PeerId::Client,
                kind: HS_FLIGHT,
            },
        );
    }

    fn on_rto(&mut self, now: SimTime, owner: PeerId) {
        let ep = match owner {
            PeerId::Client => &mut self.client_tcp,
            PeerId::Server => &mut self.server_tcp,
        };
        match ep.rto_deadline() {
            Some(d) if now >= d => {
                let segs = ep.on_rto(now);
                for seg in segs {
                    self.send_segment(now, owner.peer(), seg);
                }
                self.arm_rto(now, owner);
            }
            _ => {} // stale or disarmed
        }
    }

    fn on_server_send(&mut self, now: SimTime) {
        while let Some((ready, _)) = self.server_out.front() {
            if *ready > now {
                break;
            }
            let (_, bytes) = self.server_out.pop_front().expect("peeked");
            let wire = {
                let spans = self.spans.clone();
                let _s = spans.as_ref().map(|s| s.seal_ns.span());
                self.server_tls
                    .seal_payload(ContentType::ApplicationData, &bytes)
            };
            self.server_tcp.write(&wire);
        }
        self.flush_tcp(now, PeerId::Server);
    }

    fn on_segment(&mut self, now: SimTime, to: PeerId, seg: &TcpSegment) {
        let actions = match to {
            PeerId::Client => self.client_tcp.on_segment(now, seg),
            PeerId::Server => self.server_tcp.on_segment(now, seg),
        };
        for out in actions.to_send {
            self.send_segment(now, to.peer(), out);
        }
        self.arm_rto(now, to);
        if actions.delivered.is_empty() {
            return;
        }
        match to {
            PeerId::Server => self.server_deliver(now, &actions.delivered),
            PeerId::Client => self.client_deliver(now, &actions.delivered),
        }
    }

    // ---- byte delivery ----------------------------------------------------

    fn server_deliver(&mut self, now: SimTime, bytes: &[u8]) {
        let bytes = skip_bytes(&mut self.server_skip, bytes);
        if bytes.is_empty() {
            return;
        }
        self.server_tls.feed(bytes);
        let records = {
            let spans = self.spans.clone();
            let _s = spans.as_ref().map(|s| s.open_ns.span());
            match self.server_tls.drain_records() {
                Ok(r) => r,
                Err(e) => panic!("server record layer failed: {e}"),
            }
        };
        let mut got_request = false;
        for (_, plaintext) in records {
            let requests = self
                .req_parser
                .feed(&plaintext)
                .unwrap_or_else(|e| panic!("server HTTP parse failed: {e}"));
            for mut req in requests {
                // Server-side decode hook (compression defense).
                if let Some(decoded) = self
                    .cfg
                    .defense
                    .decode_body(req.header_value("content-encoding"), &req.body)
                {
                    req.body = decoded;
                }
                let resp = {
                    let spans = self.spans.clone();
                    let _s = spans.as_ref().map(|s| s.server_ns.span());
                    self.server.handle(&req)
                };
                let delay = Duration::from_micros(400 + self.rng.exponential(300.0) as u64);
                let ready = self
                    .server_out
                    .back()
                    .map(|(t, _)| *t)
                    .unwrap_or(SimTime::ZERO)
                    .max(now + delay);
                self.server_out.push_back((ready, resp.to_bytes()));
                self.queue.schedule(
                    ready,
                    Event::Timer {
                        owner: PeerId::Server,
                        kind: SERVER_SEND,
                    },
                );
                got_request = true;
            }
        }
        let _ = got_request;
    }

    fn client_deliver(&mut self, now: SimTime, bytes: &[u8]) {
        let bytes = skip_bytes(&mut self.client_skip, bytes);
        if bytes.is_empty() {
            return;
        }
        self.client_tls.feed(bytes);
        let records = {
            let spans = self.spans.clone();
            let _s = spans.as_ref().map(|s| s.open_ns.span());
            match self.client_tls.drain_records() {
                Ok(r) => r,
                Err(e) => panic!("client record layer failed: {e}"),
            }
        };
        for (_, plaintext) in records {
            let responses = self
                .resp_parser
                .feed(&plaintext)
                .unwrap_or_else(|e| panic!("client HTTP parse failed: {e}"));
            for resp in responses {
                let actions = {
                    let spans = self.spans.clone();
                    let _s = spans.as_ref().map(|s| s.player_ns.span());
                    self.player.on_response(now, &resp)
                };
                self.apply_player_actions(now, actions);
            }
        }
    }

    // ---- player plumbing ---------------------------------------------------

    fn apply_player_actions(&mut self, now: SimTime, actions: PlayerActions) {
        for out in actions.requests {
            let is_state = matches!(
                out.kind,
                RequestKind::StateType1 | RequestKind::StateType2 | RequestKind::DummyReport
            );
            let writes: Vec<Vec<u8>> = if is_state {
                // A deployed countermeasure controls record framing
                // below the browser's flush quirks; only undefended
                // posts are subject to the rare header/body flush split.
                if out.split_flush && self.cfg.defense == wm_defense::Defense::None {
                    split_at_header_boundary(&out.request)
                } else {
                    self.cfg.defense.encode(&out.request)
                }
            } else {
                vec![out.request.to_bytes()]
            };
            let whole_report = is_state && writes.len() == 1;
            for write in &writes {
                let wire = {
                    let spans = self.spans.clone();
                    let _s = spans.as_ref().map(|s| s.seal_ns.span());
                    self.client_tls
                        .seal_payload(ContentType::ApplicationData, write)
                };
                // Label each record of this write.
                let n_records = write.len().div_ceil(MAX_FRAGMENT).max(1);
                let class = match out.kind {
                    RequestKind::StateType1 if whole_report && n_records == 1 => RecordClass::Type1,
                    RequestKind::StateType2 if whole_report && n_records == 1 => RecordClass::Type2,
                    _ => RecordClass::Other,
                };
                if n_records == 1 {
                    self.labels.push(LabeledRecord {
                        time: now,
                        length: (wire.len() - RECORD_HEADER_LEN) as u16,
                        class,
                    });
                } else {
                    // Fragmented write (never a clean state report).
                    let mut obs = wm_tls::RecordObserver::new();
                    for r in obs.feed(&wire) {
                        self.labels.push(LabeledRecord {
                            time: now,
                            length: r.length,
                            class: RecordClass::Other,
                        });
                    }
                }
                self.client_tcp.write(&wire);
            }
            self.flush_tcp(now, PeerId::Client);
        }
        for (at, kind) in actions.timers {
            // Player callbacks can request timers "now" while the clock
            // already advanced; clamp rather than panic.
            self.queue.schedule(
                at.max(self.queue.now()),
                Event::Timer {
                    owner: PeerId::Client,
                    kind,
                },
            );
        }
        if actions.done {
            self.player_done = true;
        }
    }

    // ---- transmission -------------------------------------------------------

    fn flush_tcp(&mut self, now: SimTime, owner: PeerId) {
        let segs = match owner {
            PeerId::Client => self.client_tcp.flush(now),
            PeerId::Server => self.server_tcp.flush(now),
        };
        for seg in segs {
            self.send_segment(now, owner.peer(), seg);
        }
        self.arm_rto(now, owner);
    }

    fn send_segment(&mut self, now: SimTime, to: PeerId, seg: TcpSegment) {
        let link = match to {
            PeerId::Server => &mut self.up_link,
            PeerId::Client => &mut self.down_link,
        };
        let wire_len = FRAME_OVERHEAD + seg.payload.len();
        let transit = link.transmit(now, wire_len, &mut self.rng);
        if let Some(tap_at) = transit.tap_at {
            self.tapped.push((tap_at, seg.clone()));
        }
        if let Some(at) = transit.arrives_at {
            self.queue
                .schedule(at, Event::SegmentArrival { to, segment: seg });
        }
    }

    fn arm_rto(&mut self, _now: SimTime, owner: PeerId) {
        let deadline = match owner {
            PeerId::Client => self.client_tcp.rto_deadline(),
            PeerId::Server => self.server_tcp.rto_deadline(),
        };
        if let Some(d) = deadline {
            self.queue.schedule(
                d.max(self.queue.now()),
                Event::Timer {
                    owner,
                    kind: TCP_RTO,
                },
            );
        }
    }
}

/// Consume up to `skip` bytes from the front of `bytes`.
fn skip_bytes<'b>(skip: &mut usize, bytes: &'b [u8]) -> &'b [u8] {
    let take = (*skip).min(bytes.len());
    *skip -= take;
    &bytes[take..]
}

/// A flush split writes the HTTP head and the body separately.
fn split_at_header_boundary(req: &Request) -> Vec<Vec<u8>> {
    let bytes = req.to_bytes();
    match bytes.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(pos) if pos + 4 < bytes.len() => {
            vec![bytes[..pos + 4].to_vec(), bytes[pos + 4..].to_vec()]
        }
        _ => vec![bytes],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SessionConfig;
    use std::sync::Arc;
    use wm_capture::flow::FlowReassembler;
    use wm_capture::records::extract_records;
    use wm_defense::Defense;
    use wm_netflix::StateEventKind;
    use wm_player::ViewerScript;
    use wm_story::bandersnatch::{bandersnatch, tiny_film};
    use wm_story::Choice;
    use wm_tls::CipherSuite;

    fn tiny_session(seed: u64, choices: &[Choice]) -> SessionOutput {
        let graph = Arc::new(tiny_film());
        let script = ViewerScript::from_choices(choices, Duration::from_millis(900));
        let cfg = SessionConfig::fast(graph, seed, script);
        run_session(&cfg).expect("session must complete")
    }

    #[test]
    fn tiny_session_completes() {
        let out = tiny_session(1, &[Choice::Default, Choice::NonDefault, Choice::Default]);
        assert_eq!(out.choice_string(), "DND");
        assert!(out.stats.packets_captured > 10);
        assert!(out.stats.duration > SimTime::ZERO);
    }

    #[test]
    fn server_log_matches_truth() {
        let out = tiny_session(
            2,
            &[Choice::NonDefault, Choice::NonDefault, Choice::Default],
        );
        let t1 = out
            .server_log
            .iter()
            .filter(|e| e.kind == StateEventKind::Type1)
            .count();
        let t2 = out
            .server_log
            .iter()
            .filter(|e| e.kind == StateEventKind::Type2)
            .count();
        assert_eq!(t1, 3, "one type-1 per choice point");
        assert_eq!(t2, 2, "one type-2 per non-default pick");
    }

    #[test]
    fn labels_cover_state_posts() {
        let out = tiny_session(
            3,
            &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
        );
        let t1 = out
            .labels
            .iter()
            .filter(|l| l.class == RecordClass::Type1)
            .count();
        let t2 = out
            .labels
            .iter()
            .filter(|l| l.class == RecordClass::Type2)
            .count();
        let split_posts = out
            .truth
            .iter()
            .filter(|e| matches!(e, wm_player::TruthEvent::QuestionShown { .. }))
            .count();
        assert!(t1 <= split_posts);
        // Allow for rare flush splits, but the common case is exact.
        assert!(t1 + 1 >= 3, "type-1 labels {t1}");
        assert_eq!(t2, 2);
    }

    #[test]
    fn telemetry_observes_without_perturbing() {
        let graph = Arc::new(tiny_film());
        let script = ViewerScript::from_choices(
            &[Choice::NonDefault, Choice::Default, Choice::Default],
            Duration::from_millis(900),
        );
        let mut cfg = SessionConfig::fast(graph, 12, script);
        let plain = run_session(&cfg).expect("plain session");
        assert!(
            plain.telemetry.counters.is_empty(),
            "disabled sessions report nothing"
        );

        cfg.telemetry = true;
        let observed = run_session(&cfg).expect("observed session");
        assert_eq!(
            plain.trace.to_pcap_bytes(),
            observed.trace.to_pcap_bytes(),
            "observation must not perturb the simulation"
        );
        assert_eq!(plain.stats.events, observed.stats.events);

        let c = &observed.telemetry.counters;
        assert_eq!(
            c["capture.frames_tapped"],
            observed.stats.packets_captured as u64
        );
        assert_eq!(c["sim.events"], observed.stats.events);
        assert!(c["net.link.up.delivered"] > 0);
        assert!(c["net.link.down.delivered"] > 0);
        assert!(c["tls.client.records_sealed"] > 0);
        assert!(c["tls.server.records_opened"] > 0);
        assert_eq!(
            c["player.requests.state_type1"], 3,
            "one type-1 per question"
        );
        assert_eq!(
            c["player.requests.state_type2"], 1,
            "one type-2 per non-default pick"
        );
        assert_eq!(
            c["netflix.state_posts.type1"], 3,
            "server agrees with player"
        );
        assert_eq!(c["player.requests.chunk"], c["netflix.chunks_served"]);

        let h = &observed.telemetry.histograms;
        for stage in [
            "sim.player_ns",
            "sim.server_ns",
            "sim.tls.seal_ns",
            "sim.tls.open_ns",
        ] {
            assert!(h[stage].count > 0, "{stage} never fired");
        }
    }

    #[test]
    fn deterministic_replay() {
        let a = tiny_session(7, &[Choice::Default, Choice::NonDefault, Choice::Default]);
        let b = tiny_session(7, &[Choice::Default, Choice::NonDefault, Choice::Default]);
        assert_eq!(
            a.trace.to_pcap_bytes(),
            b.trace.to_pcap_bytes(),
            "byte-identical replay"
        );
        assert_eq!(a.stats.events, b.stats.events);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_session(1, &[Choice::Default; 3]);
        let b = tiny_session(2, &[Choice::Default; 3]);
        assert_ne!(a.trace.to_pcap_bytes(), b.trace.to_pcap_bytes());
    }

    #[test]
    fn capture_reassembles_and_extracts_records() {
        let out = tiny_session(4, &[Choice::NonDefault, Choice::Default, Choice::Default]);
        let flows = FlowReassembler::reassemble(&out.trace);
        assert_eq!(flows.len(), 1);
        let up = extract_records(&flows[0].upstream);
        assert!(up.stats.records > 5, "client records: {}", up.stats.records);
        // The type-1 band must be visible in the extracted lengths.
        let t1_band = up
            .records
            .iter()
            .filter(|r| (2200..=2213).contains(&r.record.length))
            .count();
        assert_eq!(
            t1_band, 3,
            "three type-1 posts in the (tiny-film-widened) band"
        );
        let t2_band = up
            .records
            .iter()
            .filter(|r| (2960..=3017).contains(&r.record.length))
            .count();
        assert_eq!(
            t2_band, 1,
            "one type-2 post in the (tiny-film-widened) band"
        );
    }

    #[test]
    fn cbc_suite_sessions_work() {
        let graph = Arc::new(tiny_film());
        let script =
            ViewerScript::from_choices(&[Choice::NonDefault; 3], Duration::from_millis(900));
        let mut cfg = SessionConfig::fast(graph, 5, script);
        cfg.suite = CipherSuite::Cbc;
        let out = run_session(&cfg).expect("cbc session");
        assert_eq!(out.choice_string(), "NNN");
        // CBC quantizes: type-1 lengths are block multiples (+IV).
        for l in out.labels.iter().filter(|l| l.class == RecordClass::Type1) {
            assert_eq!((l.length as usize - 16) % 16, 0, "CBC length {}", l.length);
        }
    }

    #[test]
    fn defenses_run_end_to_end() {
        for defense in [
            Defense::Split { max: 700 },
            Defense::Compress,
            Defense::PadToConstant { size: 4096 },
        ] {
            let graph = Arc::new(tiny_film());
            let script = ViewerScript::from_choices(
                &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
                Duration::from_millis(900),
            );
            let mut cfg = SessionConfig::fast(graph, 6, script);
            cfg.defense = defense;
            let out = run_session(&cfg).unwrap_or_else(|e| panic!("{}: {e}", defense.label()));
            assert_eq!(out.choice_string(), "NDN", "{}", defense.label());
            // The server still understood every state report.
            let t1 = out
                .server_log
                .iter()
                .filter(|e| e.kind == StateEventKind::Type1)
                .count();
            assert_eq!(t1, 3, "{}", defense.label());
        }
    }

    #[test]
    fn padded_posts_have_constant_length() {
        let graph = Arc::new(tiny_film());
        let script =
            ViewerScript::from_choices(&[Choice::NonDefault; 3], Duration::from_millis(900));
        let mut cfg = SessionConfig::fast(graph, 8, script);
        cfg.defense = Defense::PadToConstant { size: 4096 };
        let out = run_session(&cfg).unwrap();
        let state_lens: Vec<u16> = out
            .labels
            .iter()
            .filter(|l| l.class != RecordClass::Other)
            .map(|l| l.length)
            .collect();
        assert!(!state_lens.is_empty());
        assert!(
            state_lens.iter().all(|&l| l == state_lens[0]),
            "padded lengths must be constant: {state_lens:?}"
        );
    }

    #[test]
    fn pad_with_dummies_equalizes_post_pattern() {
        let graph = Arc::new(tiny_film());
        // One default, two non-default picks.
        let script = ViewerScript::from_choices(
            &[Choice::Default, Choice::NonDefault, Choice::NonDefault],
            Duration::from_millis(900),
        );
        let mut cfg = SessionConfig::fast(graph, 31, script);
        cfg.defense = Defense::PadWithDummies { size: 4096 };
        let out = run_session(&cfg).unwrap();
        assert_eq!(out.choice_string(), "DNN");
        // Count padded posts in the capture: every question must have
        // exactly two (type-1 + either the real type-2 or a dummy).
        let flows = FlowReassembler::reassemble(&out.trace);
        let up = extract_records(&flows[0].upstream);
        let padded = up
            .records
            .iter()
            .filter(|r| r.record.length == 4096 + 16)
            .count();
        assert_eq!(padded, 6, "3 questions × 2 posts each");
    }

    #[test]
    fn full_film_fast_session() {
        let graph = Arc::new(bandersnatch());
        // Seed 10 samples a deep path (14 decisions); some seeds hit an
        // early ending after 4 and leave too little traffic for the
        // volume assertions below.
        let script = ViewerScript::sample(10, 14, 0.5);
        let expected: Vec<Choice> = script.choices();
        let mut cfg = SessionConfig::fast(graph, 10, script);
        cfg.player.time_scale = 40;
        let out = run_session(&cfg).expect("bandersnatch session");
        assert!(out.decisions.len() >= 3);
        for (i, (_, c)) in out.decisions.iter().enumerate() {
            assert_eq!(*c, expected[i], "decision {i}");
        }
        // Trace sanity: plenty of traffic in both directions.
        assert!(out.stats.packets_captured > 200);
        assert!(out.stats.client_tcp.bytes_sent > 10_000);
        assert!(out.stats.server_tcp.bytes_sent > 100_000);
    }

    #[test]
    fn lossy_wireless_night_session_completes() {
        let graph = Arc::new(tiny_film());
        let script =
            ViewerScript::from_choices(&[Choice::NonDefault; 3], Duration::from_millis(900));
        // Seed 19 is a run where the lossy link demonstrably forces
        // retransmissions; tiny_film sessions are short enough that
        // some seeds sail through without a single drop.
        let mut cfg = SessionConfig::fast(graph, 19, script);
        cfg.conditions = wm_net::conditions::LinkConditions::new(
            wm_net::conditions::ConnectionType::Wireless,
            wm_net::conditions::TimeOfDay::Night,
        );
        let out = run_session(&cfg).expect("lossy session");
        assert_eq!(out.choice_string(), "NNN");
        // Loss should have forced at least some retransmission over the
        // whole session (probabilistic but overwhelmingly likely given
        // thousands of packets at ~1% loss).
        let rtx = out.stats.client_tcp.retransmissions + out.stats.server_tcp.retransmissions;
        assert!(rtx > 0, "expected retransmissions on a lossy link");
    }
}
