//! # wm-obs — deterministic observability plane
//!
//! Attacker-side infrastructure for *operating* the fleet, layered on
//! [`wm_telemetry`] registries and [`wm_trace`] spans:
//!
//! * [`series`] — a bounded ring of fleet-wide time-series points,
//!   each the merge of per-shard registry deltas taken at one sim-time
//!   observation tick;
//! * [`health`] — the SLO watchdog: per-shard vitals scored into typed
//!   [`HealthState`]s with hysteresis, producing a deterministic
//!   alert stream of [`HealthTransition`]s;
//! * [`export`] — byte-deterministic renderers: JSONL time-series and
//!   Prometheus text exposition of any snapshot;
//! * [`profile`] — a span-derived sim-time profiler emitting
//!   collapsed-stack flamegraph output (inferno/speedscope format)
//!   from [`wm_trace`] span trees;
//! * [`diff`] — the bench-regression gate: compare any `BENCH_*.json`
//!   against a committed baseline with per-metric tolerance bands
//!   (`bench_diff` CLI, exit 0/1/2 like `trace_diff`).
//!
//! Everything here observes; nothing feeds back into simulated bytes.
//! All iteration is over ordered containers and all timestamps are
//! simulation time, so every export is byte-identical across worker
//! and shard counts.

pub mod diff;
pub mod export;
pub mod health;
pub mod profile;
pub mod series;

pub use diff::{bench_diff, diff_exit_code, Band, BenchDoc, DiffReport, MetricDiff};
pub use export::{prometheus_text, sanitize_metric_name};
pub use health::{
    FleetStatus, HealthState, HealthTransition, ShardVitals, SloThresholds, Watchdog,
};
pub use profile::{collapse_jsonl, collapse_spans};
pub use series::{SeriesPoint, SeriesRing};
