//! Property-based tests for the symmetric primitives.
//!
//! Hand-rolled: the offline build environment has no proptest, so each
//! property runs over a few hundred cases drawn from a local splitmix64
//! driver. Failures print the case number for replay.

use wm_cipher::block::{cbc_ciphertext_len, BlockCipher, BLOCK};
use wm_cipher::{open, seal, Mac128, Wm20};

/// Minimal splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len + 1);
        (0..len).map(|_| self.next() as u8).collect()
    }
    fn array<const N: usize>(&mut self) -> [u8; N] {
        let mut a = [0u8; N];
        for b in &mut a {
            *b = self.next() as u8;
        }
        a
    }
}

/// Stream cipher: apply twice restores plaintext for any input.
#[test]
fn wm20_involution() {
    for case in 0..200u64 {
        let mut rng = Rng(0xC1_0000 + case);
        let key: [u8; 32] = rng.array();
        let nonce: [u8; 12] = rng.array();
        let counter = rng.next() as u32;
        let data = rng.bytes(2047);
        let cipher = Wm20::new(&key, &nonce);
        let mut buf = data.clone();
        cipher.apply(counter, &mut buf);
        cipher.apply(counter, &mut buf);
        assert_eq!(buf, data, "case {case}");
    }
}

/// AEAD round-trips any payload and AAD.
#[test]
fn aead_roundtrip() {
    for case in 0..200u64 {
        let mut rng = Rng(0xC2_0000 + case);
        let key: [u8; 32] = rng.array();
        let nonce: [u8; 12] = rng.array();
        let aad = rng.bytes(63);
        let plain = rng.bytes(2047);
        let sealed = seal(&key, &nonce, &aad, &plain);
        assert_eq!(
            sealed.len(),
            plain.len() + wm_cipher::TAG_LEN,
            "case {case}"
        );
        let opened = open(&key, &nonce, &aad, &sealed).expect("authentic");
        assert_eq!(opened, plain, "case {case}");
    }
}

/// Any single-bit flip in the sealed blob is rejected.
#[test]
fn aead_rejects_any_flip() {
    for case in 0..300u64 {
        let mut rng = Rng(0xC3_0000 + case);
        let key: [u8; 32] = rng.array();
        let nonce: [u8; 12] = rng.array();
        let plain = {
            let mut p = rng.bytes(255);
            if p.is_empty() {
                p.push(1);
            }
            p
        };
        let sealed = seal(&key, &nonce, b"aad", &plain);
        let mut corrupt = sealed.clone();
        let i = rng.below(corrupt.len());
        let bit = rng.below(8) as u8;
        corrupt[i] ^= 1 << bit;
        assert!(open(&key, &nonce, b"aad", &corrupt).is_err(), "case {case}");
    }
}

/// CBC round-trips any plaintext; ciphertext length is the exact
/// pad-to-block arithmetic the TLS suite model relies on.
#[test]
fn cbc_roundtrip() {
    for case in 0..200u64 {
        let mut rng = Rng(0xC4_0000 + case);
        let key: [u8; 32] = rng.array();
        let iv: [u8; 16] = rng.array();
        let plain = rng.bytes(1023);
        let cipher = BlockCipher::new(&key);
        let sealed = cipher.cbc_encrypt(&iv, &plain);
        assert_eq!(
            sealed.len(),
            BLOCK + cbc_ciphertext_len(plain.len()),
            "case {case}"
        );
        let opened = cipher.cbc_decrypt(&sealed);
        assert_eq!(opened.as_deref(), Some(&plain[..]), "case {case}");
    }
}

/// Block encrypt/decrypt are inverse bijections on every block.
#[test]
fn block_bijection() {
    for case in 0..300u64 {
        let mut rng = Rng(0xC5_0000 + case);
        let key: [u8; 32] = rng.array();
        let block: [u8; 16] = rng.array();
        let cipher = BlockCipher::new(&key);
        let mut b = block;
        cipher.encrypt_block(&mut b);
        cipher.decrypt_block(&mut b);
        assert_eq!(b, block, "case {case}");
    }
}

/// MAC is invariant under arbitrary chunking of the input.
#[test]
fn mac_chunking_invariant() {
    for case in 0..200u64 {
        let mut rng = Rng(0xC6_0000 + case);
        let key: [u8; 16] = rng.array();
        let data = rng.bytes(511);
        let whole = Mac128::tag(&key, &data);
        let n_cuts = rng.below(8);
        let mut offsets: Vec<usize> = (0..n_cuts).map(|_| rng.below(data.len() + 1)).collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        let mut mac = Mac128::new(&key);
        for w in offsets.windows(2) {
            mac.update(&data[w[0]..w[1]]);
        }
        assert_eq!(mac.finalize(), whole, "case {case}");
    }
}

/// Different nonces never produce identical ciphertexts for
/// non-empty plaintexts (keystream reuse detector).
#[test]
fn nonce_separation() {
    for case in 0..200u64 {
        let mut rng = Rng(0xC7_0000 + case);
        let key: [u8; 32] = rng.array();
        let n1: [u8; 12] = rng.array();
        let n2: [u8; 12] = rng.array();
        if n1 == n2 {
            continue;
        }
        let plain = {
            let mut p = rng.bytes(127);
            while p.len() < 16 {
                p.push(rng.next() as u8);
            }
            p
        };
        let a = seal(&key, &n1, b"", &plain);
        let b = seal(&key, &n2, b"", &plain);
        assert_ne!(a, b, "case {case}");
    }
}
