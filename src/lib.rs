//! # white-mirror — reproduction of the White Mirror attack
//!
//! A from-scratch Rust reproduction of *"White Mirror: Leaking Sensitive
//! Information from Interactive Netflix Movies using Encrypted Traffic
//! Analysis"* (Mitra et al., SIGCOMM 2019 posters): a passive
//! eavesdropper recovers the choices a viewer makes inside *Black
//! Mirror: Bandersnatch* from nothing but TLS record lengths.
//!
//! This facade crate re-exports the whole workspace. The pipeline, end
//! to end:
//!
//! ```text
//! story graph ──> player ──TLS/TCP──> link+tap ──> Netflix server
//!   (wm-story)   (wm-player)  (wm-tls,wm-net)        (wm-netflix)
//!                                  │
//!                                pcap (wm-capture)
//!                                  │
//!                        White Mirror attack (wm-core)
//!                                  │
//!                         the viewer's choices
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use white_mirror::prelude::*;
//!
//! // One viewing session of the (reconstructed) Bandersnatch graph.
//! let graph = Arc::new(story::bandersnatch::bandersnatch());
//! let script = ViewerScript::sample(7, 14, 0.5);
//! let mut cfg = SessionConfig::fast(graph.clone(), 7, script);
//! cfg.player.time_scale = 40; // fast playback for the doctest
//! let session = run_session(&cfg).unwrap();
//!
//! // Train the attack on a different, labelled session…
//! let train_cfg = SessionConfig::fast(graph.clone(), 8, ViewerScript::sample(8, 14, 0.5));
//! let train = run_session(&{ let mut c = train_cfg; c.player.time_scale = 40; c }).unwrap();
//! let attack = WhiteMirror::train(&train.labels, WhiteMirrorConfig::scaled(40)).unwrap();
//!
//! // …and read the victim's choices out of the raw capture.
//! let (decoded, accuracy) = attack.evaluate(&session.trace, &graph, &session.decisions);
//! assert!(accuracy.accuracy() > 0.85);
//! assert_eq!(decoded.choices.len(), session.decisions.len());
//! ```

pub use wm_baselines as baselines;
pub use wm_behavior as behavior;
pub use wm_capture as capture;
pub use wm_chaos as chaos;
pub use wm_cipher as cipher;
pub use wm_core as core;
pub use wm_dataset as dataset;
pub use wm_defense as defense;
pub use wm_fleet as fleet;
pub use wm_http as http;
pub use wm_json as json;
pub use wm_net as net;
pub use wm_netflix as netflix;
pub use wm_obs as obs;
pub use wm_online as online;
pub use wm_player as player;
pub use wm_sim as sim;
pub use wm_story as story;
pub use wm_telemetry as telemetry;
pub use wm_tls as tls;
pub use wm_trace as trace;

/// The names most programs need.
pub mod prelude {
    pub use wm_capture::{RecordClass, Trace};
    pub use wm_chaos::{FaultEvent, FaultKind, FaultPlan, ShardFaultPlan};
    pub use wm_core::{WhiteMirror, WhiteMirrorConfig};
    pub use wm_dataset::{run_dataset, try_run_dataset, DatasetSpec, SimOptions};
    pub use wm_defense::Defense;
    pub use wm_fleet::{Fleet, FleetConfig, FleetReport};
    pub use wm_net::conditions::{ConnectionType, LinkConditions, TimeOfDay};
    pub use wm_online::{OnlineConfig, OnlineDecoder, OnlineVerdict};
    pub use wm_player::{Profile, ViewerScript};
    pub use wm_sim::{run_session, run_session_lossy, SessionConfig, SessionError, SessionOutput};
    pub use wm_story::{self as story, Choice, StoryGraph};
    pub use wm_tls::CipherSuite;
    pub use wm_trace::{counts_by_name, export_chrome_trace, export_jsonl, trace_diff, TraceEvent};
}
