//! Core types of the interactive film model.

/// Index of a segment within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u16);

/// Index of a choice point within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChoicePointId(pub u16);

/// A viewer's pick at one choice point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Choice {
    /// The option Netflix prefetches (the paper's `Si`).
    Default,
    /// The other option (the paper's `Si'`): picking it cancels the
    /// prefetch and triggers the extra type-2 state report.
    NonDefault,
}

impl Choice {
    /// Option index: default = 0, non-default = 1.
    pub fn index(self) -> usize {
        match self {
            Choice::Default => 0,
            Choice::NonDefault => 1,
        }
    }

    pub fn from_index(i: usize) -> Option<Choice> {
        match i {
            0 => Some(Choice::Default),
            1 => Some(Choice::NonDefault),
            _ => None,
        }
    }

    /// The other option.
    pub fn flipped(self) -> Choice {
        match self {
            Choice::Default => Choice::NonDefault,
            Choice::NonDefault => Choice::Default,
        }
    }
}

/// Behavioural meaning of picking an option — the vocabulary the viewer
/// behaviour model (`wm-behavior`) keys its preferences on, and what an
/// adversary ultimately profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChoiceTag {
    /// Familiar, safe, comforting picks (the known cereal, the hit tape).
    Comfort,
    /// Novel or contrarian picks.
    Novelty,
    /// Doing what an authority figure suggests.
    Compliance,
    /// Refusing, talking back, acting out.
    Defiance,
    /// Violent options.
    Violence,
    /// Sparing, de-escalating options.
    Mercy,
    /// Suspicious, conspiratorial readings of events.
    Paranoia,
    /// Grounded, skeptical readings.
    Rationality,
    /// Dwelling on the past.
    Nostalgia,
    /// Physically or socially risky picks.
    Risk,
    /// Retreating inward, refusing help.
    Withdrawal,
    /// Opening up, accepting help.
    Engagement,
}

impl ChoiceTag {
    /// All tags (for summaries and property tests).
    pub const ALL: [ChoiceTag; 12] = [
        ChoiceTag::Comfort,
        ChoiceTag::Novelty,
        ChoiceTag::Compliance,
        ChoiceTag::Defiance,
        ChoiceTag::Violence,
        ChoiceTag::Mercy,
        ChoiceTag::Paranoia,
        ChoiceTag::Rationality,
        ChoiceTag::Nostalgia,
        ChoiceTag::Risk,
        ChoiceTag::Withdrawal,
        ChoiceTag::Engagement,
    ];

    pub fn label(self) -> &'static str {
        match self {
            ChoiceTag::Comfort => "comfort",
            ChoiceTag::Novelty => "novelty",
            ChoiceTag::Compliance => "compliance",
            ChoiceTag::Defiance => "defiance",
            ChoiceTag::Violence => "violence",
            ChoiceTag::Mercy => "mercy",
            ChoiceTag::Paranoia => "paranoia",
            ChoiceTag::Rationality => "rationality",
            ChoiceTag::Nostalgia => "nostalgia",
            ChoiceTag::Risk => "risk",
            ChoiceTag::Withdrawal => "withdrawal",
            ChoiceTag::Engagement => "engagement",
        }
    }
}

/// One selectable option at a choice point.
#[derive(Debug, Clone)]
pub struct ChoiceOption {
    /// On-screen caption.
    pub label: &'static str,
    /// Segment played if this option is picked.
    pub target: SegmentId,
    /// Behavioural meaning of picking it.
    pub tags: &'static [ChoiceTag],
}

/// A two-option choice point (Bandersnatch is strictly binary).
///
/// `options[0]` is the **default** branch — the one the player
/// prefetches and auto-selects when the 10-second timer lapses.
#[derive(Debug, Clone)]
pub struct ChoicePoint {
    pub id: ChoicePointId,
    /// The on-screen question ("Frosties or Sugar Puffs?").
    pub question: &'static str,
    pub options: [ChoiceOption; 2],
}

impl ChoicePoint {
    /// The option a [`Choice`] refers to.
    pub fn option(&self, choice: Choice) -> &ChoiceOption {
        &self.options[choice.index()]
    }

    /// The prefetched branch target.
    pub fn default_target(&self) -> SegmentId {
        self.options[0].target
    }
}

/// What playback does when a segment's content is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentEnd {
    /// Present a choice point.
    Choice(ChoicePointId),
    /// Continue straight into another segment (scene boundary without a
    /// viewer decision — these exist because segments are also split at
    /// technical boundaries).
    Continue(SegmentId),
    /// An ending: playback stops (credits).
    Ending,
}

/// One linear piece of content.
#[derive(Debug, Clone)]
pub struct Segment {
    pub id: SegmentId,
    /// Descriptive name ("cereal choice aftermath"), not script text.
    pub name: &'static str,
    /// Playback duration in seconds.
    pub duration_secs: u32,
    pub end: SegmentEnd,
}

impl Segment {
    /// True if this segment rolls credits.
    pub fn is_ending(&self) -> bool {
        matches!(self.end, SegmentEnd::Ending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_index_roundtrip() {
        assert_eq!(Choice::from_index(0), Some(Choice::Default));
        assert_eq!(Choice::from_index(1), Some(Choice::NonDefault));
        assert_eq!(Choice::from_index(2), None);
        for c in [Choice::Default, Choice::NonDefault] {
            assert_eq!(Choice::from_index(c.index()), Some(c));
            assert_eq!(c.flipped().flipped(), c);
        }
    }

    #[test]
    fn tags_have_unique_labels() {
        let mut labels: Vec<&str> = ChoiceTag::ALL.iter().map(|t| t.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), ChoiceTag::ALL.len());
    }

    #[test]
    fn choice_point_accessors() {
        let cp = ChoicePoint {
            id: ChoicePointId(0),
            question: "q?",
            options: [
                ChoiceOption {
                    label: "a",
                    target: SegmentId(1),
                    tags: &[ChoiceTag::Comfort],
                },
                ChoiceOption {
                    label: "b",
                    target: SegmentId(2),
                    tags: &[ChoiceTag::Novelty],
                },
            ],
        };
        assert_eq!(cp.default_target(), SegmentId(1));
        assert_eq!(cp.option(Choice::NonDefault).target, SegmentId(2));
    }
}
