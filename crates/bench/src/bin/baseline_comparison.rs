//! E7 / **§II's claim**: "inter-video features cannot be used to
//! differentiate between segments from the same video."
//!
//! Prior-work feature sets, re-implemented as choice decoders and run
//! on the same captures as White Mirror. The baselines are handed the
//! ground-truth question times for free and still hover at the
//! majority-class floor, because every branch of one title streams on
//! the same bitrate ladder.
//!
//! ```sh
//! cargo run --release -p wm-bench --bin baseline_comparison
//! ```

use wm_baselines::{BitrateBaseline, BurstKnnBaseline, LabeledWindow, MajorityBaseline};
use wm_bench::{graph, harness_cfg, write_bench_json, TraceTally, TIME_SCALE};
use wm_core::{choice_accuracy, ChoiceAccuracy, DecodedChoice, WhiteMirror, WhiteMirrorConfig};
use wm_net::time::{Duration, SimTime};
use wm_player::{TruthEvent, ViewerScript};
use wm_sim::{run_session, SessionOutput};
use wm_story::{Choice, ChoicePointId};
use wm_telemetry::Snapshot;

const TRAIN_SESSIONS: u64 = 8;
const VICTIMS: u64 = 8;

fn main() {
    let graph = graph();
    println!("=== §II baseline comparison (E7): intra-video choice recovery ===\n");

    // --- build the corpus -------------------------------------------------
    let train: Vec<SessionOutput> = (0..TRAIN_SESSIONS)
        .map(|i| {
            let seed = 90_000 + i;
            run_session(&harness_cfg(
                &graph,
                seed,
                ViewerScript::sample(seed, 14, 0.5),
            ))
            .expect("training session")
        })
        .collect();
    let victims: Vec<SessionOutput> = (0..VICTIMS)
        .map(|i| {
            let seed = 91_000 + i;
            run_session(&harness_cfg(
                &graph,
                seed,
                ViewerScript::sample(seed, 14, 0.5),
            ))
            .expect("victim session")
        })
        .collect();

    // --- White Mirror (finds its own question times) ----------------------
    let mut labels = Vec::new();
    for t in &train {
        labels.extend(t.labels.iter().copied());
    }
    let attack = WhiteMirror::train(&labels, WhiteMirrorConfig::scaled(TIME_SCALE)).expect("train");
    let mut wm_acc = ChoiceAccuracy::default();
    for v in &victims {
        let (_, acc) = attack.evaluate(&v.trace, &graph, &v.decisions);
        wm_acc.merge(&acc);
    }

    // --- baselines (question times given for free) ------------------------
    let train_windows: Vec<Vec<LabeledWindow>> = train.iter().map(windows_of).collect();
    let train_refs: Vec<(&wm_capture::Trace, &[LabeledWindow])> = train
        .iter()
        .zip(train_windows.iter())
        .map(|(s, w)| (&s.trace, w.as_slice()))
        .collect();
    let post_window = Duration::from_secs_f64(30.0 / TIME_SCALE as f64);
    let bitrate = BitrateBaseline::train(&train_refs, post_window);
    let burst = BurstKnnBaseline::train(
        &train_refs,
        Duration::from_secs_f64(5.0 / TIME_SCALE as f64),
        6,
        3,
    );
    let mut majority = MajorityBaseline::default();
    for w in train_windows.iter().flatten() {
        majority.observe(w.choice);
    }

    let mut bitrate_acc = ChoiceAccuracy::default();
    let mut burst_acc = ChoiceAccuracy::default();
    let mut majority_acc = ChoiceAccuracy::default();
    for v in &victims {
        let questions: Vec<(ChoicePointId, SimTime)> = windows_of(v)
            .iter()
            .map(|w| (w.cp, w.question_time))
            .collect();
        bitrate_acc.merge(&score(&bitrate.decode(&v.trace, &questions), v));
        burst_acc.merge(&score(&burst.decode(&v.trace, &questions), v));
        let maj: Vec<Choice> = questions.iter().map(|_| majority.predict()).collect();
        majority_acc.merge(&score(&maj, v));
    }

    println!(
        "{:<44} {:>10} {:>16}",
        "technique", "accuracy", "question times"
    );
    let rows = [
        (
            "White Mirror (record lengths, this paper)",
            wm_acc,
            "self-recovered",
        ),
        (
            "bitrate fingerprint (Reed–Kranch style)",
            bitrate_acc,
            "given",
        ),
        (
            "burst-series kNN (Beauty-and-the-Burst)",
            burst_acc,
            "given",
        ),
        ("majority class (floor)", majority_acc, "given"),
    ];
    for (name, acc, times) in rows {
        println!(
            "{:<44} {:>9.1}% {:>16}",
            name,
            100.0 * acc.accuracy(),
            times
        );
    }
    println!(
        "\n{} choices evaluated per technique; paper's claim holds: downstream",
        wm_acc.total
    );
    println!("volume/burst features cannot separate branches of one title, while the");
    println!("upstream state-report lengths recover the full choice sequence.");

    let mut telemetry = Snapshot::default();
    let mut tally = TraceTally::default();
    for s in train.iter().chain(victims.iter()) {
        telemetry.merge(&s.telemetry);
        tally.observe(&s.trace_events);
    }
    write_bench_json(
        "baseline_comparison",
        &[
            ("white_mirror_accuracy", wm_acc.accuracy()),
            ("bitrate_accuracy", bitrate_acc.accuracy()),
            ("burst_knn_accuracy", burst_acc.accuracy()),
            ("majority_accuracy", majority_acc.accuracy()),
            ("choices_total", wm_acc.total as f64),
        ],
        &telemetry,
        &tally,
    );
}

/// Ground-truth (cp, choice, question time) triples of a session.
fn windows_of(s: &SessionOutput) -> Vec<LabeledWindow> {
    let mut questions: Vec<(ChoicePointId, SimTime)> = Vec::new();
    for e in &s.truth {
        if let TruthEvent::QuestionShown { time, cp } = e {
            questions.push((*cp, *time));
        }
    }
    questions
        .into_iter()
        .zip(s.decisions.iter())
        .map(|((cp, t), (_, choice))| LabeledWindow {
            cp,
            choice: *choice,
            question_time: t,
        })
        .collect()
}

fn score(picks: &[Choice], s: &SessionOutput) -> ChoiceAccuracy {
    let decoded: Vec<DecodedChoice> = picks
        .iter()
        .zip(s.decisions.iter())
        .map(|(c, (cp, _))| DecodedChoice {
            cp: *cp,
            choice: *c,
            time: SimTime::ZERO,
            observed: true,
            confidence: 1.0,
        })
        .collect();
    choice_accuracy(&decoded, &s.decisions)
}
