//! Typed session failures.
//!
//! A faulted session that cannot complete (event budget blown, the
//! queue drained with the player stuck, a record layer or HTTP parser
//! desynced beyond recovery) surfaces *what* failed, *when* in sim
//! time, and in which player phase — instead of a bare string. The
//! partial capture up to the failure point is still available via
//! [`crate::session::run_session_lossy`].

use std::fmt;
use wm_net::time::SimTime;
use wm_player::PlayerPhase;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionErrorKind {
    /// The event loop hit its runaway guard.
    EventBudgetExhausted,
    /// The queue drained before the player finished (deadlock: e.g. a
    /// blackout outlived every retry timer).
    QueueDrained,
    /// A TLS record layer failed to open a record.
    RecordLayer { side: Side, detail: String },
    /// An HTTP parser rejected a reassembled byte stream.
    HttpParse { side: Side, detail: String },
}

/// Which endpoint's pipeline failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Client,
    Server,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Client => write!(f, "client"),
            Side::Server => write!(f, "server"),
        }
    }
}

/// A session that could not run to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionError {
    pub kind: SessionErrorKind,
    /// Player phase at the failure point.
    pub phase: PlayerPhase,
    /// Sim time at the failure point.
    pub at: SimTime,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SessionErrorKind::EventBudgetExhausted => {
                write!(f, "event budget exhausted")?;
            }
            SessionErrorKind::QueueDrained => {
                write!(f, "queue drained before the session completed")?;
            }
            SessionErrorKind::RecordLayer { side, detail } => {
                write!(f, "{side} record layer failed: {detail}")?;
            }
            SessionErrorKind::HttpParse { side, detail } => {
                write!(f, "{side} HTTP parse failed: {detail}")?;
            }
        }
        write!(f, " (phase {:?}, at {})", self.phase, self.at)
    }
}

impl std::error::Error for SessionError {}
