//! Compare a candidate `BENCH_*.json` against a committed baseline.
//!
//! ```sh
//! cargo run --release -p wm-obs --bin bench_diff -- \
//!     baselines/BENCH_fleet.json BENCH_fleet.json \
//!     [--band metric=exact|any|ratio:0.15|abs:3]...
//! ```
//!
//! Exit codes (same contract as `trace_diff`):
//! 0 = all metrics within their tolerance bands,
//! 1 = regression (out-of-band or missing metric),
//! 2 = usage, I/O, or parse error.

use std::collections::BTreeMap;
use std::process::ExitCode;

use wm_obs::{diff_exit_code, Band};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut bands: BTreeMap<String, Band> = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--band" => {
                let Some(spec) = args.get(i + 1) else {
                    eprintln!("bench_diff: --band needs metric=band");
                    return ExitCode::from(2);
                };
                let Some((metric, band)) = spec.split_once('=') else {
                    eprintln!("bench_diff: bad --band spec {spec:?} (want metric=band)");
                    return ExitCode::from(2);
                };
                match Band::parse(band) {
                    Ok(b) => {
                        bands.insert(metric.to_string(), b);
                    }
                    Err(e) => {
                        eprintln!("bench_diff: {e}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                paths.push(other.to_string());
                i += 1;
            }
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <candidate.json> [--band metric=band]...");
        return ExitCode::from(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("bench_diff: cannot read {path}: {e}");
        })
    };
    let Ok(baseline) = read(baseline_path) else {
        return ExitCode::from(2);
    };
    let Ok(candidate) = read(candidate_path) else {
        return ExitCode::from(2);
    };
    let (code, rendered) = diff_exit_code(&baseline, &candidate, &bands);
    print!("{rendered}");
    ExitCode::from(code)
}
