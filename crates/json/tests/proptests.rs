//! Property-based tests for the JSON substrate.
//!
//! The invariants here are load-bearing for the whole reproduction: the
//! attack's observable is a serialized length, so the length oracle, the
//! serializer and the parser must agree on every representable document.

use proptest::prelude::*;
use wm_json::{parse, to_bytes, Number, Value};

/// Strategy producing arbitrary JSON values of bounded depth/size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(|v| Value::Num(Number::Int(v))),
        any::<i64>().prop_map(|v| Value::Num(Number::Fixed3(v))),
        // Strings over a mix of plain text, quotes, controls and non-ASCII.
        "[a-zA-Z0-9 \"\\\\\\t\\n\u{1}é世]{0,24}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec(("[a-zA-Z0-9_\" ]{0,12}", inner), 0..6)
                .prop_map(|members| Value::Object(
                    members.into_iter().map(|(k, v)| (k, v)).collect()
                )),
        ]
    })
}

proptest! {
    /// `serialized_len` is an exact oracle for `to_bytes().len()`.
    #[test]
    fn length_oracle_is_exact(v in arb_value()) {
        prop_assert_eq!(to_bytes(&v).len(), v.serialized_len());
    }

    /// Everything the serializer emits parses back to the same tree.
    #[test]
    fn serializer_parser_roundtrip(v in arb_value()) {
        let bytes = to_bytes(&v);
        let parsed = parse(&bytes).ok();
        prop_assert_eq!(parsed.as_ref(), Some(&v));
    }

    /// The serializer's output is valid UTF-8 (JSON text requirement).
    #[test]
    fn output_is_utf8(v in arb_value()) {
        prop_assert!(std::str::from_utf8(&to_bytes(&v)).is_ok());
    }

    /// The parser never panics on arbitrary input bytes.
    #[test]
    fn parser_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse(&bytes);
    }

    /// Parsing arbitrary ASCII that may look JSON-ish never panics and, if
    /// it succeeds, reserializing yields a parseable document again.
    #[test]
    fn reparse_stability(s in "[\\[\\]{}\",:0-9a-z.\\- ]{0,64}") {
        if let Ok(v) = parse(s.as_bytes()) {
            let bytes = to_bytes(&v);
            prop_assert_eq!(parse(&bytes).ok(), Some(v));
        }
    }
}
