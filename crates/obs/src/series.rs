//! Bounded ring of fleet-wide time-series points.
//!
//! Each point is the associative merge of per-shard registry deltas
//! taken at one sim-time observation tick (see
//! `wm_telemetry::DeltaTracker`). Counter deltas add across any
//! partition of the same work, so a point — and therefore the whole
//! JSONL series — is byte-identical no matter how many shards or
//! workers produced it.

use std::collections::VecDeque;
use std::fmt::Write as _;

use wm_telemetry::Snapshot;

/// One observation tick: the fleet-wide metric delta at `t_us`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Simulation time of the tick, microseconds.
    pub t_us: u64,
    /// Merged per-shard deltas since the previous tick.
    pub delta: Snapshot,
}

impl SeriesPoint {
    /// One JSONL line: `{"t_us":N,"delta":<snapshot json>}`.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"t_us\":{},\"delta\":{}}}",
            self.t_us,
            self.delta.to_json_string()
        )
    }
}

/// A bounded FIFO of [`SeriesPoint`]s: the live view keeps the most
/// recent `capacity` ticks and counts what it sheds, so a long-running
/// fleet holds constant memory.
#[derive(Debug)]
pub struct SeriesRing {
    capacity: usize,
    points: VecDeque<SeriesPoint>,
    dropped: u64,
}

impl SeriesRing {
    /// `capacity` is clamped to at least 1.
    pub fn new(capacity: usize) -> Self {
        SeriesRing {
            capacity: capacity.max(1),
            points: VecDeque::new(),
            dropped: 0,
        }
    }

    pub fn push(&mut self, point: SeriesPoint) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back(point);
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points shed from the front to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Oldest-to-newest iteration.
    pub fn iter(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points.iter()
    }

    /// Newest point, if any.
    pub fn last(&self) -> Option<&SeriesPoint> {
        self.points.back()
    }

    /// The retained window as JSONL, one point per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            let _ = writeln!(out, "{}", p.to_json_line());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(t: u64, key: &str, v: u64) -> SeriesPoint {
        let mut delta = Snapshot::default();
        delta.counters.insert(key.to_string(), v);
        SeriesPoint { t_us: t, delta }
    }

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let mut ring = SeriesRing::new(3);
        for t in 0..5 {
            ring.push(point(t, "c", t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ts: Vec<u64> = ring.iter().map(|p| p.t_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        assert_eq!(ring.last().map(|p| p.t_us), Some(4));
    }

    #[test]
    fn jsonl_is_one_line_per_point_and_parseable() {
        let mut ring = SeriesRing::new(8);
        ring.push(point(1_000, "fleet.packets", 7));
        ring.push(point(2_000, "fleet.packets", 9));
        let jsonl = ring.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t_us\":1000,\"delta\":"));
        for line in lines {
            let delta = line
                .split_once(",\"delta\":")
                .map(|(_, rest)| &rest[..rest.len() - 1])
                .expect("delta field");
            assert!(Snapshot::from_json_str(delta).is_some(), "{delta}");
        }
    }
}
