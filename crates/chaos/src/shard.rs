//! Shard-level fault injection for the supervised attacker fleet.
//!
//! [`crate::FaultPlan`] breaks the *session* and [`crate::capture`]
//! breaks the *tap*; this module breaks the **attacker's own
//! infrastructure**: the decoder shards of `wm-fleet` and the storage
//! their checkpoints land on. A [`ShardFaultPlan`] is pure data in the
//! same idiom as the session plan — every fault is scheduled up front
//! from a labelled seed, so a fleet run with the same
//! `(seed, ShardFaultPlan)` pair replays byte-identically.
//!
//! The taxonomy mirrors how a long-running service actually dies:
//!
//! - **Kill** — the shard process is gone instantly; everything in
//!   memory (decoder state past the last checkpoint, queued packets)
//!   is lost and the supervisor must restore from storage.
//! - **Stall** — the shard stops draining for a window (GC pause, CPU
//!   starvation, a wedged IO thread) but keeps its state; packets
//!   routed to it during the stall back up or drop.
//! - **CheckpointCorrupt** — the shard's next checkpoint *write*
//!   lands, but storage flips bytes in it; the damage only surfaces
//!   when a later restore parses the blob.
//! - **CheckpointTorn** — the shard's next checkpoint write tears:
//!   only a prefix reaches storage (crash mid-`write(2)`, no fsync).
//! - **ProcessAbort** — the shard's host *process* is `kill -9`'d.
//!   Against the in-process fleet backend this degrades to `Kill`;
//!   against the process-shard backend the supervisor delivers a real
//!   `SIGKILL` to the child and must respawn it from the last good
//!   checkpoint blob without itself exiting.
//!
//! The corruption helpers ([`corrupt_blob`], [`tear_blob`]) are
//! deterministic in `(seed, input)` and guarantee the output differs
//! from the input, so a restore path that "tolerates" corruption by
//! accident cannot pass the recovery tests.

use wm_cipher::kdf::derive_seed;
use wm_net::rng::SimRng;
use wm_net::time::{Duration, SimTime};

/// One kind of shard-infrastructure fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardFaultKind {
    /// The shard dies instantly, losing all in-memory state.
    Kill,
    /// The shard stops draining for `stall` but keeps its state.
    Stall { stall: Duration },
    /// The shard's next checkpoint write is corrupted in storage.
    CheckpointCorrupt,
    /// The shard's next checkpoint write tears to a prefix.
    CheckpointTorn,
    /// The shard's host process receives an uncatchable `SIGKILL`.
    /// Distinguished from [`ShardFaultKind::Kill`] so the supervisor
    /// can exercise its real child-process respawn path; on an
    /// in-process shard it behaves exactly like `Kill`.
    ProcessAbort,
}

impl ShardFaultKind {
    /// Stable `wm-trace` event name for this fault's firing.
    pub fn trace_name(&self) -> &'static str {
        match self {
            ShardFaultKind::Kill => "chaos.shard_kill",
            ShardFaultKind::Stall { .. } => "chaos.shard_stall",
            ShardFaultKind::CheckpointCorrupt => "chaos.checkpoint_corrupt",
            ShardFaultKind::CheckpointTorn => "chaos.checkpoint_torn",
            ShardFaultKind::ProcessAbort => "chaos.process_abort",
        }
    }
}

/// Why an explicit shard-fault event list was rejected at
/// construction. Mirrors the `IngestLimits` validate-on-construction
/// idiom: a plan that would silently reorder under the hood is a
/// latent replay-divergence bug, so [`ShardFaultPlan::validated`]
/// refuses it instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOrderError {
    /// Events are not in non-decreasing time order.
    Unsorted { index: usize },
    /// Two events are byte-identical; a duplicated fault is always a
    /// schedule bug (the second kill of an already-dead shard is a
    /// no-op and the second stall extends nothing deterministically).
    Duplicate { index: usize },
}

impl std::fmt::Display for PlanOrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanOrderError::Unsorted { index } => {
                write!(
                    f,
                    "shard fault plan event {index} is earlier than its predecessor"
                )
            }
            PlanOrderError::Duplicate { index } => {
                write!(
                    f,
                    "shard fault plan event {index} duplicates its predecessor"
                )
            }
        }
    }
}

impl std::error::Error for PlanOrderError {}

/// A shard fault scheduled at a simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardFault {
    pub at: SimTime,
    /// Index of the shard this fault hits (`< shards` at generation).
    pub shard: usize,
    pub kind: ShardFaultKind,
}

/// A deterministic, time-sorted shard-fault schedule for one fleet
/// run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardFaultPlan {
    events: Vec<ShardFault>,
}

impl ShardFaultPlan {
    /// The empty plan: a fleet with this plan runs exactly as if
    /// shard chaos did not exist.
    pub fn none() -> Self {
        ShardFaultPlan::default()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The schedule, sorted by time (stable for equal times).
    pub fn events(&self) -> &[ShardFault] {
        &self.events
    }

    /// Add a fault, keeping the schedule time-sorted (stable for
    /// equal times: earlier inserts fire first).
    pub fn push(&mut self, at: SimTime, shard: usize, kind: ShardFaultKind) -> &mut Self {
        self.events.push(ShardFault { at, shard, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Build a plan from explicit events, validating order on
    /// construction: events must be in non-decreasing time order with
    /// no byte-identical duplicates. A silently re-sorted plan would
    /// fire equal-time faults in a different order than the caller
    /// wrote them, so the constructor refuses rather than repairs.
    pub fn from_events(events: Vec<ShardFault>) -> Result<Self, PlanOrderError> {
        let plan = ShardFaultPlan { events };
        plan.validate()?;
        Ok(plan)
    }

    /// Check the ordering invariant [`ShardFaultPlan::from_events`]
    /// enforces. Plans built through [`ShardFaultPlan::push`] or
    /// [`ShardFaultPlan::generate`] are sorted by construction, so
    /// this only ever fires on hand-assembled event lists.
    pub fn validate(&self) -> Result<(), PlanOrderError> {
        for (i, w) in self.events.windows(2).enumerate() {
            if w[1].at.micros() < w[0].at.micros() {
                return Err(PlanOrderError::Unsorted { index: i + 1 });
            }
            if w[1] == w[0] {
                return Err(PlanOrderError::Duplicate { index: i + 1 });
            }
        }
        Ok(())
    }

    /// Generate a random plan over `[10%, 90%]` of `horizon` against a
    /// fleet of `shards` shards, with fault density scaled by
    /// `intensity` (0.0 = empty plan). Deterministic in
    /// `(seed, intensity, shards, horizon)`; the RNG is labelled so
    /// plan generation never perturbs the session or capture chaos
    /// streams sharing the seed.
    pub fn generate(seed: u64, intensity: f64, shards: usize, horizon: Duration) -> Self {
        let intensity = intensity.clamp(0.0, 8.0);
        if intensity == 0.0 || shards == 0 || horizon.micros() == 0 {
            return ShardFaultPlan::none();
        }
        let mut rng = SimRng::new(derive_seed(seed, "shard chaos plan"));
        let lo = horizon.micros() / 10;
        let hi = horizon.micros() * 9 / 10;
        let mut plan = ShardFaultPlan::default();
        let span = |rng: &mut SimRng, min_frac: f64, max_frac: f64| {
            let f = min_frac + rng.unit() * (max_frac - min_frac);
            Duration::from_micros((horizon.micros() as f64 * f) as u64)
        };
        let mut emit =
            |rng: &mut SimRng,
             weight: f64,
             mut kind_of: Box<dyn FnMut(&mut SimRng) -> ShardFaultKind>| {
                let expected = intensity * weight;
                let mut n = expected.floor() as u32;
                if rng.unit() < expected.fract() {
                    n += 1;
                }
                for _ in 0..n {
                    let at = SimTime(rng.uniform_u64(lo, hi.max(lo)));
                    let shard = rng.uniform_u64(0, shards as u64 - 1) as usize;
                    let kind = kind_of(rng);
                    plan.events.push(ShardFault { at, shard, kind });
                }
            };

        emit(&mut rng, 1.2, Box::new(|_| ShardFaultKind::Kill));
        emit(
            &mut rng,
            1.0,
            Box::new(|r| ShardFaultKind::Stall {
                stall: span(r, 0.01, 0.05),
            }),
        );
        emit(
            &mut rng,
            0.8,
            Box::new(|_| ShardFaultKind::CheckpointCorrupt),
        );
        emit(&mut rng, 0.8, Box::new(|_| ShardFaultKind::CheckpointTorn));

        plan.events.sort_by_key(|e| e.at);
        plan
    }

    /// [`ShardFaultPlan::generate`] plus `ProcessAbort` faults for
    /// fleets running the process-shard backend. The aborts come from
    /// their **own** labelled RNG appended after the base plan, so
    /// `generate` keeps producing byte-identical plans (committed
    /// Exact-band baselines depend on that) and the same
    /// `(seed, intensity)` pair yields the base plan as a strict
    /// subset of this one.
    pub fn generate_with_aborts(
        seed: u64,
        intensity: f64,
        shards: usize,
        horizon: Duration,
    ) -> Self {
        let mut plan = ShardFaultPlan::generate(seed, intensity, shards, horizon);
        let intensity = intensity.clamp(0.0, 8.0);
        if intensity == 0.0 || shards == 0 || horizon.micros() == 0 {
            return plan;
        }
        let mut rng = SimRng::new(derive_seed(seed, "shard chaos abort plan"));
        let lo = horizon.micros() / 10;
        let hi = horizon.micros() * 9 / 10;
        let expected = intensity * 0.8;
        let mut n = expected.floor() as u32;
        if rng.unit() < expected.fract() {
            n += 1;
        }
        for _ in 0..n {
            let at = SimTime(rng.uniform_u64(lo, hi.max(lo)));
            let shard = rng.uniform_u64(0, shards as u64 - 1) as usize;
            plan.events.push(ShardFault {
                at,
                shard,
                kind: ShardFaultKind::ProcessAbort,
            });
        }
        plan.events.sort_by_key(|e| e.at);
        plan
    }

    /// Count of events matching a predicate, for reporting.
    pub fn count(&self, pred: impl Fn(&ShardFaultKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

/// Deterministically corrupt a checkpoint blob: a seeded number of
/// seeded byte positions are XORed with nonzero masks, so the output
/// always differs from a non-empty input. Models bit rot / a bad
/// sector under the blob.
pub fn corrupt_blob(seed: u64, blob: &[u8]) -> Vec<u8> {
    let mut out = blob.to_vec();
    if out.is_empty() {
        return out;
    }
    let mut rng = SimRng::new(derive_seed(seed, "checkpoint corrupt"));
    let flips = 1 + (rng.uniform_u64(0, (out.len() as u64 / 64).min(15)) as usize);
    for _ in 0..flips {
        let pos = rng.uniform_u64(0, out.len() as u64 - 1) as usize;
        let mask = (rng.uniform_u64(1, 255) & 0xff) as u8;
        out[pos] ^= mask.max(1);
    }
    out
}

/// Deterministically tear a checkpoint write: only a seeded strict
/// prefix of the blob reaches storage. Models a crash mid-write with
/// no fsync barrier.
pub fn tear_blob(seed: u64, blob: &[u8]) -> Vec<u8> {
    if blob.is_empty() {
        return Vec::new();
    }
    let mut rng = SimRng::new(derive_seed(seed, "checkpoint tear"));
    let keep = rng.uniform_u64(0, blob.len() as u64 - 1) as usize;
    blob[..keep].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_none() {
        assert!(ShardFaultPlan::none().is_empty());
        assert_eq!(
            ShardFaultPlan::generate(7, 0.0, 4, Duration::from_secs(100)),
            ShardFaultPlan::none()
        );
        assert_eq!(
            ShardFaultPlan::generate(7, 1.0, 0, Duration::from_secs(100)),
            ShardFaultPlan::none()
        );
        assert_eq!(
            ShardFaultPlan::generate(7, 1.0, 4, Duration(0)),
            ShardFaultPlan::none()
        );
    }

    #[test]
    fn generate_is_deterministic_and_decorrelated() {
        let h = Duration::from_secs(120);
        assert_eq!(
            ShardFaultPlan::generate(42, 2.0, 4, h),
            ShardFaultPlan::generate(42, 2.0, 4, h)
        );
        assert_ne!(
            ShardFaultPlan::generate(42, 2.0, 4, h),
            ShardFaultPlan::generate(43, 2.0, 4, h),
            "seed must decorrelate plans"
        );
    }

    #[test]
    fn generate_is_sorted_bounded_and_targets_real_shards() {
        let h = Duration::from_secs(200);
        let shards = 5usize;
        for seed in 0..20u64 {
            let plan = ShardFaultPlan::generate(seed, 3.0, shards, h);
            for w in plan.events().windows(2) {
                assert!(w[0].at <= w[1].at);
            }
            for e in plan.events() {
                assert!(e.shard < shards, "fault targets shard {}", e.shard);
                assert!(e.at.micros() >= h.micros() / 10);
                assert!(e.at.micros() <= h.micros() * 9 / 10);
            }
        }
    }

    #[test]
    fn from_events_validates_order_on_construction() {
        let kill = |at: u64, shard: usize| ShardFault {
            at: SimTime(at),
            shard,
            kind: ShardFaultKind::Kill,
        };
        assert!(ShardFaultPlan::from_events(vec![kill(10, 0), kill(10, 1), kill(20, 0)]).is_ok());
        assert_eq!(
            ShardFaultPlan::from_events(vec![kill(20, 0), kill(10, 1)]).err(),
            Some(PlanOrderError::Unsorted { index: 1 })
        );
        assert_eq!(
            ShardFaultPlan::from_events(vec![kill(10, 0), kill(10, 0)]).err(),
            Some(PlanOrderError::Duplicate { index: 1 })
        );
        // Plans assembled through push() are sorted by construction
        // and must always validate.
        let mut plan = ShardFaultPlan::none();
        plan.push(SimTime(30), 1, ShardFaultKind::Kill).push(
            SimTime(10),
            0,
            ShardFaultKind::CheckpointTorn,
        );
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn abort_generation_extends_without_perturbing_the_base_plan() {
        let h = Duration::from_secs(200);
        for seed in 0..10u64 {
            let base = ShardFaultPlan::generate(seed, 2.0, 4, h);
            let with = ShardFaultPlan::generate_with_aborts(seed, 2.0, 4, h);
            assert!(with.validate().is_ok());
            // Every base event survives verbatim: aborts are appended
            // from their own labelled RNG, never interleaved into the
            // base generator's draw sequence.
            let base_only: Vec<_> = with
                .events()
                .iter()
                .copied()
                .filter(|e| e.kind != ShardFaultKind::ProcessAbort)
                .collect();
            assert_eq!(base_only, base.events());
            for e in with.events() {
                assert!(e.shard < 4);
            }
        }
        let aborts: usize = (0..16)
            .map(|s| {
                ShardFaultPlan::generate_with_aborts(s, 3.0, 4, h)
                    .count(|k| *k == ShardFaultKind::ProcessAbort)
            })
            .sum();
        assert!(aborts > 0, "intensity 3.0 must schedule some aborts");
    }

    #[test]
    fn intensity_scales_density() {
        let h = Duration::from_secs(300);
        let low: usize = (0..16)
            .map(|s| ShardFaultPlan::generate(s, 0.5, 4, h).len())
            .sum();
        let high: usize = (0..16)
            .map(|s| ShardFaultPlan::generate(s, 4.0, 4, h).len())
            .sum();
        assert!(
            high > 2 * low,
            "intensity 4.0 ({high}) should schedule far more faults than 0.5 ({low})"
        );
    }

    #[test]
    fn corrupt_blob_always_differs_and_is_deterministic() {
        let blob: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        for seed in 0..50u64 {
            let a = corrupt_blob(seed, &blob);
            assert_eq!(a.len(), blob.len());
            assert_ne!(a, blob, "seed {seed} left the blob intact");
            assert_eq!(a, corrupt_blob(seed, &blob));
        }
        assert!(corrupt_blob(1, &[]).is_empty());
    }

    #[test]
    fn tear_blob_is_a_strict_prefix() {
        let blob: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        for seed in 0..50u64 {
            let t = tear_blob(seed, &blob);
            assert!(t.len() < blob.len(), "seed {seed} kept the whole blob");
            assert_eq!(&blob[..t.len()], &t[..]);
            assert_eq!(t, tear_blob(seed, &blob));
        }
        assert!(tear_blob(1, &[]).is_empty());
    }
}
