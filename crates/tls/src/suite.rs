//! Cipher-suite families and their length arithmetic.
//!
//! Only the *families* matter to a length side-channel, not the specific
//! algorithms: every AEAD suite expands plaintext by exactly the tag
//! length, while every CBC suite prepends an explicit IV, appends a MAC
//! and pads to the block size. The paper's Figure 2 was captured on
//! AEAD connections (record length = payload + constant), so
//! [`CipherSuite::Aead`] is the default everywhere; CBC is retained as
//! an ablation showing the attack survives length quantization.

use wm_cipher::block::{cbc_ciphertext_len, BLOCK};
use wm_cipher::TAG_LEN;

/// MAC length used by the CBC family (SHA-1-sized, as in
/// `TLS_RSA_WITH_AES_128_CBC_SHA`). Our [`wm_cipher::Mac128`] tag is 16
/// bytes; we widen to 20 by appending a 4-byte length check so the wire
/// arithmetic matches the real suite.
pub const CBC_MAC_LEN: usize = 20;

/// The two cipher-suite families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherSuite {
    /// AEAD family (AES-GCM / ChaCha20-Poly1305 shaped):
    /// `ciphertext = plaintext + 16`.
    Aead,
    /// CBC family (AES-CBC + HMAC-SHA1 shaped):
    /// `ciphertext = IV(16) + pad_to_block(plaintext + MAC(20))`.
    Cbc,
}

impl CipherSuite {
    /// Exact ciphertext length for a plaintext fragment of `len` bytes.
    ///
    /// This is the number that lands in the record header's length field
    /// and is the paper's observable.
    pub fn ciphertext_len(self, len: usize) -> usize {
        match self {
            CipherSuite::Aead => len + TAG_LEN,
            CipherSuite::Cbc => BLOCK + cbc_ciphertext_len(len + CBC_MAC_LEN),
        }
    }

    /// Inverse bound: the set of plaintext lengths that could have
    /// produced ciphertext length `ct_len`, as an inclusive range.
    /// AEAD inverts exactly; CBC only up to the block quantum.
    pub fn plaintext_len_range(self, ct_len: usize) -> Option<(usize, usize)> {
        match self {
            CipherSuite::Aead => ct_len.checked_sub(TAG_LEN).map(|p| (p, p)),
            CipherSuite::Cbc => {
                let body = ct_len.checked_sub(BLOCK)?; // strip IV
                if body == 0 || body % BLOCK != 0 {
                    return None;
                }
                // padded(plain + mac) == body; padding is 1..=16 bytes.
                let max = body.checked_sub(CBC_MAC_LEN + 1)?;
                let min = body.saturating_sub(CBC_MAC_LEN + BLOCK);
                Some((min, max))
            }
        }
    }

    /// Short human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            CipherSuite::Aead => "AEAD(GCM-like)",
            CipherSuite::Cbc => "CBC(AES-CBC-SHA-like)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aead_is_affine() {
        assert_eq!(CipherSuite::Aead.ciphertext_len(0), 16);
        assert_eq!(CipherSuite::Aead.ciphertext_len(100), 116);
        assert_eq!(CipherSuite::Aead.ciphertext_len(2196), 2212);
    }

    #[test]
    fn cbc_quantizes() {
        // plaintext 0 → 0+20 MAC → pad to 32 → +16 IV = 48
        assert_eq!(CipherSuite::Cbc.ciphertext_len(0), 48);
        // 1..=12 all pad into the same 32-byte body.
        let base = CipherSuite::Cbc.ciphertext_len(1);
        for len in 1..=11 {
            assert_eq!(CipherSuite::Cbc.ciphertext_len(len), base, "len {len}");
        }
        assert_eq!(CipherSuite::Cbc.ciphertext_len(12), base + BLOCK);
    }

    #[test]
    fn aead_inverse_exact() {
        for len in [0usize, 1, 100, 2196, 16384] {
            let ct = CipherSuite::Aead.ciphertext_len(len);
            assert_eq!(CipherSuite::Aead.plaintext_len_range(ct), Some((len, len)));
        }
        assert_eq!(CipherSuite::Aead.plaintext_len_range(15), None);
    }

    #[test]
    fn cbc_inverse_brackets_truth() {
        for len in [0usize, 1, 20, 100, 1000, 2196] {
            let ct = CipherSuite::Cbc.ciphertext_len(len);
            let (lo, hi) = CipherSuite::Cbc.plaintext_len_range(ct).unwrap();
            assert!(lo <= len && len <= hi, "len {len} not in [{lo}, {hi}]");
            assert!(hi - lo < BLOCK, "range wider than a block");
        }
    }

    #[test]
    fn cbc_inverse_rejects_non_block() {
        assert_eq!(CipherSuite::Cbc.plaintext_len_range(0), None);
        assert_eq!(CipherSuite::Cbc.plaintext_len_range(16), None); // IV only
        assert_eq!(CipherSuite::Cbc.plaintext_len_range(49), None); // not block-aligned
    }
}
