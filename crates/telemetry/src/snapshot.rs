//! Immutable, mergeable metric snapshots with JSON and table renderers.
//!
//! The JSON codec is hand-rolled (std-only) and round-trips exactly:
//! `Snapshot::from_json_str(&snap.to_json_string()) == Some(snap)`.

use crate::metric::{Histogram, BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Smallest recorded value; 0 when `count == 0`.
    pub min: u64,
    /// Largest recorded value; 0 when `count == 0`.
    pub max: u64,
    /// Sparse `(bucket_index, count)` pairs, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Snapshot a live histogram.
    pub fn of(h: &Histogram) -> Self {
        let counts = h.bucket_counts();
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            buckets: counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i as u8, c))
                .collect(),
        }
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile from the log2 buckets: the geometric
    /// midpoint of the bucket where the cumulative count crosses `q`,
    /// clamped to the exact `[min, max]`.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= target {
                let (lo, hi) = Histogram::bucket_bounds(i as usize);
                let mid = ((lo as f64) * (hi.max(1) as f64)).sqrt() as u64;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another histogram snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(i, c) in &other.buckets {
            *merged.entry(i).or_insert(0) += c;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// Frozen state of a whole registry; the unit of aggregation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Fold `other` into `self`. Exact, commutative and associative:
    /// u64 additions plus min/max, so any merge tree over the same
    /// snapshots yields identical results.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Merge a list of snapshots into one (run-level aggregation).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Snapshot>) -> Snapshot {
        let mut out = Snapshot::default();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Machine-readable JSON (single line).
    pub fn to_json_string(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", json_string(k));
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                json_string(k),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            for (j, (b, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{b},{c}]");
            }
            s.push_str("]}");
        }
        s.push_str("}}");
        s
    }

    /// Parse the JSON produced by [`Snapshot::to_json_string`].
    pub fn from_json_str(json: &str) -> Option<Snapshot> {
        let mut p = Parser {
            bytes: json.as_bytes(),
            pos: 0,
        };
        let snap = p.snapshot()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(snap)
        } else {
            None
        }
    }

    /// The seed-deterministic projection of this snapshot: counters
    /// only, with every histogram dropped.
    ///
    /// Counters count discrete simulation events and replay exactly
    /// per seed; histograms include `*_ns` wall-clock timings that
    /// differ run to run. Determinism tests compare this view so a
    /// slow CI machine can never flake them.
    pub fn deterministic_view(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            histograms: BTreeMap::new(),
        }
    }

    /// Human-readable report: counters then histogram summaries.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            let width = self.counters.keys().map(String::len).max().unwrap_or(0);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<width$}  {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            let width = self
                .histograms
                .keys()
                .map(String::len)
                .max()
                .unwrap_or(0)
                .max(4);
            let _ = writeln!(
                out,
                "histograms (ns for *_ns, µs for *_us)\n  {:<width$}  {:>9} {:>14} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "sum", "min", "mean", "~p99", "max"
            );
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<width$}  {:>9} {:>14} {:>10} {:>10.0} {:>10} {:>10}",
                    h.count,
                    h.sum,
                    h.min,
                    h.mean(),
                    h.approx_quantile(0.99),
                    h.max
                );
            }
        }
        out
    }
}

/// Escape a metric name as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal recursive-descent parser for the snapshot schema only.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn u64(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn key(&mut self, expected: &str) -> Option<()> {
        let k = self.string()?;
        if k != expected {
            return None;
        }
        self.eat(b':')
    }

    fn snapshot(&mut self) -> Option<Snapshot> {
        self.eat(b'{')?;
        self.key("counters")?;
        let counters = self.counters()?;
        self.eat(b',')?;
        self.key("histograms")?;
        let histograms = self.histograms()?;
        self.eat(b'}')?;
        Some(Snapshot {
            counters,
            histograms,
        })
    }

    fn counters(&mut self) -> Option<BTreeMap<String, u64>> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.eat(b'}')?;
            return Some(out);
        }
        loop {
            let name = self.string()?;
            self.eat(b':')?;
            out.insert(name, self.u64()?);
            match self.peek()? {
                b',' => self.eat(b',')?,
                b'}' => {
                    self.eat(b'}')?;
                    return Some(out);
                }
                _ => return None,
            }
        }
    }

    fn histograms(&mut self) -> Option<BTreeMap<String, HistogramSnapshot>> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.eat(b'}')?;
            return Some(out);
        }
        loop {
            let name = self.string()?;
            self.eat(b':')?;
            out.insert(name, self.histogram()?);
            match self.peek()? {
                b',' => self.eat(b',')?,
                b'}' => {
                    self.eat(b'}')?;
                    return Some(out);
                }
                _ => return None,
            }
        }
    }

    fn histogram(&mut self) -> Option<HistogramSnapshot> {
        self.eat(b'{')?;
        self.key("count")?;
        let count = self.u64()?;
        self.eat(b',')?;
        self.key("sum")?;
        let sum = self.u64()?;
        self.eat(b',')?;
        self.key("min")?;
        let min = self.u64()?;
        self.eat(b',')?;
        self.key("max")?;
        let max = self.u64()?;
        self.eat(b',')?;
        self.key("buckets")?;
        self.eat(b'[')?;
        let mut buckets = Vec::new();
        if self.peek() == Some(b']') {
            self.eat(b']')?;
        } else {
            loop {
                self.eat(b'[')?;
                let idx = self.u64()?;
                if idx >= BUCKETS as u64 {
                    return None;
                }
                self.eat(b',')?;
                let c = self.u64()?;
                self.eat(b']')?;
                buckets.push((idx as u8, c));
                match self.peek()? {
                    b',' => self.eat(b',')?,
                    b']' => {
                        self.eat(b']')?;
                        break;
                    }
                    _ => return None,
                }
            }
        }
        self.eat(b'}')?;
        Some(HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let reg = Registry::new();
        reg.counter("a.events").add(7);
        reg.counter("b.frames").add(123_456);
        let h = reg.histogram("lat_ns");
        for v in [3u64, 900, 900, 40_000, 0] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn json_roundtrip_exact() {
        let snap = sample();
        let json = snap.to_json_string();
        let back = Snapshot::from_json_str(&json).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_roundtrip() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::from_json_str(&snap.to_json_string()), Some(snap));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut json = sample().to_json_string();
        json.push('x');
        assert_eq!(Snapshot::from_json_str(&json), None);
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let a = sample();
        let b = sample();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.counters["a.events"], 14);
        assert_eq!(m.histograms["lat_ns"].count, 10);
        assert_eq!(m.histograms["lat_ns"].sum, 2 * a.histograms["lat_ns"].sum);
        assert_eq!(m.histograms["lat_ns"].min, 0);
        assert_eq!(m.histograms["lat_ns"].max, 40_000);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = sample();
        let mut left = Snapshot::default();
        left.merge(&a);
        assert_eq!(left, a);
        let mut right = a.clone();
        right.merge(&Snapshot::default());
        assert_eq!(right, a);
    }

    #[test]
    fn table_lists_every_metric() {
        let table = sample().render_table();
        for name in ["a.events", "b.frames", "lat_ns"] {
            assert!(table.contains(name), "{table}");
        }
    }

    #[test]
    fn deterministic_view_keeps_counters_drops_histograms() {
        let snap = sample();
        let view = snap.deterministic_view();
        assert_eq!(view.counters, snap.counters);
        assert!(view.histograms.is_empty());
        // The view is itself a valid snapshot: round-trips and merges.
        assert_eq!(
            Snapshot::from_json_str(&view.to_json_string()),
            Some(view.clone())
        );
        assert_eq!(view.deterministic_view(), view);
    }

    #[test]
    fn quantiles_bounded_by_min_max() {
        let h = &sample().histograms["lat_ns"];
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = h.approx_quantile(q);
            assert!(v >= h.min && v <= h.max, "q{q} -> {v}");
        }
    }
}
