//! TLS record extraction over a reassembled stream, with gap resync.
//!
//! Within a contiguous chunk this is a straight run of the key-less
//! record parser from `wm-tls`. After a gap the stream usually resumes
//! mid-record, so the extractor *resynchronizes*: it scans forward for
//! an offset where a chain of plausible record headers parses, exactly
//! the heuristic a traffic analyst applies to lossy captures. Records
//! whose bytes were partly lost are dropped (and counted) rather than
//! misreported.

use crate::flow::StreamView;
use wm_net::time::SimTime;
use wm_tls::observer::ObservedRecord;
use wm_tls::record::{RecordHeader, RECORD_HEADER_LEN};

/// A record with the capture timestamp of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedRecord {
    pub time: SimTime,
    pub record: ObservedRecord,
}

/// Extraction bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Records successfully parsed.
    pub records: usize,
    /// Gaps encountered in the stream.
    pub gaps: usize,
    /// Gaps after which a valid header chain was found again.
    pub resyncs: usize,
    /// Bytes skipped while hunting for a resync point.
    pub skipped_bytes: u64,
}

/// The extractor's output.
#[derive(Debug, Clone, Default)]
pub struct Extraction {
    pub records: Vec<TimedRecord>,
    pub stats: ExtractStats,
    /// Capture timestamp at which each gap's post-gap chunk resumed
    /// (one entry per counted gap, in stream order). Downstream
    /// decoders use these to mark choice windows the tap was blind in.
    pub gap_times: Vec<SimTime>,
}

/// Minimum chained headers required to accept a resync offset (or one
/// full record that exactly exhausts the chunk).
const RESYNC_CHAIN: usize = 2;

/// Extract every parseable TLS record from one stream direction.
pub fn extract_records(view: &StreamView) -> Extraction {
    let mut out = Extraction::default();
    // Partial record spanning a chunk boundary. Consumed bytes are
    // tracked by the `head` cursor instead of drained per record: the
    // hot path is then append + parse with no per-record memmove, and
    // the buffer is compacted only when consumed bytes dominate, so
    // memory stays bounded by ~2x the live tail.
    let mut carry: Vec<u8> = Vec::new();
    let mut head: usize = 0;
    let mut carry_offset: u64 = 0;
    let mut prev_end: Option<u64> = None;

    for chunk in &view.chunks {
        let gap = match prev_end {
            Some(end) if chunk.start_offset > end => true,
            None => false,
            _ => false,
        };
        if gap {
            out.stats.gaps += 1;
            if let Some(t) = view.time_at(chunk.start_offset) {
                out.gap_times.push(t);
            }
            // The carried partial record can never complete.
            carry.clear();
            head = 0;
        }
        prev_end = Some(chunk.start_offset + chunk.data.len() as u64);

        if gap {
            // Resynchronize within this chunk.
            match find_resync(&chunk.data) {
                Some(skip) => {
                    out.stats.resyncs += 1;
                    out.stats.skipped_bytes += skip as u64;
                    carry_offset = chunk.start_offset + skip as u64;
                    carry.extend_from_slice(chunk.data.get(skip..).unwrap_or_default());
                }
                None => {
                    out.stats.skipped_bytes += chunk.data.len() as u64;
                    continue;
                }
            }
        } else {
            if head == carry.len() {
                carry.clear();
                head = 0;
            } else if head >= carry.len() - head {
                carry.copy_within(head.., 0);
                carry.truncate(carry.len() - head);
                head = 0;
            }
            if carry.is_empty() {
                carry_offset = chunk.start_offset;
            }
            carry.extend_from_slice(&chunk.data);
        }
        drain_records(view, &mut carry, &mut head, &mut carry_offset, &mut out);
    }
    out
}

/// Parse complete records out of `carry[head..]`, advancing `head` and
/// `carry_offset` past each one.
fn drain_records(
    view: &StreamView,
    carry: &mut Vec<u8>,
    head: &mut usize,
    carry_offset: &mut u64,
    out: &mut Extraction,
) {
    loop {
        let live = carry.get(*head..).unwrap_or_default();
        let Some(header_bytes) = live.first_chunk::<RECORD_HEADER_LEN>() else {
            return;
        };
        let Some(header) = RecordHeader::parse(header_bytes) else {
            // Mid-stream desync should not happen on our own traces; if
            // it does, drop the rest of this contiguous run.
            out.stats.skipped_bytes += live.len() as u64;
            carry.clear();
            *head = 0;
            return;
        };
        let total = RECORD_HEADER_LEN + header.length as usize;
        if live.len() < total {
            return;
        }
        let time = view.time_at(*carry_offset).unwrap_or(SimTime::ZERO);
        out.records.push(TimedRecord {
            time,
            record: ObservedRecord {
                stream_offset: *carry_offset,
                content_type: header.content_type,
                version: header.version,
                length: header.length,
            },
        });
        out.stats.records += 1;
        *head += total;
        *carry_offset += total as u64;
    }
}

/// Find the smallest offset in `data` at which a chain of plausible
/// record headers parses.
///
/// Public so the streaming (online) extractor can reuse the exact same
/// resynchronization heuristic as the batch path: accepts an offset
/// where [`RESYNC_CHAIN`] headers chain, or at least one complete
/// header whose final record extends past the buffer edge.
pub fn find_resync(data: &[u8]) -> Option<usize> {
    'outer: for start in 0..data.len().saturating_sub(RECORD_HEADER_LEN) {
        let mut pos = start;
        let mut chained = 0;
        while chained < RESYNC_CHAIN {
            if pos + RECORD_HEADER_LEN > data.len() {
                // Ran out of bytes: accept only if we chained at least
                // one full record and ended exactly at the buffer edge
                // or inside a final partial record's body.
                if chained >= 1 {
                    return Some(start);
                }
                continue 'outer;
            }
            let Some(hdr) = data
                .get(pos..)
                .and_then(|s| s.first_chunk::<RECORD_HEADER_LEN>())
            else {
                continue 'outer;
            };
            let Some(h) = RecordHeader::parse(hdr) else {
                continue 'outer;
            };
            pos += RECORD_HEADER_LEN + h.length as usize;
            if pos > data.len() {
                // Final record extends past the chunk: plausible if we
                // already validated at least one complete header chain.
                if chained >= 1 {
                    return Some(start);
                }
                continue 'outer;
            }
            chained += 1;
        }
        return Some(start);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::StreamChunk;
    use wm_tls::conn::{RecordEngine, SessionKeys};
    use wm_tls::record::ContentType;
    use wm_tls::suite::CipherSuite;

    fn engine() -> RecordEngine {
        RecordEngine::client(&SessionKeys::derive(&[9; 32], CipherSuite::Aead))
    }

    fn view_of(chunks: Vec<(u64, Vec<u8>, SimTime)>) -> StreamView {
        StreamView {
            chunks: chunks
                .into_iter()
                .map(|(start_offset, data, t)| StreamChunk {
                    start_offset,
                    marks: vec![(start_offset, t)],
                    data,
                })
                .collect(),
        }
    }

    #[test]
    fn clean_stream_extracts_all() {
        let mut eng = engine();
        let mut wire = Vec::new();
        for len in [100usize, 2196, 50] {
            wire.extend(eng.seal_payload(ContentType::ApplicationData, &vec![0; len]));
        }
        let view = view_of(vec![(0, wire, SimTime(77))]);
        let ex = extract_records(&view);
        assert_eq!(ex.stats.records, 3);
        assert_eq!(ex.stats.gaps, 0);
        let lens: Vec<u16> = ex.records.iter().map(|r| r.record.length).collect();
        assert_eq!(lens, vec![116, 2212, 66]);
        assert_eq!(ex.records[0].time, SimTime(77));
    }

    #[test]
    fn record_spanning_chunk_boundary() {
        let mut eng = engine();
        let wire = eng.seal_payload(ContentType::ApplicationData, &vec![1; 500]);
        let (a, b) = wire.split_at(200);
        let view = view_of(vec![
            (0, a.to_vec(), SimTime(1)),
            (200, b.to_vec(), SimTime(2)),
        ]);
        let ex = extract_records(&view);
        assert_eq!(ex.stats.records, 1);
        assert_eq!(ex.records[0].record.length, 516);
        assert_eq!(ex.records[0].time, SimTime(1), "timestamp of first byte");
    }

    #[test]
    fn gap_drops_record_and_resyncs() {
        let mut eng = engine();
        let r1 = eng.seal_payload(ContentType::ApplicationData, &vec![1; 1000]);
        let r2 = eng.seal_payload(ContentType::ApplicationData, &vec![2; 1000]);
        let r3 = eng.seal_payload(ContentType::ApplicationData, &vec![3; 400]);
        let r4 = eng.seal_payload(ContentType::ApplicationData, &vec![4; 300]);
        // Capture r1 fully, lose the middle of r2, then r3+r4 intact.
        let mut first = r1.clone();
        first.extend_from_slice(&r2[..300]);
        let mut rest = r3.clone();
        rest.extend_from_slice(&r4);
        let gap_start = first.len() as u64;
        let resume = (r1.len() + r2.len()) as u64;
        let view = view_of(vec![(0, first, SimTime(1)), (resume, rest, SimTime(9))]);
        let ex = extract_records(&view);
        assert_eq!(ex.stats.gaps, 1);
        assert_eq!(ex.stats.resyncs, 1);
        assert_eq!(ex.gap_times, vec![SimTime(9)], "gap stamped at resume time");
        let lens: Vec<u16> = ex.records.iter().map(|r| r.record.length).collect();
        assert_eq!(lens, vec![1016, 416, 316], "r2 dropped, r3/r4 recovered");
        assert!(gap_start > 0);
    }

    #[test]
    fn resume_mid_record_skips_to_next_header() {
        let mut eng = engine();
        let r1 = eng.seal_payload(ContentType::ApplicationData, &vec![1; 800]);
        let r2 = eng.seal_payload(ContentType::ApplicationData, &vec![2; 600]);
        let r3 = eng.seal_payload(ContentType::ApplicationData, &[3; 200]);
        // The tap missed r1 entirely and the first 100 bytes of r2.
        let mut rest = r2[100..].to_vec();
        rest.extend_from_slice(&r3);
        let view = view_of(vec![
            (0, r1[..50].to_vec(), SimTime(1)), // only a shred of r1
            ((r1.len() + 100) as u64, rest, SimTime(5)),
        ]);
        let ex = extract_records(&view);
        // r2's tail is unparseable noise; r3 must be recovered.
        let lens: Vec<u16> = ex.records.iter().map(|r| r.record.length).collect();
        assert_eq!(lens, vec![216]);
        assert!(ex.stats.skipped_bytes >= (r2.len() - 100) as u64 - 5);
    }

    #[test]
    fn unrecoverable_chunk_counted() {
        // One chunk after a gap containing pure noise.
        let view = view_of(vec![
            (0, vec![0u8; 10], SimTime(1)),
            (100, vec![0xffu8; 64], SimTime(2)),
        ]);
        let ex = extract_records(&view);
        assert_eq!(ex.stats.records, 0);
        assert_eq!(ex.stats.gaps, 1);
        assert_eq!(ex.stats.resyncs, 0);
        assert!(ex.stats.skipped_bytes >= 64);
    }

    #[test]
    fn empty_view() {
        let ex = extract_records(&StreamView::default());
        assert_eq!(ex.stats, ExtractStats::default());
        assert!(ex.records.is_empty());
    }
}
