//! Stream manifest: bitrate ladder and chunk geometry.

use wm_json::Value;
use wm_story::StoryGraph;

/// The ABR bitrate ladder in bits/second (2019-era Netflix VP9 ladder
/// shape).
pub const BITRATE_LADDER: [u32; 5] = [235_000, 750_000, 1_750_000, 3_000_000, 5_800_000];

/// Media chunk duration in seconds.
pub const CHUNK_SECS: u32 = 2;

/// Human label for a ladder entry ("1750k").
pub fn ladder_label(bps: u32) -> String {
    format!("{}k", bps / 1000)
}

/// Chunk geometry for one title.
///
/// `media_scale` divides chunk byte sizes: the *timing* of the stream
/// (chunk schedule, prefetch pattern, choice windows) is preserved while
/// the raw byte volume is reduced so full sessions simulate quickly.
/// The substitution is sound for this reproduction because the attack
/// never uses media chunk sizes — chunk records sit far outside the
/// state-JSON length bands (see DESIGN.md).
#[derive(Debug, Clone)]
pub struct Manifest {
    pub title: String,
    pub chunk_secs: u32,
    pub ladder: Vec<u32>,
    pub media_scale: u32,
}

impl Manifest {
    /// Manifest for a story graph.
    pub fn for_title(graph: &StoryGraph, media_scale: u32) -> Self {
        Manifest {
            title: graph.title().to_owned(),
            chunk_secs: CHUNK_SECS,
            ladder: BITRATE_LADDER.to_vec(),
            media_scale: media_scale.max(1),
        }
    }

    /// Number of chunks in a segment of `duration_secs`.
    pub fn chunk_count(&self, duration_secs: u32) -> u32 {
        duration_secs.div_ceil(self.chunk_secs).max(1)
    }

    /// Byte size of chunk `idx` of a segment of `duration_secs` at
    /// `bitrate` bps. The final chunk covers the remainder.
    pub fn chunk_bytes(&self, duration_secs: u32, idx: u32, bitrate: u32) -> usize {
        let count = self.chunk_count(duration_secs);
        let span = if idx + 1 == count {
            duration_secs - self.chunk_secs * (count - 1)
        } else {
            self.chunk_secs
        }
        .max(1);
        let raw = bitrate as u64 / 8 * span as u64;
        (raw / self.media_scale as u64).max(64) as usize
    }

    /// Serialize to the JSON body the player fetches at startup.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("title".into(), Value::from(self.title.clone())),
            ("chunkSeconds".into(), Value::from(self.chunk_secs as i64)),
            (
                "bitrates".into(),
                Value::array(self.ladder.iter().map(|b| Value::from(*b as i64)).collect()),
            ),
            ("mediaScale".into(), Value::from(self.media_scale as i64)),
            ("interactive".into(), Value::from(true)),
        ])
    }

    /// Parse the JSON body back (player side).
    pub fn from_json(v: &Value) -> Option<Self> {
        Some(Manifest {
            title: v.get("title")?.as_str()?.to_owned(),
            chunk_secs: v.get("chunkSeconds")?.as_i64()? as u32,
            ladder: v
                .get("bitrates")?
                .as_array()?
                .iter()
                .map(|b| b.as_i64().map(|x| x as u32))
                .collect::<Option<Vec<_>>>()?,
            media_scale: v.get("mediaScale")?.as_i64()? as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_story::bandersnatch::bandersnatch;

    #[test]
    fn chunk_geometry() {
        let g = bandersnatch();
        let m = Manifest::for_title(&g, 1);
        assert_eq!(m.chunk_count(90), 45);
        assert_eq!(m.chunk_count(91), 46);
        assert_eq!(m.chunk_count(1), 1);
        // Full chunk at 3 Mbps: 3e6/8*2 = 750 kB.
        assert_eq!(m.chunk_bytes(90, 0, 3_000_000), 750_000);
        // Final chunk of a 91 s segment covers 1 s.
        assert_eq!(m.chunk_bytes(91, 45, 3_000_000), 375_000);
    }

    #[test]
    fn media_scale_divides() {
        let g = bandersnatch();
        let m = Manifest::for_title(&g, 100);
        assert_eq!(m.chunk_bytes(90, 0, 3_000_000), 7_500);
        // Floor of 64 bytes.
        let m2 = Manifest::for_title(&g, 1_000_000);
        assert_eq!(m2.chunk_bytes(90, 0, 235_000), 64);
    }

    #[test]
    fn scale_zero_clamps_to_one() {
        let g = bandersnatch();
        let m = Manifest::for_title(&g, 0);
        assert_eq!(m.media_scale, 1);
    }

    #[test]
    fn json_roundtrip() {
        let g = bandersnatch();
        let m = Manifest::for_title(&g, 32);
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.title, m.title);
        assert_eq!(back.chunk_secs, m.chunk_secs);
        assert_eq!(back.ladder, m.ladder);
        assert_eq!(back.media_scale, m.media_scale);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Manifest::from_json(&Value::Null).is_none());
        assert!(
            Manifest::from_json(&Value::object(vec![("title".into(), Value::from("x"))])).is_none()
        );
    }
}
