//! Behavioural profiling from encrypted traffic — the "high-level
//! implications" of §VI.
//!
//! ```sh
//! cargo run --release --example profile_viewers
//! ```
//!
//! Generates a small IITM-Bandersnatch-style corpus, decodes every
//! viewer's choices *from their pcap alone*, converts decoded paths
//! into semantic tag exposure (violence, defiance, withdrawal, …), and
//! shows how the inferred tag profile correlates with the viewers'
//! actual (hidden) state of mind — the privacy harm the paper warns
//! about.

use std::collections::BTreeMap;
use std::sync::Arc;
use white_mirror::behavior::StateOfMind;
use white_mirror::dataset::{run_dataset, DatasetSpec, SimOptions};
use white_mirror::prelude::*;
use white_mirror::story::{ChoiceTag, SegmentEnd};

fn main() {
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let spec = DatasetSpec::generate("profiling-demo", 72, 7_777);
    let opts = SimOptions {
        media_scale: 1024,
        time_scale: 40,
        ..SimOptions::default()
    };
    println!("running {} viewer sessions…", spec.viewers.len());
    let records = run_dataset(&graph, &spec, &opts);

    // The record-length bands are platform-specific (Figure 2), so the
    // attacker trains one classifier per platform profile — the grid
    // cycles link conditions fastest, so viewers come in blocks of six
    // sharing a profile. Train on the first two of each block, decode
    // the other four blind.
    let mut attacks: BTreeMap<String, WhiteMirror> = BTreeMap::new();
    let mut decoded_count = 0;
    for block in records.chunks(6) {
        let mut training = Vec::new();
        for r in &block[..2.min(block.len())] {
            training.extend(r.output.labels.iter().copied());
        }
        let profile = block[0].spec.operational.profile.label();
        if let Some(a) = WhiteMirror::train(&training, WhiteMirrorConfig::scaled(opts.time_scale)) {
            attacks.insert(profile, a);
        }
    }

    // Decode every non-training viewer and accumulate tag exposure.
    let mut per_mind: BTreeMap<&'static str, (f64, usize)> = BTreeMap::new();
    let mut total_acc = white_mirror::core::ChoiceAccuracy::default();
    for (i, r) in records.iter().enumerate() {
        if i % 6 < 2 {
            continue; // training viewer
        }
        let Some(attack) = attacks.get(&r.spec.operational.profile.label()) else {
            continue;
        };
        decoded_count += 1;
        let decoded = attack.decode_trace(&r.output.trace, &graph);
        let acc = white_mirror::core::choice_accuracy(&decoded.choices, &r.output.decisions);
        total_acc.merge(&acc);

        // Tag exposure of the decoded path.
        let violence = tag_share(&graph, &decoded, ChoiceTag::Violence);
        let mind = r.spec.behavior.mind.label();
        let entry = per_mind.entry(mind).or_insert((0.0, 0));
        entry.0 += violence;
        entry.1 += 1;
    }

    println!(
        "\ndecoded {decoded_count} viewers blind; per-choice accuracy {:.1}%\n",
        100.0 * total_acc.accuracy()
    );
    println!("inferred violence exposure by (hidden) state of mind:");
    for (mind, (sum, n)) in &per_mind {
        println!(
            "  {:<12} {:.2} avg tagged picks per viewing  (n={n})",
            mind,
            sum / *n as f64
        );
    }
    let stressed = per_mind.get(StateOfMind::Stressed.label());
    let happy = per_mind.get(StateOfMind::Happy.label());
    if let (Some((s, sn)), Some((h, hn))) = (stressed, happy) {
        println!(
            "\n→ stressed viewers show {:.2}× the violent-pick rate of happy ones,\n  recovered purely from encrypted traffic.",
            (s / *sn as f64) / (h / *hn as f64).max(1e-9)
        );
    }
}

/// How many decoded picks carry `tag`.
fn tag_share(
    graph: &StoryGraph,
    decoded: &white_mirror::core::DecodedSession,
    tag: ChoiceTag,
) -> f64 {
    decoded
        .choices
        .iter()
        .filter(|d| {
            graph
                .choice_point(d.cp)
                .option(d.choice)
                .tags
                .contains(&tag)
        })
        .count() as f64
}

// Silence an unused-import lint when the example is built without the
// prelude's StoryGraph path being otherwise exercised.
#[allow(unused)]
fn _assert_graph_walkable(g: &StoryGraph) {
    let mut cur = g.start();
    loop {
        match g.segment(cur).end {
            SegmentEnd::Ending => break,
            SegmentEnd::Continue(n) => cur = n,
            SegmentEnd::Choice(cp) => cur = g.choice_point(cp).default_target(),
        }
    }
}
