//! End-to-end checks for the workspace scanner.
//!
//! Two halves: the real workspace must be clean (this is the same gate
//! CI runs via `wm-lint --deny`), and a synthetic workspace seeded with
//! one violation per rule family must light every rule up — proving the
//! walker, crate classification and path scoping all work outside unit
//! tests.

use std::fs;
use std::path::{Path, PathBuf};

use wm_lint::rules;

fn workspace_root() -> PathBuf {
    // crates/lint → crates → workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn real_workspace_is_clean() {
    let result = wm_lint::scan_workspace(&workspace_root()).expect("scan");
    assert!(
        result.findings.is_empty(),
        "workspace must be lint-clean:\n{}",
        result
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually visited the workspace (17 crates of
    // sources + manifests), not an empty directory.
    assert!(
        result.files_scanned > 50,
        "suspiciously few files scanned: {}",
        result.files_scanned
    );
}

#[test]
fn scan_is_deterministic() {
    let root = workspace_root();
    let a = wm_lint::scan_workspace(&root).expect("scan a");
    let b = wm_lint::scan_workspace(&root).expect("scan b");
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.files_scanned, b.files_scanned);
    let ra = wm_lint::report::to_json(&a.findings, a.files_scanned);
    let rb = wm_lint::report::to_json(&b.findings, b.files_scanned);
    assert_eq!(ra, rb, "JSON report must be byte-identical across runs");
}

/// Build a throwaway workspace under the target dir with one violation
/// per rule family and check each is reported.
#[test]
fn seeded_violations_all_fire() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("wm-lint-fixture");
    let _ = fs::remove_dir_all(&dir);

    let mk = |rel: &str, contents: &str| {
        let path = dir.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, contents).expect("write fixture");
    };

    // A "victim" byte-producing crate with determinism violations.
    mk("crates/tls/Cargo.toml", "[package]\nname = \"wm-tls\"\n");
    mk(
        "crates/tls/src/lib.rs",
        "pub fn emit() -> u64 {\n\
         let t = Instant::now();\n\
         let m: HashMap<u8, u8> = HashMap::new();\n\
         let r = thread_rng().next_u64();\n\
         0\n}\n",
    );
    // An attacker parse path with panic violations.
    mk("crates/json/Cargo.toml", "[package]\nname = \"wm-json\"\n");
    mk(
        "crates/json/src/de.rs",
        "pub fn de(b: &[u8]) -> u8 {\n\
         let first = b[0];\n\
         let v = std::str::from_utf8(b).unwrap();\n\
         panic!(\"bad\");\n}\n",
    );
    // A suppression without a reason.
    mk(
        "crates/json/src/lenient.rs",
        "// wm-lint: allow(panic/index)\npub fn f(b: &[u8]) -> u8 { b[1] }\n",
    );
    // An attacker crate reaching into the victim stack.
    mk(
        "crates/core/Cargo.toml",
        "[package]\nname = \"wm-core\"\n\n[dependencies]\nwm-player = { path = \"../player\" }\n",
    );
    mk(
        "crates/core/src/lib.rs",
        "pub fn attack() { let _ = std::process::Command::new(\"sh\").spawn(); }\n",
    );

    let result = wm_lint::scan_workspace(&dir).expect("scan fixture");
    let fired: Vec<&str> = result.findings.iter().map(|f| f.rule).collect();
    for rule in [
        rules::WALL_CLOCK,
        rules::HASH_COLLECTIONS,
        rules::UNSEEDED_RNG,
        rules::PANIC_INDEX,
        rules::PANIC_UNWRAP,
        rules::PANIC_MACRO,
        rules::MISSING_REASON,
        rules::LAYERING,
        rules::PROCESS_SPAWN,
    ] {
        assert!(
            fired.contains(&rule),
            "expected {rule} to fire; got {fired:?}"
        );
    }
    // The unjustified suppression must not silence the indexing it sits on.
    assert!(
        result
            .findings
            .iter()
            .any(|f| f.rule == rules::PANIC_INDEX && f.file.ends_with("lenient.rs")),
        "reason-less suppression should be inert"
    );

    let _ = fs::remove_dir_all(&dir);
}
