//! Byte-deterministic snapshot renderers.
//!
//! Both renderers iterate the snapshot's `BTreeMap`s only, so output
//! bytes depend solely on the metric values — never on insertion or
//! hash order — and are identical across worker and shard counts for
//! the same logical work.

use std::fmt::Write as _;

use wm_telemetry::{Histogram, Snapshot};

/// Map a registry metric name onto the Prometheus name charset
/// (`[a-zA-Z0-9_:]`): every other byte becomes `_`, and a leading
/// digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// Render a snapshot in Prometheus text exposition format.
///
/// Counters become `counter` families; histograms become native
/// Prometheus histograms with cumulative `_bucket{le="…"}` rows at the
/// log2 bucket upper bounds, plus `_sum`/`_count`, plus `_min`/`_max`
/// gauges when the histogram is non-empty (the exact bounds a
/// log2-bucketed histogram would otherwise lose).
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snap.histograms {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for &(bucket, count) in &h.buckets {
            cumulative += count;
            let (_, hi) = Histogram::bucket_bounds(bucket as usize);
            let _ = writeln!(out, "{name}_bucket{{le=\"{hi}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
        if let (Some(min), Some(max)) = (h.min, h.max) {
            let _ = writeln!(out, "# TYPE {name}_min gauge");
            let _ = writeln!(out, "{name}_min {min}");
            let _ = writeln!(out, "# TYPE {name}_max gauge");
            let _ = writeln!(out, "{name}_max {max}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_telemetry::Registry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("fleet.packets"), "fleet_packets");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn renders_counters_and_histograms() {
        let reg = Registry::new();
        reg.counter("fleet.packets").add(42);
        let h = reg.histogram("verdict.lag_us");
        h.record(3);
        h.record(900);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE fleet_packets counter\nfleet_packets 42\n"));
        assert!(text.contains("# TYPE verdict_lag_us histogram"));
        // 3 lands in bucket 2 ([2,3]), 900 in bucket 10 ([512,1023]).
        assert!(text.contains("verdict_lag_us_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("verdict_lag_us_bucket{le=\"1023\"} 2\n"));
        assert!(text.contains("verdict_lag_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("verdict_lag_us_sum 903\n"));
        assert!(text.contains("verdict_lag_us_count 2\n"));
        assert!(text.contains("verdict_lag_us_min 3\n"));
        assert!(text.contains("verdict_lag_us_max 900\n"));
    }

    #[test]
    fn empty_histogram_renders_without_bounds() {
        let reg = Registry::new();
        reg.histogram("idle_us");
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("idle_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(!text.contains("idle_us_min"));
        assert!(!text.contains("idle_us_max"));
    }

    #[test]
    fn render_is_a_pure_function_of_the_snapshot() {
        // Two registries populated in different orders render the same
        // bytes once their snapshots are equal.
        let a = Registry::new();
        a.counter("x").add(1);
        a.counter("y").add(2);
        let b = Registry::new();
        b.counter("y").add(2);
        b.counter("x").add(1);
        assert_eq!(
            prometheus_text(&a.snapshot()),
            prometheus_text(&b.snapshot())
        );
    }
}
