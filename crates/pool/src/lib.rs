//! Deterministic work-stealing execution over an indexed task set.
//!
//! The throughput engine runs millions of independent, per-seed
//! deterministic tasks (viewer sessions, per-session decodes). The
//! scheduling question is *which worker runs which index when* — and
//! the answer must never show in the output. This crate provides the
//! one primitive that squares dynamic load balancing with
//! byte-determinism:
//!
//! * every task is a pure function of its **index** (callers derive all
//!   randomness from per-index seeds, never from scheduling);
//! * workers pull the next index from a shared atomic counter, so a
//!   long task stalls only the worker running it while the rest of the
//!   pool drains the queue (no fixed contiguous chunks, no uneven
//!   tail);
//! * results are merged **in index order**, so the output is identical
//!   for any worker count — 1, 2, 8 or `available_parallelism` — and
//!   identical across repeated runs.
//!
//! The contract callers must uphold: `f(i)` may not observe anything
//! scheduling-dependent (wall clocks, worker identity, completion
//! order). Everything in this workspace derives per-task state from
//! `derive_seed(run_seed, index)`-style seeding, which satisfies this
//! by construction.

pub mod persistent;

pub use persistent::Pool;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count the pool uses when the caller passes `0` ("auto"):
/// one worker per available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Run `f(0), f(1), …, f(tasks - 1)` across `workers` threads and
/// return the results in index order.
///
/// `workers == 0` means "auto" ([`default_workers`]). The worker count
/// is capped at the task count; `workers == 1` (or a single task) runs
/// inline on the caller's thread with no spawning at all.
///
/// Scheduling is dynamic: each worker repeatedly claims the next
/// unclaimed index from a shared counter. A pathologically long task
/// therefore costs the run `max(longest task, total work / workers)`
/// instead of serializing a whole contiguous chunk behind it.
///
/// Panics in `f` are propagated (the pool does not try to outlive a
/// poisoned task set).
pub fn run_indexed<T, F>(tasks: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(tasks, workers);
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }
    let (results, _) = run_indexed_tracked(tasks, workers, f);
    results
}

/// [`run_indexed`], additionally reporting how many tasks each worker
/// executed (index = worker). The counts are scheduling-dependent and
/// exist for balance diagnostics and tests only — never let them feed
/// back into task outputs.
pub fn run_indexed_tracked<T, F>(tasks: usize, workers: usize, f: F) -> (Vec<T>, Vec<usize>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(tasks, workers);
    if workers <= 1 {
        return ((0..tasks).map(f).collect(), vec![tasks]);
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut per_worker: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut claimed: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks {
                            break;
                        }
                        claimed.push((i, f(i)));
                    }
                    claimed
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("pool worker panicked"));
        }
    });
    let counts: Vec<usize> = per_worker.iter().map(Vec::len).collect();
    // Merge in index order: determinism lives here, not in scheduling.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    for claimed in per_worker {
        for (i, value) in claimed {
            slots[i] = Some(value);
        }
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every index dispatched exactly once"))
        .collect();
    (results, counts)
}

fn resolve_workers(tasks: usize, workers: usize) -> usize {
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    };
    workers.min(tasks.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Condvar, Mutex};

    #[test]
    fn results_are_in_index_order() {
        for workers in [0usize, 1, 2, 3, 8, 17] {
            let out = run_indexed(40, workers, |i| i * i);
            let expect: Vec<usize> = (0..40).map(|i| i * i).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn empty_and_single_task_sets() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |i| i + 10), vec![10]);
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let reference = run_indexed(64, 1, |i| (i as u64).wrapping_mul(0x9e3779b9));
        for workers in [2usize, 4, 8, 16] {
            assert_eq!(
                run_indexed(64, workers, |i| (i as u64).wrapping_mul(0x9e3779b9)),
                reference,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn tracked_counts_cover_every_task() {
        let (out, counts) = run_indexed_tracked(100, 4, |i| i);
        assert_eq!(out.len(), 100);
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<usize>(), 100);
    }

    /// The uneven-shard-tail regression, made deterministic: task 0 is
    /// "pathologically long" — it blocks until every other task has
    /// completed. Under contiguous chunking with 2 workers, tasks 1..20
    /// sit in the same chunk *behind* task 0 and can never run
    /// (deadlock → the 60 s timeout trips). Under work-stealing the
    /// second worker drains them while the first is stuck, so the run
    /// completes and task 0's wait is satisfied.
    #[test]
    fn pathologically_skewed_task_lengths_still_balance() {
        const N: usize = 40;
        let done = Mutex::new(0usize);
        let cv = Condvar::new();
        let out = run_indexed(N, 2, |i| {
            if i == 0 {
                let guard = done.lock().unwrap();
                let (_guard, timeout) = cv
                    .wait_timeout_while(guard, std::time::Duration::from_secs(60), |d| *d < N - 1)
                    .unwrap();
                assert!(
                    !timeout.timed_out(),
                    "tasks behind the long one never ran: scheduler is chunking, not stealing"
                );
            } else {
                *done.lock().unwrap() += 1;
                cv.notify_all();
            }
            i
        });
        assert_eq!(out, (0..N).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panic_propagates() {
        let _ = run_indexed(8, 2, |i| {
            if i == 5 {
                panic!("task failure");
            }
            i
        });
    }
}
