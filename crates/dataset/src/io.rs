//! Dataset persistence: JSON manifest + pcap traces.
//!
//! Layout of a saved dataset directory:
//!
//! ```text
//! <dir>/
//!   manifest.json          # name, viewers, ground truth, stats
//!   traces/viewer_000.pcap # one standard pcap per viewer
//!   ...
//! ```
//!
//! The manifest is written with `wm-json` (ordered keys, byte-exact)
//! and round-trips through [`load_manifest`].

use crate::run::SessionRecord;
use crate::spec::{DatasetSpec, OperationalConditions, ViewerSpec};
use std::path::Path;
use wm_behavior::{AgeGroup, BehaviorAttributes, Gender, PoliticalAlignment, StateOfMind};
use wm_json::Value;
use wm_net::conditions::{ConnectionType, LinkConditions, TimeOfDay};
use wm_player::{Browser, DeviceForm, Os, Profile};

/// Save a fully-run dataset: manifest + per-viewer pcaps.
pub fn save_dataset(dir: &Path, name: &str, records: &[SessionRecord]) -> std::io::Result<()> {
    let traces = dir.join("traces");
    std::fs::create_dir_all(&traces)?;
    let mut viewers = Vec::new();
    for r in records {
        let file = format!("viewer_{:03}.pcap", r.spec.id);
        r.output.trace.write_pcap_file(&traces.join(&file))?;
        viewers.push(viewer_json(
            &r.spec,
            Some(&r.output.choice_string()),
            Some(&file),
        ));
    }
    let manifest = Value::object(vec![
        ("name".into(), Value::from(name)),
        (
            "paper".into(),
            Value::from("White Mirror (SIGCOMM 2019 posters)"),
        ),
        ("viewers".into(), Value::array(viewers)),
    ]);
    std::fs::write(
        dir.join("manifest.json"),
        wm_json::to_pretty_bytes(&manifest),
    )
}

/// Reload a manifest into a spec plus per-viewer ground truth and trace
/// file names.
pub fn load_manifest(dir: &Path) -> std::io::Result<(DatasetSpec, Vec<(String, String)>)> {
    let bytes = std::fs::read(dir.join("manifest.json"))?;
    let doc = wm_json::parse(&bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "manifest schema");
    let name = doc
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(bad)?
        .to_owned();
    let mut viewers = Vec::new();
    let mut truths = Vec::new();
    for v in doc
        .get("viewers")
        .and_then(Value::as_array)
        .ok_or_else(bad)?
    {
        let (spec, truth, trace) = viewer_from_json(v).ok_or_else(bad)?;
        viewers.push(spec);
        truths.push((truth, trace));
    }
    Ok((DatasetSpec { name, viewers }, truths))
}

fn viewer_json(spec: &ViewerSpec, choices: Option<&str>, trace: Option<&str>) -> Value {
    let mut members = vec![
        ("id".to_string(), Value::from(spec.id as i64)),
        ("seed".to_string(), Value::from(spec.seed as i64)),
        (
            "os".to_string(),
            Value::from(spec.operational.profile.os.label()),
        ),
        (
            "browser".to_string(),
            Value::from(spec.operational.profile.browser.label()),
        ),
        (
            "device".to_string(),
            Value::from(spec.operational.profile.device.label()),
        ),
        (
            "connection".to_string(),
            Value::from(spec.operational.link.connection.label()),
        ),
        (
            "timeOfDay".to_string(),
            Value::from(spec.operational.link.time_of_day.label()),
        ),
        ("age".to_string(), Value::from(spec.behavior.age.label())),
        (
            "gender".to_string(),
            Value::from(spec.behavior.gender.label()),
        ),
        (
            "political".to_string(),
            Value::from(spec.behavior.political.label()),
        ),
        (
            "stateOfMind".to_string(),
            Value::from(spec.behavior.mind.label()),
        ),
    ];
    if let Some(c) = choices {
        members.push(("choices".to_string(), Value::from(c)));
    }
    if let Some(t) = trace {
        members.push(("trace".to_string(), Value::from(t)));
    }
    Value::object(members)
}

fn viewer_from_json(v: &Value) -> Option<(ViewerSpec, String, String)> {
    let os = match v.get("os")?.as_str()? {
        "Windows" => Os::Windows,
        "Ubuntu" => Os::Ubuntu,
        "macOS" => Os::MacOs,
        _ => return None,
    };
    let browser = match v.get("browser")?.as_str()? {
        "Chrome" => Browser::Chrome,
        "Firefox" => Browser::Firefox,
        _ => return None,
    };
    let device = match v.get("device")?.as_str()? {
        "Desktop" => DeviceForm::Desktop,
        "Laptop" => DeviceForm::Laptop,
        _ => return None,
    };
    let connection = match v.get("connection")?.as_str()? {
        "Ethernet" => ConnectionType::Wired,
        "WiFi" => ConnectionType::Wireless,
        _ => return None,
    };
    let tod = match v.get("timeOfDay")?.as_str()? {
        "Morning" => TimeOfDay::Morning,
        "Noon" => TimeOfDay::Noon,
        "Night" => TimeOfDay::Night,
        _ => return None,
    };
    let age = match v.get("age")?.as_str()? {
        "< 20" => AgeGroup::Under20,
        "20-25" => AgeGroup::From20To25,
        "25-30" => AgeGroup::From25To30,
        "> 30" => AgeGroup::Over30,
        _ => return None,
    };
    let gender = match v.get("gender")?.as_str()? {
        "Male" => Gender::Male,
        "Female" => Gender::Female,
        "Undisclosed" => Gender::Undisclosed,
        _ => return None,
    };
    let political = match v.get("political")?.as_str()? {
        "Liberal" => PoliticalAlignment::Liberal,
        "Centrist" => PoliticalAlignment::Centrist,
        "Communist" => PoliticalAlignment::Communist,
        "Undisclosed" => PoliticalAlignment::Undisclosed,
        _ => return None,
    };
    let mind = match v.get("stateOfMind")?.as_str()? {
        "Happy" => StateOfMind::Happy,
        "Stressed" => StateOfMind::Stressed,
        "Sad" => StateOfMind::Sad,
        "Undisclosed" => StateOfMind::Undisclosed,
        _ => return None,
    };
    let spec = ViewerSpec {
        id: v.get("id")?.as_i64()? as u32,
        seed: v.get("seed")?.as_i64()? as u64,
        behavior: BehaviorAttributes {
            age,
            gender,
            political,
            mind,
        },
        operational: OperationalConditions {
            profile: Profile::new(os, browser, device),
            link: LinkConditions::new(connection, tod),
        },
    };
    let truth = v
        .get("choices")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_owned();
    let trace = v
        .get("trace")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_owned();
    Some((spec, truth, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_dataset, SimOptions};
    use std::sync::Arc;
    use wm_story::bandersnatch::tiny_film;

    #[test]
    fn save_and_reload_roundtrip() {
        let graph = Arc::new(tiny_film());
        let spec = DatasetSpec::generate("roundtrip", 4, 42);
        let opts = SimOptions {
            media_scale: 2048,
            time_scale: 20,
            ..SimOptions::default()
        };
        let records = run_dataset(&graph, &spec, &opts);

        let dir = std::env::temp_dir().join("wm_dataset_io_test");
        let _ = std::fs::remove_dir_all(&dir);
        save_dataset(&dir, "roundtrip", &records).unwrap();

        let (loaded, truths) = load_manifest(&dir).unwrap();
        assert_eq!(loaded.name, "roundtrip");
        assert_eq!(loaded.viewers, spec.viewers);
        for (r, (truth, trace_file)) in records.iter().zip(truths.iter()) {
            assert_eq!(*truth, r.output.choice_string());
            // Traces reload byte-identically.
            let trace =
                wm_capture::tap::Trace::read_pcap_file(&dir.join("traces").join(trace_file))
                    .unwrap();
            assert_eq!(trace.to_pcap_bytes(), r.output.trace.to_pcap_bytes());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("wm_dataset_io_bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), b"{not json").unwrap();
        assert!(load_manifest(&dir).is_err());
        std::fs::write(dir.join("manifest.json"), b"{\"name\":\"x\"}").unwrap();
        assert!(load_manifest(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
