//! Property-based tests for the capture toolchain.

use proptest::prelude::*;
use wm_capture::flow::FlowReassembler;
use wm_capture::pcap::{PcapReader, PcapWriter};
use wm_capture::records::extract_records;
use wm_capture::tap::{CapturedPacket, Tap, Trace};
use wm_net::headers::{FlowId, TcpFlags};
use wm_net::tcp::TcpSegment;
use wm_net::time::SimTime;
use wm_tls::conn::{RecordEngine, SessionKeys};
use wm_tls::record::ContentType;
use wm_tls::suite::CipherSuite;

const FLOW: FlowId = FlowId {
    src_ip: [192, 168, 0, 9],
    src_port: 50505,
    dst_ip: [13, 13, 13, 13],
    dst_port: 443,
};

fn seg(seq: u32, payload: Vec<u8>) -> TcpSegment {
    TcpSegment { flow: FLOW, seq, ack: 0, flags: TcpFlags::PSH_ACK, payload, retransmit: false }
}

proptest! {
    /// pcap files round-trip arbitrary packet contents and timestamps.
    #[test]
    fn pcap_roundtrip(packets in prop::collection::vec(
        (any::<u32>(), 0u32..1_000_000, prop::collection::vec(any::<u8>(), 0..200)),
        0..20,
    )) {
        let mut w = PcapWriter::new();
        for (s, us, data) in &packets {
            w.write_packet(*s, *us, data);
        }
        let bytes = w.into_bytes();
        let mut r = PcapReader::new(&bytes).expect("own file");
        let back = r.read_all().expect("own file");
        prop_assert_eq!(back.len(), packets.len());
        for (p, (s, us, data)) in back.iter().zip(packets.iter()) {
            prop_assert_eq!(p.ts_sec, *s);
            prop_assert_eq!(p.ts_usec, *us);
            prop_assert_eq!(&p.data, data);
        }
    }

    /// The pcap reader never panics on arbitrary bytes.
    #[test]
    fn pcap_reader_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(mut r) = PcapReader::new(&bytes) {
            let _ = r.read_all();
        }
    }

    /// Trace serialization round-trips through the pcap format.
    #[test]
    fn trace_roundtrip(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..300), 0..12)) {
        let mut tap = Tap::new();
        let mut seq = 1u32;
        for (i, p) in payloads.iter().enumerate() {
            tap.record_segment(SimTime(i as u64 * 1000), &seg(seq, p.clone()));
            seq = seq.wrapping_add(p.len() as u32);
        }
        let trace = tap.into_trace();
        let back = Trace::from_pcap_bytes(&trace.to_pcap_bytes()).expect("own trace");
        prop_assert_eq!(back.packets, trace.packets);
    }

    /// Reassembly is invariant to the capture order of segments, and
    /// the reassembled stream equals the original byte stream when no
    /// segment is missing.
    #[test]
    fn reassembly_order_invariant(chunks in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 1..100), 1..12,
    ), shuffle in any::<u64>()) {
        // Build contiguous segments.
        let mut segments = Vec::new();
        let mut seq = 1000u32;
        let mut stream = Vec::new();
        for c in &chunks {
            segments.push(seg(seq, c.clone()));
            seq = seq.wrapping_add(c.len() as u32);
            stream.extend_from_slice(c);
        }
        // Record in a pseudo-shuffled order (times still increasing).
        let mut order: Vec<usize> = (0..segments.len()).collect();
        let mut s = shuffle;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut tap = Tap::new();
        for (t, &idx) in order.iter().enumerate() {
            tap.record_segment(SimTime(t as u64 * 1000), &segments[idx]);
        }
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        prop_assert_eq!(flows.len(), 1);
        let up = &flows[0].upstream;
        prop_assert_eq!(up.gap_count(), 0);
        let got: Vec<u8> = up.chunks.iter().flat_map(|c| c.data.clone()).collect();
        prop_assert_eq!(got, stream);
    }

    /// Dropping any subset of segments yields gap accounting that
    /// exactly matches the missing bytes.
    #[test]
    fn gap_accounting_exact(chunks in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 1..80), 2..10,
    ), drop_mask in any::<u16>()) {
        let mut segments = Vec::new();
        let mut seq = 0u32;
        for c in &chunks {
            segments.push((seq, c.clone()));
            seq = seq.wrapping_add(c.len() as u32);
        }
        // Always keep the first and last so the extent is known.
        let mut tap = Tap::new();
        let mut kept_bytes = 0u64;
        let mut total_span = 0u64;
        for (i, (s, c)) in segments.iter().enumerate() {
            total_span += c.len() as u64;
            let dropped = i != 0
                && i != segments.len() - 1
                && (drop_mask >> (i % 16)) & 1 == 1;
            if !dropped {
                kept_bytes += c.len() as u64;
                tap.record_segment(SimTime(i as u64 * 1000), &seg(*s, c.clone()));
            }
        }
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        let up = &flows[0].upstream;
        prop_assert_eq!(up.data_bytes(), kept_bytes);
        prop_assert_eq!(up.data_bytes() + up.gap_bytes(), total_span);
    }

    /// Record extraction over a lossless capture of a TLS stream
    /// recovers every record exactly; resync stats stay zero.
    #[test]
    fn extraction_lossless(master in any::<[u8; 32]>(),
                           sizes in prop::collection::vec(0usize..2500, 1..10),
                           mss in 200usize..1448) {
        let keys = SessionKeys::derive(&master, CipherSuite::Aead);
        let mut engine = RecordEngine::client(&keys);
        let mut wire = Vec::new();
        for &s in &sizes {
            wire.extend(engine.seal_payload(ContentType::ApplicationData, &vec![3u8; s]));
        }
        let mut tap = Tap::new();
        let mut seq = 77u32;
        for (i, piece) in wire.chunks(mss).enumerate() {
            tap.record_segment(SimTime(i as u64 * 500), &seg(seq, piece.to_vec()));
            seq = seq.wrapping_add(piece.len() as u32);
        }
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        let ex = extract_records(&flows[0].upstream);
        prop_assert_eq!(ex.stats.gaps, 0);
        prop_assert_eq!(ex.stats.records, sizes.len());
        let lens: Vec<u16> = ex.records.iter().map(|r| r.record.length).collect();
        let expect: Vec<u16> = sizes.iter().map(|&s| (s + 16) as u16).collect();
        prop_assert_eq!(lens, expect);
    }

    /// Malformed frames in a trace are skipped, never panic.
    #[test]
    fn reassembler_total_on_garbage(frames in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..120), 0..10)) {
        let trace = Trace {
            packets: frames
                .into_iter()
                .enumerate()
                .map(|(i, frame)| CapturedPacket { time: SimTime(i as u64), frame })
                .collect(),
        };
        let _ = FlowReassembler::reassemble(&trace);
    }
}
