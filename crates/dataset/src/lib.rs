//! # wm-dataset — the synthetic IITM-Bandersnatch corpus
//!
//! The paper's dataset is 100 volunteers watching Bandersnatch under a
//! grid of operational conditions, each data point a pair
//! `{encrypted trace, ground-truth choices}` plus the volunteer's
//! behavioural attributes (Table I). This crate generates the synthetic
//! counterpart:
//!
//! * [`spec`] — viewer specifications: behavioural attributes sampled
//!   from the `wm-behavior` model, operational conditions cycled over
//!   the full grid (3 OSes × 2 browsers × 2 devices × 2 connection
//!   types × 3 times of day), and a per-viewer seed;
//! * [`run`] — execute the viewing sessions (in parallel across
//!   threads; each session is independently seeded and deterministic);
//! * [`io`] — persist and reload: the dataset manifest as JSON
//!   (via `wm-json`), traces as standard pcap files.

pub mod io;
pub mod run;
pub mod spec;

pub use io::{load_manifest, save_dataset};
pub use run::{
    aggregate_telemetry, run_dataset, try_run_dataset, try_run_dataset_with_workers, DatasetRun,
    SessionFailure, SessionRecord, SimOptions,
};
pub use spec::{DatasetSpec, OperationalConditions, Table1Summary, ViewerSpec};
