//! Incremental per-flow TCP reassembly and TLS record extraction.
//!
//! The offline pipeline ([`wm_capture::flow`] + [`wm_capture::records`])
//! reassembles a whole capture, then parses records over the finished
//! byte stream. A live attacker cannot wait: [`FlowIngest`] consumes
//! TCP segments one at a time and emits each TLS record the moment its
//! last byte arrives, under hard memory budgets ([`IngestLimits`]).
//!
//! Capture impairments map onto explicit state transitions:
//!
//! * **reordering** — a segment past the contiguous frontier is
//!   *parked* (budgeted) until the hole before it fills;
//! * **loss** — a hole older than the caller's patience is *declared a
//!   gap*: the carry is abandoned, reassembly jumps to the parked data
//!   and header parsing resynchronizes ([`wm_capture::find_resync`]),
//!   exactly what the offline extractor does across a gap — and a
//!   [`GapEvent`] reports the loss window downstream;
//! * **mid-session attach / snaplen truncation** — a header parse
//!   failing mid-stream flips the flow to unsynced and hunts for the
//!   next plausible record chain instead of discarding the rest of the
//!   run (strictly more tolerant than the offline path);
//! * **duplicate delivery** — bytes at or below the frontier are
//!   dropped, earliest copy wins, matching the offline reassembler.
//!
//! On a clean in-order capture this produces byte-for-byte the record
//! stream the offline extractor sees: same times (each record is
//! stamped with the capture time of the segment carrying its first
//! byte), same lengths, same order.

use crate::bounded::{Batch, BoundedVec, ByteCarry, ParkedSegments};
use wm_capture::time::{Duration, SimTime};
use wm_capture::{find_resync, ContentType, RecordHeader, RECORD_HEADER_LEN};

/// Memory budgets for one flow direction. Every byte [`FlowIngest`]
/// holds is covered by one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestLimits {
    /// Reassembly carry: must exceed one maximum TLS record
    /// (5 + 65 540 bytes) or large records can never complete.
    pub max_carry_bytes: usize,
    /// Total bytes of parked out-of-order segments.
    pub max_parked_bytes: usize,
    /// Count of parked out-of-order segments.
    pub max_parked_segments: usize,
    /// Offset→time marks retained for record timestamping.
    pub max_marks: usize,
}

impl Default for IngestLimits {
    fn default() -> Self {
        IngestLimits {
            max_carry_bytes: 96 * 1024,
            max_parked_bytes: 64 * 1024,
            max_parked_segments: 64,
            max_marks: 256,
        }
    }
}

/// Why a set of [`IngestLimits`] cannot run a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestLimitsError {
    /// The named budget is zero, so the flow can never make progress.
    ZeroBudget(&'static str),
    /// The carry cannot hold even one record header, so no record
    /// could ever complete.
    CarryTooSmall { need: usize, got: usize },
    /// One half of the parking budget is zero while the other is not:
    /// a budget that can never admit a segment is a configuration
    /// mistake, not a policy.
    ContradictoryParking { bytes: usize, segments: usize },
}

impl std::fmt::Display for IngestLimitsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestLimitsError::ZeroBudget(field) => {
                write!(f, "ingest budget `{field}` is zero")
            }
            IngestLimitsError::CarryTooSmall { need, got } => write!(
                f,
                "max_carry_bytes = {got} cannot hold one record header ({need} bytes)"
            ),
            IngestLimitsError::ContradictoryParking { bytes, segments } => write!(
                f,
                "parking budget is contradictory: max_parked_bytes = {bytes}, \
                 max_parked_segments = {segments} (one is zero, the other is not)"
            ),
        }
    }
}

impl std::error::Error for IngestLimitsError {}

impl IngestLimits {
    /// Validating constructor: the checked way to build non-default
    /// limits. The struct keeps public fields for compatibility, but
    /// everything that *runs* a flow against custom limits should go
    /// through here (or [`IngestLimits::validate`]) first.
    pub fn new(
        max_carry_bytes: usize,
        max_parked_bytes: usize,
        max_parked_segments: usize,
        max_marks: usize,
    ) -> Result<Self, IngestLimitsError> {
        let limits = IngestLimits {
            max_carry_bytes,
            max_parked_bytes,
            max_parked_segments,
            max_marks,
        };
        limits.validate()?;
        Ok(limits)
    }

    /// Reject zero or contradictory budgets. Parking may be disabled
    /// entirely (both halves zero — a strictly in-order tap), but a
    /// byte budget without a segment budget (or vice versa) can never
    /// admit anything and is rejected.
    pub fn validate(&self) -> Result<(), IngestLimitsError> {
        if self.max_carry_bytes == 0 {
            return Err(IngestLimitsError::ZeroBudget("max_carry_bytes"));
        }
        if self.max_carry_bytes < RECORD_HEADER_LEN + 1 {
            return Err(IngestLimitsError::CarryTooSmall {
                need: RECORD_HEADER_LEN + 1,
                got: self.max_carry_bytes,
            });
        }
        if self.max_marks == 0 {
            return Err(IngestLimitsError::ZeroBudget("max_marks"));
        }
        if (self.max_parked_bytes == 0) != (self.max_parked_segments == 0) {
            return Err(IngestLimitsError::ContradictoryParking {
                bytes: self.max_parked_bytes,
                segments: self.max_parked_segments,
            });
        }
        Ok(())
    }

    /// Upper bound on one flow's [`FlowIngest::state_bytes`] under
    /// these limits, with generous per-entry allowances (carry +
    /// recycled spares, parked bytes + poison-filled free list, marks,
    /// fixed overhead). The shared half of
    /// [`crate::OnlineConfig::state_bound`].
    pub fn per_flow_state_bound(&self) -> usize {
        2 * self.max_carry_bytes + 3 * self.max_parked_bytes + 256 * self.max_marks + 4096
    }
}

/// One TLS record surfaced by the ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtractedRecord {
    /// Capture time of the segment carrying the record's first byte.
    pub time: SimTime,
    pub content_type: ContentType,
    /// Ciphertext length from the record header (the side-channel).
    pub length: u16,
}

/// A declared loss window: reassembly skipped bytes between the last
/// record before the hole and the data it resumed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapEvent {
    /// Time of the last record extracted before the gap.
    pub last_time: SimTime,
    /// Capture time of the segment reassembly resumed at.
    pub resume_time: SimTime,
}

/// Per-flow ingest counters (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records emitted.
    pub records: u64,
    /// Loss windows declared.
    pub gaps: u64,
    /// Header-chain resynchronizations performed.
    pub resyncs: u64,
    /// Bytes abandoned (desync, oversized segments, truncated tails).
    pub skipped_bytes: u64,
    /// Bytes dropped as duplicate/stale deliveries.
    pub duplicate_bytes: u64,
    /// Park refusals that forced a hole to be declared early.
    pub parked_overflows: u64,
}

/// Streaming reassembler + record extractor for one upstream flow
/// direction. Mirrors `wm_capture::flow::DirectionAssembler` semantics
/// (relative offsets from the first payload segment's sequence number,
/// 32-bit sequence unwrap, earliest-copy-wins) but works incrementally
/// and under the [`IngestLimits`] budgets.
#[derive(Debug, Clone)]
pub struct FlowIngest {
    pub(crate) limits: IngestLimits,
    /// Sequence number of the first payload byte seen (relative 0).
    pub(crate) base_seq: Option<u32>,
    /// Highest relative offset seen, for 32-bit sequence unwrapping.
    pub(crate) last_rel: i64,
    /// Contiguous undecoded bytes starting at `carry_start`.
    pub(crate) carry: ByteCarry,
    pub(crate) carry_start: i64,
    /// (relative offset, capture time) marks for timestamping.
    pub(crate) marks: BoundedVec<(i64, SimTime)>,
    /// Out-of-order segments waiting for the hole before them.
    pub(crate) parked: ParkedSegments,
    /// Whether `carry_start` is believed to sit on a record boundary.
    pub(crate) synced: bool,
    /// When the oldest outstanding hole was first observed.
    pub(crate) hole_since: Option<SimTime>,
    /// Time of the last record emitted (gap reporting).
    pub(crate) last_record_time: SimTime,
    pub(crate) stats: IngestStats,
}

impl FlowIngest {
    pub fn new(limits: IngestLimits) -> Self {
        debug_assert!(
            limits.validate().is_ok(),
            "IngestLimits rejected: {:?}",
            limits.validate()
        );
        FlowIngest {
            limits,
            base_seq: None,
            last_rel: 0,
            carry: ByteCarry::new(limits.max_carry_bytes),
            carry_start: 0,
            marks: BoundedVec::new(limits.max_marks),
            parked: ParkedSegments::new(limits.max_parked_bytes, limits.max_parked_segments),
            // The first payload segment defines relative offset 0, and
            // the offline extractor parses straight from it — so a
            // fresh flow starts synced. A tap attached mid-session
            // fails the first header parse and resynchronizes instead.
            synced: true,
            hole_since: None,
            last_record_time: SimTime::ZERO,
            stats: IngestStats::default(),
        }
    }

    /// Feed one upstream TCP segment; completed records and declared
    /// loss windows land in the output batches.
    // wm-lint: hotpath
    pub fn accept_segment(
        &mut self,
        time: SimTime,
        seq: u32,
        payload: &[u8],
        records: &mut Batch<ExtractedRecord>,
        gaps: &mut Batch<GapEvent>,
    ) {
        if payload.is_empty() {
            return;
        }
        let base = *self.base_seq.get_or_insert(seq);
        let raw = seq.wrapping_sub(base) as i64;
        // Unwrap 32-bit sequence space around the last offset seen
        // (same arithmetic as the offline assembler).
        let span = 1i64 << 32;
        let k = (self.last_rel - raw + span / 2).div_euclid(span);
        let rel = raw + k * span;
        if rel < 0 {
            // Predates the attach point (or a retransmit from before
            // relative zero): nothing upstream anchors it. Dropped —
            // a documented divergence from offline, which re-anchors.
            self.stats.duplicate_bytes = self
                .stats
                .duplicate_bytes
                .saturating_add(payload.len() as u64);
            return;
        }
        self.last_rel = self.last_rel.max(rel);
        self.place(rel, time, payload, gaps);
        self.drain(records);
    }

    /// Declare holes older than `patience` lost and resume past them.
    pub fn flush(
        &mut self,
        now: SimTime,
        patience: Duration,
        records: &mut Batch<ExtractedRecord>,
        gaps: &mut Batch<GapEvent>,
    ) {
        while let Some(h) = self.hole_since {
            if now.since(h) <= patience {
                break;
            }
            if !self.jump_to_first_parked(gaps) {
                self.hole_since = None;
                break;
            }
            self.drain(records);
        }
    }

    /// End of capture: declare every outstanding hole, drain what
    /// parses, and write off the rest.
    pub fn finish(&mut self, records: &mut Batch<ExtractedRecord>, gaps: &mut Batch<GapEvent>) {
        self.drain(records);
        while self.jump_to_first_parked(gaps) {
            self.drain(records);
        }
        self.hole_since = None;
        if !self.carry.is_empty() {
            // Truncated final record (or unsynced tail).
            self.stats.skipped_bytes = self
                .stats
                .skipped_bytes
                .saturating_add(self.carry.len() as u64);
            self.carry.clear();
            self.marks.clear();
        }
    }

    /// Earliest capture time this flow could still emit a record for:
    /// the watermark must not pass it while data is pending here.
    pub fn frontier(&self) -> Option<SimTime> {
        if !self.carry.is_empty() {
            return Some(self.mark_time(self.carry_start));
        }
        self.parked.first_time()
    }

    /// When the oldest outstanding hole appeared (for staleness checks).
    pub fn hole_age_start(&self) -> Option<SimTime> {
        self.hole_since
    }

    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Toggle parked-segment buffer recycling (on by default). Turning
    /// it off makes every park a fresh allocation — the oracle the
    /// buffer-hygiene tests compare the recycling path against; the
    /// record/gap output must be identical either way.
    pub fn set_buffer_recycling(&mut self, on: bool) {
        self.parked.set_recycling(on);
    }

    /// Bytes of state this flow currently holds (memory accounting).
    pub fn state_bytes(&self) -> usize {
        self.carry.len()
            + self.parked.bytes()
            + self.marks.len() * std::mem::size_of::<(i64, SimTime)>()
            + std::mem::size_of::<Self>()
    }

    // -- internals ----------------------------------------------------

    fn place(&mut self, rel: i64, time: SimTime, data: &[u8], gaps: &mut Batch<GapEvent>) {
        let end = rel + data.len() as i64;
        loop {
            let appended_end = self.carry_start + self.carry.len() as i64;
            if end <= appended_end {
                self.stats.duplicate_bytes =
                    self.stats.duplicate_bytes.saturating_add(data.len() as u64);
                return;
            }
            if rel <= appended_end {
                let skip = (appended_end - rel) as usize;
                self.stats.duplicate_bytes = self.stats.duplicate_bytes.saturating_add(skip as u64);
                self.absorb_at(appended_end, time, data.get(skip..).unwrap_or_default());
                self.absorb_parked_chain();
                return;
            }
            // A hole precedes this segment: park it.
            if self.parked.park(rel, time, data) {
                if self.hole_since.is_none() {
                    self.hole_since = Some(time);
                }
                return;
            }
            // Budgets exhausted: the oldest hole is forced closed (a
            // declared gap) and the segment retries against the freed
            // budget.
            self.stats.parked_overflows = self.stats.parked_overflows.saturating_add(1);
            if !self.jump_to_first_parked(gaps) {
                // Nothing parked yet the park refused: the segment
                // alone exceeds the byte budget. Start fresh at it.
                self.note_gap(time, gaps);
                self.reset_carry_to(rel);
                self.absorb_at(rel, time, data);
                return;
            }
        }
    }

    /// Force the oldest hole closed: declare a gap, abandon the carry,
    /// and resume reassembly at the first parked segment.
    fn jump_to_first_parked(&mut self, gaps: &mut Batch<GapEvent>) -> bool {
        let Some((off, time, data)) = self.parked.take_first() else {
            return false;
        };
        self.note_gap(time, gaps);
        self.reset_carry_to(off);
        self.absorb_at(off, time, &data);
        self.parked.recycle(data);
        self.absorb_parked_chain();
        true
    }

    /// Append `data` whose first byte sits at stream offset `off`
    /// (callers guarantee `off` == appended end).
    fn absorb_at(&mut self, off: i64, time: SimTime, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        if !self.carry.absorb(data) {
            // Carry overflow: whatever is buffered cannot be a live
            // record prefix worth more than the bytes arriving now.
            self.stats.skipped_bytes = self
                .stats
                .skipped_bytes
                .saturating_add(self.carry.len() as u64);
            self.reset_carry_to(off);
            if !self.carry.absorb(data) {
                // The segment alone exceeds the budget: write it off.
                self.stats.skipped_bytes =
                    self.stats.skipped_bytes.saturating_add(data.len() as u64);
                return;
            }
        }
        self.marks.admit_evict((off, time));
    }

    /// Pull parked segments that have become contiguous into the carry.
    fn absorb_parked_chain(&mut self) {
        loop {
            let appended_end = self.carry_start + self.carry.len() as i64;
            let Some(off) = self.parked.first_offset() else {
                break;
            };
            if off > appended_end {
                break;
            }
            let Some((o, t, data)) = self.parked.take_first() else {
                break;
            };
            let end = o + data.len() as i64;
            if end <= appended_end {
                self.stats.duplicate_bytes =
                    self.stats.duplicate_bytes.saturating_add(data.len() as u64);
                self.parked.recycle(data);
                continue;
            }
            let skip = (appended_end - o) as usize;
            self.absorb_at(appended_end, t, data.get(skip..).unwrap_or_default());
            self.parked.recycle(data);
        }
        if self.parked.is_empty() {
            self.hole_since = None;
        } else if self.hole_since.is_none() {
            self.hole_since = self.parked.first_time();
        }
    }

    fn note_gap(&mut self, resume_time: SimTime, gaps: &mut Batch<GapEvent>) {
        self.stats.gaps = self.stats.gaps.saturating_add(1);
        gaps.put(GapEvent {
            last_time: self.last_record_time,
            resume_time,
        });
    }

    /// Abandon the carry (counting its bytes lost) and restart
    /// reassembly at `off`, requiring a header resync.
    fn reset_carry_to(&mut self, off: i64) {
        self.stats.skipped_bytes = self
            .stats
            .skipped_bytes
            .saturating_add(self.carry.len() as u64);
        self.carry.clear();
        self.marks.clear();
        self.carry_start = off;
        self.synced = false;
    }

    /// Parse complete records off the front of the carry.
    fn drain(&mut self, records: &mut Batch<ExtractedRecord>) {
        loop {
            if !self.synced {
                let Some(skip) = find_resync(self.carry.as_slice()) else {
                    if self.carry.len() >= self.limits.max_carry_bytes {
                        // A full carry with no plausible header chain
                        // anywhere is garbage; drop it.
                        let n = self.carry.len();
                        self.stats.skipped_bytes =
                            self.stats.skipped_bytes.saturating_add(n as u64);
                        self.carry.clear();
                        self.marks.clear();
                        self.carry_start += n as i64;
                    }
                    return;
                };
                if skip > 0 {
                    self.stats.skipped_bytes = self.stats.skipped_bytes.saturating_add(skip as u64);
                    self.carry.drop_front(skip);
                    self.carry_start += skip as i64;
                    self.prune_marks();
                }
                self.synced = true;
                self.stats.resyncs = self.stats.resyncs.saturating_add(1);
            }
            let Some(header_bytes) = self.carry.as_slice().first_chunk::<RECORD_HEADER_LEN>()
            else {
                return;
            };
            let Some(header) = RecordHeader::parse(header_bytes) else {
                // Mid-stream desync (tap attach, clipped bytes): hunt
                // for the next plausible boundary. `find_resync` cannot
                // return 0 here (the parse at offset 0 just failed), so
                // this always makes progress.
                self.synced = false;
                continue;
            };
            let total = RECORD_HEADER_LEN + header.length as usize;
            if self.carry.len() < total {
                return;
            }
            let time = self.mark_time(self.carry_start);
            records.put(ExtractedRecord {
                time,
                content_type: header.content_type,
                length: header.length,
            });
            self.stats.records = self.stats.records.saturating_add(1);
            self.last_record_time = time;
            self.carry.drop_front(total);
            self.carry_start += total as i64;
            self.prune_marks();
        }
    }

    /// Capture time of the segment covering stream offset `off`: the
    /// last mark at or before it (matches the offline assembler's
    /// `time_at`).
    fn mark_time(&self, off: i64) -> SimTime {
        let mut best: Option<SimTime> = None;
        for &(o, t) in self.marks.iter() {
            if o <= off {
                best = Some(t);
            } else {
                break;
            }
        }
        best.or_else(|| self.marks.first().map(|&(_, t)| t))
            .unwrap_or(SimTime::ZERO)
    }

    /// Drop marks wholly behind the carry start (keeping the one that
    /// still covers it).
    fn prune_marks(&mut self) {
        while let Some(&(o2, _)) = self.marks.get(1) {
            if o2 <= self.carry_start {
                self.marks.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A syntactically valid TLS record: ApplicationData (23), TLS 1.2.
    fn record(len: u16) -> Vec<u8> {
        let mut r = vec![23, 3, 3, (len >> 8) as u8, (len & 0xff) as u8];
        r.extend(std::iter::repeat_n(0xab, len as usize));
        r
    }

    fn drain_all(
        ing: &mut FlowIngest,
        segs: &[(u64, u32, &[u8])],
    ) -> (Vec<ExtractedRecord>, Vec<GapEvent>) {
        let mut recs = Batch::new();
        let mut gaps = Batch::new();
        for &(t, seq, payload) in segs {
            ing.accept_segment(SimTime(t), seq, payload, &mut recs, &mut gaps);
        }
        ing.finish(&mut recs, &mut gaps);
        (recs.into_vec(), gaps.into_vec())
    }

    #[test]
    fn clean_in_order_stream_extracts_records() {
        let mut ing = FlowIngest::new(IngestLimits::default());
        let a = record(100);
        let b = record(2212);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        // Split mid-record to prove carry handling.
        let (left, right) = all.split_at(a.len() + 3);
        let (recs, gaps) = drain_all(
            &mut ing,
            &[
                (1_000, 5000, left),
                (2_000, 5000 + left.len() as u32, right),
            ],
        );
        assert!(gaps.is_empty());
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].length, 100);
        assert_eq!(recs[0].time, SimTime(1_000));
        assert_eq!(recs[1].length, 2212);
        // Second record's first byte arrived in the first segment.
        assert_eq!(recs[1].time, SimTime(1_000));
    }

    #[test]
    fn reordered_segments_reassemble() {
        let mut ing = FlowIngest::new(IngestLimits::default());
        let a = record(50);
        let b = record(60);
        let (recs, gaps) = drain_all(
            &mut ing,
            &[
                (1_000, 0, &a),
                // b's second half first, then its first half.
                (2_000, (a.len() + 30) as u32, &b[30..]),
                (3_000, a.len() as u32, &b[..30]),
            ],
        );
        assert!(gaps.is_empty());
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].length, 60);
        assert_eq!(
            recs[1].time,
            SimTime(3_000),
            "stamped at first-byte arrival"
        );
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut ing = FlowIngest::new(IngestLimits::default());
        let a = record(40);
        let (recs, _) = drain_all(&mut ing, &[(1_000, 0, &a), (2_000, 0, &a)]);
        assert_eq!(recs.len(), 1);
        assert_eq!(ing.stats().duplicate_bytes, a.len() as u64);
    }

    #[test]
    fn stale_hole_declares_gap_and_resyncs() {
        let mut ing = FlowIngest::new(IngestLimits::default());
        let a = record(40);
        let b = record(80);
        let mut recs = Batch::new();
        let mut gaps = Batch::new();
        ing.accept_segment(SimTime(1_000), 0, &a, &mut recs, &mut gaps);
        // b arrives past a hole (a lost segment before it).
        let hole = (a.len() + 500) as u32;
        ing.accept_segment(SimTime(2_000), hole, &b, &mut recs, &mut gaps);
        assert_eq!(recs.len(), 1);
        // Hole still young: nothing declared.
        ing.flush(
            SimTime(2_100),
            Duration::from_millis(500),
            &mut recs,
            &mut gaps,
        );
        assert!(gaps.is_empty());
        // Hole expires: gap declared, b extracted after resync.
        ing.flush(
            SimTime(600_000),
            Duration::from_millis(500),
            &mut recs,
            &mut gaps,
        );
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps.as_slice()[0].last_time, SimTime(1_000));
        assert_eq!(gaps.as_slice()[0].resume_time, SimTime(2_000));
        assert_eq!(recs.len(), 2);
        assert_eq!(recs.as_slice()[1].length, 80);
        assert!(ing.stats().resyncs >= 1);
    }

    #[test]
    fn mid_stream_attach_resynchronizes() {
        let mut ing = FlowIngest::new(IngestLimits::default());
        // Tap attached mid-record: the first bytes are a record tail
        // (garbage from the parser's point of view) followed by two
        // complete records.
        let mut bytes = vec![0xaa; 37];
        let tail_len = bytes.len();
        bytes.extend_from_slice(&record(100));
        bytes.extend_from_slice(&record(200));
        let (recs, _) = drain_all(&mut ing, &[(1_000, 77, &bytes)]);
        assert_eq!(recs.len(), 2, "resync recovers the records after the tail");
        assert_eq!(recs[0].length, 100);
        assert!(ing.stats().skipped_bytes >= tail_len as u64);
    }

    #[test]
    fn memory_stays_within_budgets() {
        let limits = IngestLimits {
            max_carry_bytes: 4096,
            max_parked_bytes: 2048,
            max_parked_segments: 8,
            max_marks: 16,
        };
        let mut ing = FlowIngest::new(limits);
        let mut recs = Batch::new();
        let mut gaps = Batch::new();
        // Hostile stream: every segment leaves a hole, forever.
        let mut off = 0u32;
        for i in 0..500u64 {
            let seg = record(90);
            off = off.wrapping_add(seg.len() as u32 + 13);
            ing.accept_segment(SimTime(i * 1_000), off, &seg, &mut recs, &mut gaps);
            assert!(
                ing.state_bytes() <= 4096 + 2048 + 16 * 16 + 512,
                "state grew past budgets at segment {i}"
            );
        }
        // Gaps were declared to stay within budget.
        assert!(ing.stats().parked_overflows > 0 || !gaps.is_empty());
    }
}
