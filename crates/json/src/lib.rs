//! # wm-json — byte-exact JSON for the White Mirror reproduction
//!
//! The side-channel studied by the paper is the *serialized size* of the
//! JSON state blobs that the Netflix player posts at every choice point.
//! Reproducing the attack therefore requires full control over every byte
//! of the serialized document: key order, escaping, number formatting and
//! whitespace all contribute to the TLS record length that the
//! eavesdropper observes.
//!
//! This crate implements a small, dependency-free JSON document model:
//!
//! * [`Value`] — an ordered document tree (object keys keep insertion
//!   order, exactly like the serializer of a real browser runtime does for
//!   object literals).
//! * [`to_bytes`] / [`Value::serialized_len`] — a compact serializer and a
//!   length oracle that agree byte-for-byte.
//! * [`parse`] — a recursive-descent parser used by the simulated server
//!   to validate the blobs it receives (and by round-trip tests).
//!
//! The crate is deliberately *not* a general-purpose JSON library: numbers
//! are restricted to the shapes the simulated player emits (i64 and
//! fixed-point milliseconds) so that serialization is total and
//! unambiguous.

pub mod de;
pub mod escape;
pub mod number;
pub mod ser;
pub mod value;

pub use de::{parse, ParseError};
pub use ser::{to_bytes, to_pretty_bytes};
pub use value::{Number, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_smoke() {
        let v = Value::object(vec![
            ("a".into(), Value::from(1i64)),
            ("b".into(), Value::from("x")),
        ]);
        let bytes = to_bytes(&v);
        assert_eq!(parse(&bytes).unwrap(), v);
        assert_eq!(bytes.len(), v.serialized_len());
    }
}
