//! # wm-http — minimal HTTP/1.1 framing
//!
//! The Netflix player speaks HTTPS: HTTP requests and responses inside
//! the TLS stream. Header bytes count toward the TLS record lengths the
//! eavesdropper observes, so requests are serialized byte-exactly here
//! (header order and spacing fixed, `Content-Length` framing only — the
//! state-report POSTs the paper studies are small single-record bodies,
//! not chunked).
//!
//! The module provides [`Request`]/[`Response`] builders with exact
//! serialized sizes, plus incremental parsers ([`RequestParser`],
//! [`ResponseParser`]) used by the simulated server and player.

use std::fmt;

mod parse;

pub use parse::{ParseError, ParsePhase, RequestParser, ResponseParser};

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// Headers in serialization order (order matters for byte layout).
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Build a request; a `Content-Length` header is appended
    /// automatically when a body is present.
    pub fn new(method: &str, path: &str) -> Self {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Append a header (chainable).
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Attach a body (chainable).
    pub fn body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Serialize to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.extend_from_slice(self.method.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.path.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !self.body.is_empty() {
            out.extend_from_slice(b"Content-Length: ");
            out.extend_from_slice(self.body.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Exact length of [`Request::to_bytes`].
    pub fn serialized_len(&self) -> usize {
        let mut n = self.method.len() + 1 + self.path.len() + 11; // " HTTP/1.1\r\n"
        for (name, value) in &self.headers {
            n += name.len() + 2 + value.len() + 2;
        }
        if !self.body.is_empty() {
            n += 16 + dec_len(self.body.len()) + 2; // "Content-Length: …\r\n"
        }
        n + 2 + self.body.len()
    }

    /// Look up a header value (case-insensitive name match).
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub reason: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    pub fn new(status: u16, reason: &str) -> Self {
        Response {
            status,
            reason: reason.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// `200 OK` shorthand.
    pub fn ok() -> Self {
        Response::new(200, "OK")
    }

    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    pub fn body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Serialize to wire bytes (Content-Length always present, matching
    /// real origin servers).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(b"HTTP/1.1 ");
        out.extend_from_slice(self.status.to_string().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.reason.as_bytes());
        out.extend_from_slice(b"\r\n");
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"Content-Length: ");
        out.extend_from_slice(self.body.len().to_string().as_bytes());
        out.extend_from_slice(b"\r\n\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} ({} body bytes)",
            self.method,
            self.path,
            self.body.len()
        )
    }
}

fn dec_len(mut v: usize) -> usize {
    let mut n = 1;
    while v >= 10 {
        v /= 10;
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_format() {
        let req = Request::new("POST", "/state")
            .header("Host", "www.netflix.com")
            .body(b"{\"x\":1}".to_vec());
        let bytes = req.to_bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.starts_with("POST /state HTTP/1.1\r\n"));
        assert!(text.contains("Host: www.netflix.com\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"));
        assert_eq!(bytes.len(), req.serialized_len());
    }

    #[test]
    fn get_without_body_has_no_content_length() {
        let req = Request::new("GET", "/chunk/1");
        let text = String::from_utf8(req.to_bytes()).unwrap();
        assert!(!text.contains("Content-Length"));
        assert_eq!(req.to_bytes().len(), req.serialized_len());
    }

    #[test]
    fn serialized_len_matches_across_sizes() {
        for body_len in [0usize, 1, 9, 10, 99, 100, 1000, 12345] {
            let req = Request::new("POST", "/x")
                .header("A", "b")
                .body(vec![b'z'; body_len]);
            assert_eq!(
                req.to_bytes().len(),
                req.serialized_len(),
                "body {body_len}"
            );
        }
    }

    #[test]
    fn response_wire_format() {
        let resp = Response::ok()
            .header("Content-Type", "application/json")
            .body(b"{}".to_vec());
        let text = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn header_lookup_case_insensitive() {
        let req = Request::new("GET", "/").header("X-Netflix-Esn", "NFCDIE-02");
        assert_eq!(req.header_value("x-netflix-esn"), Some("NFCDIE-02"));
        assert_eq!(req.header_value("missing"), None);
    }
}
