//! # wm-sim — end-to-end session simulation
//!
//! Wires every substrate into one deterministic viewing session:
//!
//! ```text
//!   Player ──HTTP──> TLS record engine ──TCP──> link ──> Server
//!     ▲                                   │
//!     │                                  tap (wm-capture)
//!     └──────────── responses ◄───────────┘
//! ```
//!
//! Real bytes flow the whole way: the player's HTTP requests are sealed
//! into genuine TLS records, segmented by TCP-lite, carried over the
//! lossy link models, observed by the passive tap (which serializes
//! real Ethernet/IPv4/TCP frames into a pcap-able trace), reassembled
//! and decrypted by the peer, parsed and answered.
//!
//! [`run_session`] returns the artifacts of one viewing: the capture
//! trace, the ground-truth choice sequence and timeline, per-record
//! labels for classifier training, and transfer statistics.

pub mod config;
pub mod error;
pub mod session;

pub use config::{SessionConfig, SessionOutput, SessionStats};
pub use error::{SessionError, SessionErrorKind};
pub use session::{run_session, run_session_lossy};
