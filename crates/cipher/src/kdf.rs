//! Seed expansion and key derivation helpers (splitmix64).
//!
//! Splitmix64 is the standard seed expander: statistically excellent,
//! trivially portable, and deterministic. Everything stochastic in the
//! workspace (key schedules, per-subsystem RNG seeds) is derived through
//! these functions so that a single session seed reproduces an identical
//! byte-for-byte pcap.

/// Advance `state` and return the next splitmix64 output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    mix(*state)
}

/// The splitmix64 output finalizer, usable as a standalone 64-bit mixer.
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive a labelled subkey from a 256-bit master key.
///
/// `label` provides domain separation so that e.g. the client-write and
/// server-write keys of a connection never coincide.
pub fn derive_key(master: &crate::Key, label: &str) -> crate::Key {
    let mut state = 0x77_6d_2d_6b_64_66_5f_31u64; // "wm-kdf_1"
    for chunk in master.chunks(8) {
        state ^= u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        state = mix(state);
    }
    for b in label.as_bytes() {
        state = mix(state ^ *b as u64);
    }
    let mut out = [0u8; 32];
    for chunk in out.chunks_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    out
}

/// Derive a per-subsystem RNG seed from a session seed and a label.
pub fn derive_seed(session_seed: u64, label: &str) -> u64 {
    let mut state = session_seed;
    for b in label.as_bytes() {
        state = mix(state ^ *b as u64);
    }
    mix(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 0 from the canonical implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut s), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn derive_key_label_separation() {
        let master = [0x42; 32];
        let a = derive_key(&master, "client");
        let b = derive_key(&master, "server");
        assert_ne!(a, b);
        assert_eq!(a, derive_key(&master, "client"));
    }

    #[test]
    fn derive_seed_independent_labels() {
        let a = derive_seed(1, "player");
        let b = derive_seed(1, "link");
        let c = derive_seed(2, "player");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_is_not_identity() {
        // Note mix(0) == 0 — the splitmix finalizer has a fixed point at
        // zero, which is why derive_* seed their state with a constant.
        assert_ne!(mix(1), 1);
        assert_ne!(mix(2), 2);
        assert_ne!(mix(u64::MAX), u64::MAX);
    }
}
