//! Platform profiles: the OS × browser × device axes of Table I.
//!
//! A profile determines every platform-dependent byte that ends up in a
//! request: the `User-Agent` header, the ESN (Netflix's device serial),
//! cookie sizes, the TLS ClientHello shape, and — through
//! [`Profile::type1_target_len`] — the platform constant that places the
//! state-report record lengths where the paper's Figure 2 measured them
//! for each condition. The per-platform `clientInfo` blob length is
//! *derived* from that target at session start (see `state`), which is
//! the reproduction's calibrated substitute for the real client's
//! platform-specific payload fields.

use wm_cipher::kdf::derive_seed;
use wm_tls::handshake::HandshakeShape;

/// Operating system (Table I: Windows, Linux, Mac).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Os {
    Windows,
    Ubuntu,
    MacOs,
}

impl Os {
    pub const ALL: [Os; 3] = [Os::Windows, Os::Ubuntu, Os::MacOs];

    pub fn label(self) -> &'static str {
        match self {
            Os::Windows => "Windows",
            Os::Ubuntu => "Ubuntu",
            Os::MacOs => "macOS",
        }
    }
}

/// Browser (Table I: Google Chrome, Firefox).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Browser {
    Chrome,
    Firefox,
}

impl Browser {
    pub const ALL: [Browser; 2] = [Browser::Chrome, Browser::Firefox];

    pub fn label(self) -> &'static str {
        match self {
            Browser::Chrome => "Chrome",
            Browser::Firefox => "Firefox",
        }
    }
}

/// Device form factor (Table I: Desktop, Laptop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceForm {
    Desktop,
    Laptop,
}

impl DeviceForm {
    pub const ALL: [DeviceForm; 2] = [DeviceForm::Desktop, DeviceForm::Laptop];

    pub fn label(self) -> &'static str {
        match self {
            DeviceForm::Desktop => "Desktop",
            DeviceForm::Laptop => "Laptop",
        }
    }
}

/// One cell of the platform grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Profile {
    pub os: Os,
    pub browser: Browser,
    pub device: DeviceForm,
}

impl Profile {
    pub fn new(os: Os, browser: Browser, device: DeviceForm) -> Self {
        Profile {
            os,
            browser,
            device,
        }
    }

    /// The paper's Figure 2 conditions.
    pub fn ubuntu_firefox_desktop() -> Self {
        Profile::new(Os::Ubuntu, Browser::Firefox, DeviceForm::Desktop)
    }

    pub fn windows_firefox_desktop() -> Self {
        Profile::new(Os::Windows, Browser::Firefox, DeviceForm::Desktop)
    }

    /// Every profile in the grid (12 cells).
    pub fn all() -> Vec<Profile> {
        let mut out = Vec::new();
        for os in Os::ALL {
            for browser in Browser::ALL {
                for device in DeviceForm::ALL {
                    out.push(Profile::new(os, browser, device));
                }
            }
        }
        out
    }

    /// "Desktop/Firefox/Ubuntu"-style label, matching the paper's figure
    /// captions.
    pub fn label(self) -> String {
        format!(
            "{}/{}/{}",
            self.device.label(),
            self.browser.label(),
            self.os.label()
        )
    }

    /// 2019-era User-Agent string.
    pub fn user_agent(self) -> &'static str {
        match (self.os, self.browser) {
            (Os::Windows, Browser::Chrome) => {
                "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/71.0.3578.98 Safari/537.36"
            }
            (Os::Ubuntu, Browser::Chrome) => {
                "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/71.0.3578.98 Safari/537.36"
            }
            (Os::MacOs, Browser::Chrome) => {
                "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_14_2) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/71.0.3578.98 Safari/537.36"
            }
            (Os::Windows, Browser::Firefox) => {
                "Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:64.0) Gecko/20100101 Firefox/64.0"
            }
            (Os::Ubuntu, Browser::Firefox) => {
                "Mozilla/5.0 (X11; Ubuntu; Linux x86_64; rv:64.0) Gecko/20100101 Firefox/64.0"
            }
            (Os::MacOs, Browser::Firefox) => {
                "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.14; rv:64.0) Gecko/20100101 Firefox/64.0"
            }
        }
    }

    /// The Netflix ESN for this session: platform prefix plus a
    /// 24-hex-char device id derived from the seed.
    pub fn esn(self, session_seed: u64) -> String {
        let os_tok = match self.os {
            Os::Windows => "WIN10",
            Os::Ubuntu => "LNX64",
            Os::MacOs => "OSX14",
        };
        let br_tok = match self.browser {
            Browser::Chrome => "CH",
            Browser::Firefox => "FF",
        };
        let dev_tok = match self.device {
            DeviceForm::Desktop => "D",
            DeviceForm::Laptop => "L",
        };
        let id = hex24(derive_seed(session_seed, "esn"));
        format!("NFCDIE-02-{os_tok}{br_tok}{dev_tok}-{id}")
    }

    /// The session cookie header value (fixed length: Netflix's
    /// `NetflixId`/`SecureNetflixId` pair is a stable-size token blob).
    pub fn cookie(self, session_seed: u64) -> String {
        let a = hex_n(derive_seed(session_seed, "cookie-a"), 160);
        let b = hex_n(derive_seed(session_seed, "cookie-b"), 80);
        format!("NetflixId={a}; SecureNetflixId={b}")
    }

    /// Target ciphertext length (the observable TLS record length) for a
    /// type-1 state report on this platform, at *reference* field widths.
    ///
    /// The Figure 2 conditions reproduce the paper's measured clusters
    /// (type-1 in 2211–2213 for Desktop/Firefox/Ubuntu, 2341–2343 for
    /// Desktop/Firefox/Windows); the remaining cells are plausible
    /// distinct constants. Actual records jitter a few bytes below the
    /// target as numeric fields are narrower than their reference width.
    pub fn type1_target_len(self) -> usize {
        let base = match (self.os, self.browser) {
            (Os::Ubuntu, Browser::Firefox) => 2213,
            (Os::Windows, Browser::Firefox) => 2343,
            (Os::MacOs, Browser::Firefox) => 2389,
            (Os::Ubuntu, Browser::Chrome) => 2158,
            (Os::Windows, Browser::Chrome) => 2266,
            (Os::MacOs, Browser::Chrome) => 2311,
        };
        base + match self.device {
            DeviceForm::Desktop => 0,
            DeviceForm::Laptop => 6,
        }
    }

    /// Type-2 reference target: the interaction diff block adds a
    /// platform-independent constant (the paper's two conditions differ
    /// by 781 and 775 bytes; 798 keeps both bands inside the measured
    /// ranges, see DESIGN.md E3).
    pub fn type2_target_len(self) -> usize {
        self.type1_target_len() + 798
    }

    /// TLS ClientHello shape for this browser.
    pub fn handshake_shape(self) -> HandshakeShape {
        match self.browser {
            Browser::Chrome => HandshakeShape::chrome(),
            Browser::Firefox => HandshakeShape::firefox(),
        }
    }

    /// Baseline probability that the browser flushes a state report's
    /// HTTP headers and body as two separate TLS records (splitting the
    /// length signature). Rare on all platforms; the network condition
    /// adds to it under load.
    pub fn split_flush_prob(self) -> f64 {
        match self.browser {
            Browser::Chrome => 0.004,
            Browser::Firefox => 0.006,
        }
    }
}

fn hex24(seed: u64) -> String {
    hex_n(seed, 24)
}

/// `n` hex chars expanded from a seed.
fn hex_n(seed: u64, n: usize) -> String {
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    let mut state = seed;
    let mut out = String::with_capacity(n);
    for i in 0..n {
        if i % 16 == 0 {
            state = wm_cipher::kdf::mix(state.wrapping_add(0x9e37_79b9));
        }
        out.push(HEX[((state >> ((i % 16) * 4)) & 0xf) as usize] as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_profiles() {
        let all = Profile::all();
        assert_eq!(all.len(), 12);
        let labels: std::collections::HashSet<String> = all.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 12);
    }

    #[test]
    fn figure2_conditions() {
        assert_eq!(
            Profile::ubuntu_firefox_desktop().label(),
            "Desktop/Firefox/Ubuntu"
        );
        assert_eq!(Profile::ubuntu_firefox_desktop().type1_target_len(), 2213);
        assert_eq!(Profile::windows_firefox_desktop().type1_target_len(), 2343);
    }

    #[test]
    fn type1_targets_distinct_per_os_browser() {
        let mut targets: Vec<usize> = Profile::all()
            .into_iter()
            .filter(|p| p.device == DeviceForm::Desktop)
            .map(|p| p.type1_target_len())
            .collect();
        targets.sort();
        targets.dedup();
        assert_eq!(targets.len(), 6);
    }

    #[test]
    fn esn_stable_per_seed_and_platform_prefixed() {
        let p = Profile::ubuntu_firefox_desktop();
        assert_eq!(p.esn(1), p.esn(1));
        assert_ne!(p.esn(1), p.esn(2));
        assert!(p.esn(1).starts_with("NFCDIE-02-LNX64FFD-"));
        // Fixed length regardless of seed.
        assert_eq!(p.esn(1).len(), p.esn(999).len());
    }

    #[test]
    fn cookie_has_fixed_length() {
        let p = Profile::windows_firefox_desktop();
        assert_eq!(p.cookie(5).len(), p.cookie(77).len());
        assert!(p.cookie(5).starts_with("NetflixId="));
    }

    #[test]
    fn user_agents_are_plausible() {
        for p in Profile::all() {
            let ua = p.user_agent();
            assert!(ua.starts_with("Mozilla/5.0"));
            match p.browser {
                Browser::Chrome => assert!(ua.contains("Chrome/71")),
                Browser::Firefox => assert!(ua.contains("Firefox/64")),
            }
        }
    }

    #[test]
    fn type2_offset_constant() {
        for p in Profile::all() {
            assert_eq!(p.type2_target_len() - p.type1_target_len(), 798);
        }
    }

    #[test]
    fn laptop_shifts_target() {
        let d = Profile::new(Os::Ubuntu, Browser::Firefox, DeviceForm::Desktop);
        let l = Profile::new(Os::Ubuntu, Browser::Firefox, DeviceForm::Laptop);
        assert_eq!(l.type1_target_len() - d.type1_target_len(), 6);
    }
}
