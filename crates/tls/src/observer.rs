//! The eavesdropper's record parser.
//!
//! Given one direction of a reassembled TCP byte stream, the observer
//! recovers the metadata of every TLS record — content type, version and
//! the all-important length — without any key material. This is exactly
//! the information the paper's attacker extracts from a capture, and it
//! is all the attack (`wm-core`) ever consumes.

use crate::record::{ContentType, RecordHeader, RECORD_HEADER_LEN};

/// Metadata of one record as seen on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedRecord {
    /// Byte offset of the record header within the observed stream.
    pub stream_offset: u64,
    pub content_type: ContentType,
    pub version: (u8, u8),
    /// Ciphertext length from the cleartext header — the side-channel.
    pub length: u16,
}

/// Incremental, key-less TLS record stream parser.
///
/// Feed it one direction of a TCP stream (in order; reassembly is the
/// capture layer's job) and it emits [`ObservedRecord`]s. On a malformed
/// header the observer marks itself desynchronized and stops emitting —
/// the capture layer surfaces that so an experiment never silently reads
/// garbage lengths.
#[derive(Default)]
pub struct RecordObserver {
    buf: Vec<u8>,
    consumed: u64,
    desynced: bool,
}

impl RecordObserver {
    /// New observer at stream offset zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the stream stopped parsing as TLS.
    pub fn is_desynced(&self) -> bool {
        self.desynced
    }

    /// Total bytes consumed into complete records so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Feed stream bytes; returns the records completed by this feed.
    // wm-lint: alloc-ok(reason = "owned-batch API: one Vec per feed call sized by completed records, not per byte")
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<ObservedRecord> {
        if self.desynced {
            return Vec::new();
        }
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < RECORD_HEADER_LEN {
                break;
            }
            let header_bytes: [u8; RECORD_HEADER_LEN] = self.buf[..RECORD_HEADER_LEN]
                .try_into()
                .expect("header length");
            let Some(header) = RecordHeader::parse(&header_bytes) else {
                self.desynced = true;
                break;
            };
            let total = RECORD_HEADER_LEN + header.length as usize;
            if self.buf.len() < total {
                break;
            }
            out.push(ObservedRecord {
                stream_offset: self.consumed,
                content_type: header.content_type,
                version: header.version,
                length: header.length,
            });
            self.buf.drain(..total);
            self.consumed += total as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::{RecordEngine, SessionKeys};
    use crate::suite::CipherSuite;

    fn client_engine() -> RecordEngine {
        RecordEngine::client(&SessionKeys::derive(&[0x22; 32], CipherSuite::Aead))
    }

    #[test]
    fn observes_lengths_without_keys() {
        let mut client = client_engine();
        let wire = client.seal_payload(ContentType::ApplicationData, &vec![0u8; 2196]);
        let mut obs = RecordObserver::new();
        let records = obs.feed(&wire);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].length, 2212); // 2196 + 16-byte tag
        assert_eq!(records[0].content_type, ContentType::ApplicationData);
        assert_eq!(records[0].stream_offset, 0);
    }

    #[test]
    fn handles_byte_at_a_time_delivery() {
        let mut client = client_engine();
        let mut wire = client.seal_payload(ContentType::ApplicationData, b"first");
        wire.extend(client.seal_payload(ContentType::ApplicationData, b"second message"));
        let mut obs = RecordObserver::new();
        let mut seen = Vec::new();
        for b in &wire {
            seen.extend(obs.feed(std::slice::from_ref(b)));
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].length as usize, 5 + 16);
        assert_eq!(seen[1].length as usize, 14 + 16);
        assert_eq!(seen[1].stream_offset, (RECORD_HEADER_LEN + 21) as u64);
        assert!(!obs.is_desynced());
        assert_eq!(obs.consumed(), wire.len() as u64);
    }

    #[test]
    fn desync_on_garbage_stops_cleanly() {
        let mut obs = RecordObserver::new();
        let records = obs.feed(&[0x00, 0x01, 0x02, 0x03, 0x04, 0x05]);
        assert!(records.is_empty());
        assert!(obs.is_desynced());
        // Further feeds are inert.
        assert!(obs.feed(&[23, 3, 3, 0, 0]).is_empty());
    }

    #[test]
    fn mixed_content_types() {
        let mut client = client_engine();
        let mut wire = Vec::new();
        // A plaintext-framed handshake record followed by app data.
        let hs_header = RecordHeader {
            content_type: ContentType::Handshake,
            version: (3, 3),
            length: 236,
        };
        wire.extend_from_slice(&hs_header.to_bytes());
        wire.extend(std::iter::repeat_n(0xaa, 236));
        wire.extend(client.seal_payload(ContentType::ApplicationData, b"data"));
        let mut obs = RecordObserver::new();
        let records = obs.feed(&wire);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].content_type, ContentType::Handshake);
        assert_eq!(records[0].length, 236);
        assert_eq!(records[1].content_type, ContentType::ApplicationData);
    }
}
