//! Process-shard backend: host a shard in a child OS process so a
//! shard crash is an *event*, not a supervisor abort.
//!
//! The in-process backend shares an address space with the supervisor:
//! a decoder bug that panics takes the whole fleet down. The process
//! backend moves each shard behind a tiny length-prefixed stdin/stdout
//! protocol; a `kill -9` of the child (or the chaos plan's
//! `ProcessAbort` simulating one) surfaces as a broken pipe, which the
//! supervisor absorbs exactly like a simulated kill — respawn from the
//! last good checkpoint blob, loss window opened, verdict dedup
//! guaranteeing zero duplicates.
//!
//! ## Wire format
//!
//! Every frame is `[u32 LE length][u8 opcode][payload]` where `length`
//! counts the opcode byte plus the payload, and is capped at
//! [`MAX_FRAME`] (a damaged length prefix must not allocate the moon).
//! Decoding is a pure function over bytes ([`decode_frame`], then
//! [`Request::parse`] / [`Reply::parse`]) so the protocol is testable
//! byte-by-byte without spawning anything: every truncation or garbage
//! mutation yields a typed [`FrameError`], never a panic or a hang.
//!
//! Requests (supervisor → worker): `0x01` Init, `0x02` Restore, `0x03`
//! Feed, `0x04` Checkpoint, `0x05` EvictIdle, `0x06` FinishAll, `0x07`
//! Drain, `0x08` Adopt, `0x09` Shutdown. Replies (worker →
//! supervisor): `0x80` Ok, `0x81` Verdicts, `0x82` Blob, `0x83`
//! Drained, `0xFF` Err. Hot-path payloads (Feed) are fixed-layout
//! binary; everything structured rides the canonical `wm-json`
//! state dialect already used by checkpoints, so the cross-process
//! representation is byte-deterministic by construction.
//!
//! Each `Verdicts` reply carries the worker's *full* live-victim set
//! and resident state bytes, so the supervisor's routing cache is
//! self-healing: one reply after a respawn and the parent's picture of
//! the child is exact again.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::Arc;

use wm_capture::time::{Duration, SimTime};
use wm_core::IntervalClassifier;
use wm_json::Value;
use wm_online::{config_from_value, config_value, verdict_from_value, verdict_value};
use wm_online::{OnlineConfig, OnlineVerdict};
use wm_story::{
    Choice, ChoiceOption, ChoicePoint, ChoicePointId, Segment, SegmentEnd, SegmentId, StoryGraph,
};

use crate::shard::{ShardRestoreError, ShardRestoreErrorKind, ShardState, WorkerFault};

/// Hard cap on one frame's length field (opcode + payload), 64 MiB.
/// Far above any real shard checkpoint; a corrupt prefix claiming more
/// is rejected before any allocation.
pub const MAX_FRAME: u32 = 64 << 20;

// Request opcodes.
const OP_INIT: u8 = 0x01;
const OP_RESTORE: u8 = 0x02;
const OP_FEED: u8 = 0x03;
const OP_CHECKPOINT: u8 = 0x04;
const OP_EVICT_IDLE: u8 = 0x05;
const OP_FINISH_ALL: u8 = 0x06;
const OP_DRAIN: u8 = 0x07;
const OP_ADOPT: u8 = 0x08;
const OP_SHUTDOWN: u8 = 0x09;

// Reply opcodes.
const OP_OK: u8 = 0x80;
const OP_VERDICTS: u8 = 0x81;
const OP_BLOB: u8 = 0x82;
const OP_DRAINED: u8 = 0x83;
const OP_ERR: u8 = 0xFF;

// Err payload codes.
const ERR_ENVELOPE: u8 = 1;
const ERR_VICTIM: u8 = 2;
const ERR_INTERNAL: u8 = 3;

/// Why a byte sequence failed to decode as a protocol frame. Every
/// variant is a *typed* outcome — the decoder never panics and never
/// claims success on damaged input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends mid-frame; `need` more bytes would complete it.
    /// (A streaming reader treats this as "read more"; a complete
    /// message treated this way is truncation.)
    Incomplete { need: usize },
    /// The length prefix claims more than [`MAX_FRAME`] bytes.
    Oversize { len: u32 },
    /// The length prefix claims zero bytes — even an opcode is absent.
    Empty,
    /// The opcode byte is not part of the protocol.
    UnknownOpcode(u8),
    /// The opcode is known but its payload does not parse; names the
    /// field or layout that failed.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Incomplete { need } => write!(f, "frame truncated ({need} bytes short)"),
            FrameError::Oversize { len } => write!(f, "frame length {len} exceeds cap"),
            FrameError::Empty => write!(f, "frame length 0 (no opcode)"),
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            FrameError::Malformed(what) => write!(f, "malformed {what} payload"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded frame: opcode, payload view, and how many input bytes
/// the frame spans (`4 + length`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    pub opcode: u8,
    pub payload: &'a [u8],
    pub consumed: usize,
}

/// Append one frame to `out`.
pub fn encode_frame(opcode: u8, payload: &[u8], out: &mut Vec<u8>) {
    let len = 1 + payload.len() as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(opcode);
    out.extend_from_slice(payload);
}

/// Decode the frame at the front of `bytes`. Pure: no IO, no
/// allocation, total over arbitrary input.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame<'_>, FrameError> {
    if bytes.len() < 4 {
        return Err(FrameError::Incomplete {
            need: 4 - bytes.len(),
        });
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > MAX_FRAME {
        return Err(FrameError::Oversize { len });
    }
    let total = 4 + len as usize;
    if bytes.len() < total {
        return Err(FrameError::Incomplete {
            need: total - bytes.len(),
        });
    }
    Ok(Frame {
        opcode: bytes[4],
        payload: &bytes[5..total],
        consumed: total,
    })
}

// ---------------------------------------------------------------------
// typed request / reply layers

/// A parsed supervisor → worker request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Configure the worker's shard. Must precede everything else.
    Init {
        shard: u32,
        cfg: OnlineConfig,
        classifier: IntervalClassifier,
        graph: Arc<StoryGraph>,
    },
    /// Replace the shard state from a checkpoint blob.
    Restore(Vec<u8>),
    /// Route one captured frame to a victim's decoder.
    Feed {
        time: SimTime,
        victim: u32,
        max_victims: u32,
        frame: Vec<u8>,
    },
    /// Serialize the whole shard to a checkpoint blob.
    Checkpoint { taken: SimTime },
    /// Evict victims idle past the horizon.
    EvictIdle { now: SimTime, idle: Duration },
    /// Finish every decoder (end of input).
    FinishAll,
    /// Pull the listed victims out as migration units.
    Drain(Vec<u32>),
    /// Install one migrated victim from its checkpoint document.
    Adopt {
        victim: u32,
        seen: SimTime,
        state: Value,
    },
    /// Exit cleanly.
    Shutdown,
}

fn u64_at(payload: &[u8], off: usize, what: &'static str) -> Result<u64, FrameError> {
    let bytes: [u8; 8] = payload
        .get(off..off + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or(FrameError::Malformed(what))?;
    Ok(u64::from_le_bytes(bytes))
}

fn u32_at(payload: &[u8], off: usize, what: &'static str) -> Result<u32, FrameError> {
    let bytes: [u8; 4] = payload
        .get(off..off + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or(FrameError::Malformed(what))?;
    Ok(u32::from_le_bytes(bytes))
}

fn json_payload(payload: &[u8], what: &'static str) -> Result<Value, FrameError> {
    wm_json::parse(payload).map_err(|_| FrameError::Malformed(what))
}

fn json_u64(v: &Value, key: &str, what: &'static str) -> Result<u64, FrameError> {
    v.get(key)
        .and_then(Value::as_i64)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or(FrameError::Malformed(what))
}

impl Request {
    /// Parse a request from a decoded frame's opcode and payload.
    pub fn parse(opcode: u8, payload: &[u8]) -> Result<Request, FrameError> {
        match opcode {
            OP_INIT => {
                let root = json_payload(payload, "init")?;
                let shard = u32::try_from(json_u64(&root, "shard", "init")?)
                    .map_err(|_| FrameError::Malformed("init"))?;
                let cfg = root
                    .get("config")
                    .ok_or(FrameError::Malformed("init"))
                    .and_then(|v| {
                        config_from_value(v).map_err(|_| FrameError::Malformed("init config"))
                    })?;
                let classifier = root
                    .get("classifier")
                    .ok_or(FrameError::Malformed("init"))
                    .and_then(classifier_from_value)?;
                let graph = root
                    .get("graph")
                    .ok_or(FrameError::Malformed("init"))
                    .and_then(graph_from_value)?;
                Ok(Request::Init {
                    shard,
                    cfg,
                    classifier,
                    graph: Arc::new(graph),
                })
            }
            OP_RESTORE => Ok(Request::Restore(payload.to_vec())),
            OP_FEED => {
                let time = SimTime(u64_at(payload, 0, "feed")?);
                let victim = u32_at(payload, 8, "feed")?;
                let max_victims = u32_at(payload, 12, "feed")?;
                Ok(Request::Feed {
                    time,
                    victim,
                    max_victims,
                    frame: payload[16..].to_vec(),
                })
            }
            OP_CHECKPOINT => Ok(Request::Checkpoint {
                taken: SimTime(u64_at(payload, 0, "checkpoint")?),
            }),
            OP_EVICT_IDLE => Ok(Request::EvictIdle {
                now: SimTime(u64_at(payload, 0, "evict")?),
                idle: Duration(u64_at(payload, 8, "evict")?),
            }),
            OP_FINISH_ALL => Ok(Request::FinishAll),
            OP_DRAIN => {
                let n = u32_at(payload, 0, "drain")? as usize;
                if payload.len() != 4 + n * 4 {
                    return Err(FrameError::Malformed("drain"));
                }
                let victims = (0..n)
                    .map(|i| u32_at(payload, 4 + i * 4, "drain"))
                    .collect::<Result<Vec<u32>, FrameError>>()?;
                Ok(Request::Drain(victims))
            }
            OP_ADOPT => {
                let root = json_payload(payload, "adopt")?;
                let victim = u32::try_from(json_u64(&root, "victim", "adopt")?)
                    .map_err(|_| FrameError::Malformed("adopt"))?;
                let seen = SimTime(json_u64(&root, "seen_us", "adopt")?);
                let state = root.get("state").ok_or(FrameError::Malformed("adopt"))?;
                Ok(Request::Adopt {
                    victim,
                    seen,
                    state: state.clone(),
                })
            }
            OP_SHUTDOWN => Ok(Request::Shutdown),
            other => Err(FrameError::UnknownOpcode(other)),
        }
    }

    /// Serialize this request into a frame appended to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Init {
                shard,
                cfg,
                classifier,
                graph,
            } => {
                let root = Value::object(vec![
                    ("shard".into(), Value::from(*shard as i64)),
                    ("config".into(), config_value(cfg)),
                    ("classifier".into(), classifier_value(classifier)),
                    ("graph".into(), graph_value(graph)),
                ]);
                encode_frame(OP_INIT, &wm_json::to_bytes(&root), out);
            }
            Request::Restore(blob) => encode_frame(OP_RESTORE, blob, out),
            Request::Feed {
                time,
                victim,
                max_victims,
                frame,
            } => {
                let mut payload = Vec::with_capacity(16 + frame.len());
                payload.extend_from_slice(&time.micros().to_le_bytes());
                payload.extend_from_slice(&victim.to_le_bytes());
                payload.extend_from_slice(&max_victims.to_le_bytes());
                payload.extend_from_slice(frame);
                encode_frame(OP_FEED, &payload, out);
            }
            Request::Checkpoint { taken } => {
                encode_frame(OP_CHECKPOINT, &taken.micros().to_le_bytes(), out)
            }
            Request::EvictIdle { now, idle } => {
                let mut payload = [0u8; 16];
                payload[..8].copy_from_slice(&now.micros().to_le_bytes());
                payload[8..].copy_from_slice(&idle.micros().to_le_bytes());
                encode_frame(OP_EVICT_IDLE, &payload, out);
            }
            Request::FinishAll => encode_frame(OP_FINISH_ALL, &[], out),
            Request::Drain(victims) => {
                let mut payload = Vec::with_capacity(4 + victims.len() * 4);
                payload.extend_from_slice(&(victims.len() as u32).to_le_bytes());
                for v in victims {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
                encode_frame(OP_DRAIN, &payload, out);
            }
            Request::Adopt {
                victim,
                seen,
                state,
            } => {
                let root = Value::object(vec![
                    ("victim".into(), Value::from(*victim as i64)),
                    ("seen_us".into(), Value::from(seen.micros() as i64)),
                    ("state".into(), state.clone()),
                ]);
                encode_frame(OP_ADOPT, &wm_json::to_bytes(&root), out);
            }
            Request::Shutdown => encode_frame(OP_SHUTDOWN, &[], out),
        }
    }
}

/// A typed remote failure carried in an `Err` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteError {
    /// A restore blob's envelope was rejected.
    Envelope,
    /// A victim's embedded checkpoint was rejected; carries the victim.
    Victim(u32),
    /// The worker refused the request (wrong state, e.g. Feed before
    /// Init) or hit an untyped internal failure.
    Internal,
}

/// A parsed worker → supervisor reply.
#[derive(Debug, Clone)]
pub enum Reply {
    Ok,
    /// Verdict batch plus the worker's full live-victim set and
    /// resident state bytes (the supervisor's cache is overwritten,
    /// never incrementally patched — self-healing after respawn).
    Verdicts {
        verdicts: Vec<(u32, OnlineVerdict)>,
        live: Vec<u32>,
        state_bytes: u64,
    },
    /// A checkpoint blob, verbatim.
    Blob(Vec<u8>),
    /// Drained migration units `(victim, last_seen, state document)`.
    Drained(Vec<(u32, SimTime, Value)>),
    Err(RemoteError),
}

impl Reply {
    /// Parse a reply from a decoded frame's opcode and payload.
    pub fn parse(opcode: u8, payload: &[u8]) -> Result<Reply, FrameError> {
        match opcode {
            OP_OK => Ok(Reply::Ok),
            OP_VERDICTS => {
                let root = json_payload(payload, "verdicts")?;
                let mut verdicts = Vec::new();
                for entry in root
                    .get("verdicts")
                    .and_then(Value::as_array)
                    .ok_or(FrameError::Malformed("verdicts"))?
                {
                    let parts = entry
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or(FrameError::Malformed("verdicts"))?;
                    let victim = parts[0]
                        .as_i64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or(FrameError::Malformed("verdicts"))?;
                    let verdict = verdict_from_value(&parts[1])
                        .map_err(|_| FrameError::Malformed("verdicts"))?;
                    verdicts.push((victim, verdict));
                }
                let mut live = Vec::new();
                for v in root
                    .get("live")
                    .and_then(Value::as_array)
                    .ok_or(FrameError::Malformed("verdicts live"))?
                {
                    live.push(
                        v.as_i64()
                            .and_then(|v| u32::try_from(v).ok())
                            .ok_or(FrameError::Malformed("verdicts live"))?,
                    );
                }
                let state_bytes = json_u64(&root, "state_bytes", "verdicts state_bytes")?;
                Ok(Reply::Verdicts {
                    verdicts,
                    live,
                    state_bytes,
                })
            }
            OP_BLOB => Ok(Reply::Blob(payload.to_vec())),
            OP_DRAINED => {
                let root = json_payload(payload, "drained")?;
                let mut entries = Vec::new();
                for entry in root
                    .get("entries")
                    .and_then(Value::as_array)
                    .ok_or(FrameError::Malformed("drained"))?
                {
                    let parts = entry
                        .as_array()
                        .filter(|p| p.len() == 3)
                        .ok_or(FrameError::Malformed("drained"))?;
                    let victim = parts[0]
                        .as_i64()
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or(FrameError::Malformed("drained"))?;
                    let seen = parts[1]
                        .as_i64()
                        .and_then(|v| u64::try_from(v).ok())
                        .ok_or(FrameError::Malformed("drained"))?;
                    entries.push((victim, SimTime(seen), parts[2].clone()));
                }
                Ok(Reply::Drained(entries))
            }
            OP_ERR => {
                let code = *payload.first().ok_or(FrameError::Malformed("err"))?;
                let victim = u32_at(payload, 1, "err")?;
                Ok(Reply::Err(match code {
                    ERR_ENVELOPE => RemoteError::Envelope,
                    ERR_VICTIM => RemoteError::Victim(victim),
                    ERR_INTERNAL => RemoteError::Internal,
                    _ => return Err(FrameError::Malformed("err code")),
                }))
            }
            other => Err(FrameError::UnknownOpcode(other)),
        }
    }

    /// Serialize this reply into a frame appended to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Reply::Ok => encode_frame(OP_OK, &[], out),
            Reply::Verdicts {
                verdicts,
                live,
                state_bytes,
            } => {
                let verdicts: Vec<Value> = verdicts
                    .iter()
                    .map(|(victim, v)| {
                        Value::array(vec![Value::from(*victim as i64), verdict_value(v)])
                    })
                    .collect();
                let live: Vec<Value> = live.iter().map(|v| Value::from(*v as i64)).collect();
                let root = Value::object(vec![
                    ("verdicts".into(), Value::array(verdicts)),
                    ("live".into(), Value::array(live)),
                    ("state_bytes".into(), Value::from(*state_bytes as i64)),
                ]);
                encode_frame(OP_VERDICTS, &wm_json::to_bytes(&root), out);
            }
            Reply::Blob(blob) => encode_frame(OP_BLOB, blob, out),
            Reply::Drained(entries) => {
                let entries: Vec<Value> = entries
                    .iter()
                    .map(|(victim, seen, state)| {
                        Value::array(vec![
                            Value::from(*victim as i64),
                            Value::from(seen.micros() as i64),
                            state.clone(),
                        ])
                    })
                    .collect();
                let root = Value::object(vec![("entries".into(), Value::array(entries))]);
                encode_frame(OP_DRAINED, &wm_json::to_bytes(&root), out);
            }
            Reply::Err(e) => {
                let (code, victim) = match e {
                    RemoteError::Envelope => (ERR_ENVELOPE, 0),
                    RemoteError::Victim(v) => (ERR_VICTIM, *v),
                    RemoteError::Internal => (ERR_INTERNAL, 0),
                };
                let mut payload = [0u8; 5];
                payload[0] = code;
                payload[1..].copy_from_slice(&victim.to_le_bytes());
                encode_frame(OP_ERR, &payload, out);
            }
        }
    }
}

// ---------------------------------------------------------------------
// classifier / graph codecs (Init payload)

fn classifier_value(c: &IntervalClassifier) -> Value {
    Value::object(vec![
        (
            "type1".into(),
            Value::array(vec![
                Value::from(c.type1.0 as i64),
                Value::from(c.type1.1 as i64),
            ]),
        ),
        (
            "type2".into(),
            Value::array(vec![
                Value::from(c.type2.0 as i64),
                Value::from(c.type2.1 as i64),
            ]),
        ),
        ("slack".into(), Value::from(c.slack as i64)),
    ])
}

fn classifier_from_value(v: &Value) -> Result<IntervalClassifier, FrameError> {
    let band = |key: &str| -> Result<(u16, u16), FrameError> {
        let parts = v
            .get(key)
            .and_then(Value::as_array)
            .filter(|p| p.len() == 2)
            .ok_or(FrameError::Malformed("classifier"))?;
        let lo = parts[0]
            .as_i64()
            .and_then(|n| u16::try_from(n).ok())
            .ok_or(FrameError::Malformed("classifier"))?;
        let hi = parts[1]
            .as_i64()
            .and_then(|n| u16::try_from(n).ok())
            .ok_or(FrameError::Malformed("classifier"))?;
        Ok((lo, hi))
    };
    Ok(IntervalClassifier {
        type1: band("type1")?,
        type2: band("type2")?,
        slack: v
            .get("slack")
            .and_then(Value::as_i64)
            .and_then(|n| u16::try_from(n).ok())
            .ok_or(FrameError::Malformed("classifier"))?,
    })
}

/// Encode the graph *topology*: start segment, per-segment id /
/// duration / end, per-choice-point id and option targets. Names,
/// questions, labels and behaviour tags are presentation data the
/// decoder never touches — `graph_fingerprint` covers exactly the
/// encoded fields, so a worker-side graph rebuilt from this document
/// validates against any checkpoint taken on the original.
fn graph_value(g: &StoryGraph) -> Value {
    let segments: Vec<Value> = g
        .segments()
        .iter()
        .map(|s| {
            let (kind, arg) = match s.end {
                SegmentEnd::Ending => (0i64, 0i64),
                SegmentEnd::Continue(next) => (1, next.0 as i64),
                SegmentEnd::Choice(cp) => (2, cp.0 as i64),
            };
            Value::array(vec![
                Value::from(s.id.0 as i64),
                Value::from(s.duration_secs as i64),
                Value::from(kind),
                Value::from(arg),
            ])
        })
        .collect();
    let cps: Vec<Value> = g
        .choice_points()
        .iter()
        .map(|cp| {
            Value::array(vec![
                Value::from(cp.id.0 as i64),
                Value::from(cp.option(Choice::Default).target.0 as i64),
                Value::from(cp.option(Choice::NonDefault).target.0 as i64),
            ])
        })
        .collect();
    Value::object(vec![
        ("start".into(), Value::from(g.start().0 as i64)),
        ("segments".into(), Value::array(segments)),
        ("cps".into(), Value::array(cps)),
    ])
}

fn graph_from_value(v: &Value) -> Result<StoryGraph, FrameError> {
    let bad = FrameError::Malformed("graph");
    let u16_of = |val: &Value| -> Result<u16, FrameError> {
        val.as_i64().and_then(|n| u16::try_from(n).ok()).ok_or(bad)
    };
    let start = SegmentId(u16_of(v.get("start").ok_or(bad)?)?);
    let mut segments = Vec::new();
    for entry in v.get("segments").and_then(Value::as_array).ok_or(bad)? {
        let parts = entry.as_array().filter(|p| p.len() == 4).ok_or(bad)?;
        let id = SegmentId(u16_of(&parts[0])?);
        let duration_secs = parts[1]
            .as_i64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or(bad)?;
        let end = match parts[2].as_i64().ok_or(bad)? {
            0 => SegmentEnd::Ending,
            1 => SegmentEnd::Continue(SegmentId(u16_of(&parts[3])?)),
            2 => SegmentEnd::Choice(ChoicePointId(u16_of(&parts[3])?)),
            _ => return Err(bad),
        };
        segments.push(Segment {
            id,
            name: "",
            duration_secs,
            end,
        });
    }
    let mut cps = Vec::new();
    for entry in v.get("cps").and_then(Value::as_array).ok_or(bad)? {
        let parts = entry.as_array().filter(|p| p.len() == 3).ok_or(bad)?;
        let option = |target: SegmentId| ChoiceOption {
            label: "",
            target,
            tags: &[],
        };
        cps.push(ChoicePoint {
            id: ChoicePointId(u16_of(&parts[0])?),
            question: "",
            options: [
                option(SegmentId(u16_of(&parts[1])?)),
                option(SegmentId(u16_of(&parts[2])?)),
            ],
        });
    }
    StoryGraph::new("", segments, cps, start).map_err(|_| bad)
}

// ---------------------------------------------------------------------
// supervisor side: one child process per shard group

/// Resolve the shard-worker binary: explicit config path, then the
/// `WM_SHARD_WORKER` environment variable, then a `shard_worker`
/// binary next to (or one directory above) the current executable —
/// which is where cargo puts it relative to test and bench binaries.
pub fn resolve_worker(explicit: Option<&Path>) -> Option<PathBuf> {
    if let Some(p) = explicit {
        return Some(p.to_path_buf());
    }
    if let Some(p) = std::env::var_os("WM_SHARD_WORKER") {
        return Some(PathBuf::from(p));
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    [dir.join("shard_worker"), dir.join("../shard_worker")]
        .into_iter()
        .find(|candidate| candidate.is_file())
}

/// Supervisor-side handle to one shard hosted in a child process.
///
/// Mirrors the [`ShardState`] surface, but every call can fail with a
/// [`WorkerFault`] — the child may have been `kill -9`'d between any
/// two frames. The handle keeps a cached live-victim set and state
/// size, refreshed wholesale from every `Verdicts` reply.
pub struct ProcessShard {
    child: Child,
    stdin: ChildStdin,
    stdout: ChildStdout,
    shard: u32,
    live: BTreeSet<u32>,
    state_bytes: usize,
    buf: Vec<u8>,
}

impl ProcessShard {
    /// Spawn a worker and initialize it for `shard`.
    pub fn spawn(
        worker: &Path,
        shard: u32,
        classifier: &IntervalClassifier,
        graph: &Arc<StoryGraph>,
        cfg: &OnlineConfig,
    ) -> Result<Self, WorkerFault> {
        let mut child = Command::new(worker)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|_| WorkerFault::Spawn)?;
        let stdin = child.stdin.take().ok_or(WorkerFault::Spawn)?;
        let stdout = child.stdout.take().ok_or(WorkerFault::Spawn)?;
        let mut p = ProcessShard {
            child,
            stdin,
            stdout,
            shard,
            live: BTreeSet::new(),
            state_bytes: 0,
            buf: Vec::new(),
        };
        match p.call(&Request::Init {
            shard,
            cfg: cfg.clone(),
            classifier: classifier.clone(),
            graph: graph.clone(),
        })? {
            Reply::Ok => Ok(p),
            Reply::Err(_) => Err(WorkerFault::Remote),
            _ => Err(WorkerFault::Protocol),
        }
    }

    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The child's OS pid (tests `kill -9` it to prove absorption).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    pub fn live_victims(&self) -> impl Iterator<Item = u32> + '_ {
        self.live.iter().copied()
    }

    pub fn live_victim_count(&self) -> usize {
        self.live.len()
    }

    /// Resident decoder state as of the last `Verdicts` reply.
    pub fn state_bytes(&self) -> usize {
        self.state_bytes
    }

    /// One request/reply exchange. Any transport failure — the write,
    /// the read, or undecodable reply bytes — is a [`WorkerFault`];
    /// the caller treats it like a crash and respawns.
    fn call(&mut self, req: &Request) -> Result<Reply, WorkerFault> {
        self.buf.clear();
        req.encode(&mut self.buf);
        let frame = std::mem::take(&mut self.buf);
        self.stdin.write_all(&frame).map_err(|_| WorkerFault::Io)?;
        self.stdin.flush().map_err(|_| WorkerFault::Io)?;
        self.buf = frame;
        let mut header = [0u8; 4];
        self.stdout
            .read_exact(&mut header)
            .map_err(|_| WorkerFault::Io)?;
        let len = u32::from_le_bytes(header);
        if len == 0 || len > MAX_FRAME {
            return Err(WorkerFault::Protocol);
        }
        let mut body = vec![0u8; len as usize];
        self.stdout
            .read_exact(&mut body)
            .map_err(|_| WorkerFault::Io)?;
        Reply::parse(body[0], &body[1..]).map_err(|_| WorkerFault::Protocol)
    }

    fn verdicts_reply(&mut self, req: &Request) -> Result<Vec<(u32, OnlineVerdict)>, WorkerFault> {
        match self.call(req)? {
            Reply::Verdicts {
                verdicts,
                live,
                state_bytes,
            } => {
                self.live = live.into_iter().collect();
                self.state_bytes = state_bytes as usize;
                Ok(verdicts)
            }
            Reply::Err(_) => Err(WorkerFault::Remote),
            _ => Err(WorkerFault::Protocol),
        }
    }

    /// See [`ShardState::feed`]; verdicts come back in the reply.
    pub fn feed(
        &mut self,
        victim: u32,
        time: SimTime,
        frame: &[u8],
        max_victims: usize,
    ) -> Result<Vec<(u32, OnlineVerdict)>, WorkerFault> {
        self.verdicts_reply(&Request::Feed {
            time,
            victim,
            max_victims: max_victims as u32,
            frame: frame.to_vec(),
        })
    }

    /// See [`ShardState::evict_idle`].
    pub fn evict_idle(
        &mut self,
        now: SimTime,
        idle: Duration,
    ) -> Result<Vec<(u32, OnlineVerdict)>, WorkerFault> {
        self.verdicts_reply(&Request::EvictIdle { now, idle })
    }

    /// See [`ShardState::finish_all`].
    pub fn finish_all(&mut self) -> Result<Vec<(u32, OnlineVerdict)>, WorkerFault> {
        self.verdicts_reply(&Request::FinishAll)
    }

    /// See [`ShardState::checkpoint`].
    pub fn checkpoint(&mut self, taken: SimTime) -> Result<Vec<u8>, WorkerFault> {
        match self.call(&Request::Checkpoint { taken })? {
            Reply::Blob(blob) => Ok(blob),
            Reply::Err(_) => Err(WorkerFault::Remote),
            _ => Err(WorkerFault::Protocol),
        }
    }

    /// Replace the worker's state from a checkpoint blob. Blob-level
    /// rejections come back typed and attributed to `slot`; transport
    /// failures surface as [`ShardRestoreErrorKind::Worker`].
    pub fn restore(&mut self, slot: u32, blob: &[u8]) -> Result<(), ShardRestoreError> {
        use wm_online::CheckpointError;
        let worker = |w: WorkerFault| ShardRestoreError {
            shard: slot,
            kind: ShardRestoreErrorKind::Worker(w),
        };
        match self
            .call(&Request::Restore(blob.to_vec()))
            .map_err(worker)?
        {
            Reply::Ok => {
                // Seed the parent-side live cache from the blob we just
                // handed over, so loss accounting after a post-restore
                // crash knows which victims were resident.
                let env = crate::shard::parse_envelope(slot, blob)?;
                self.live = env.victims.iter().map(|(v, _, _)| *v).collect();
                Ok(())
            }
            Reply::Err(RemoteError::Envelope) => Err(ShardRestoreError {
                shard: slot,
                kind: ShardRestoreErrorKind::Envelope(CheckpointError::Malformed("remote")),
            }),
            Reply::Err(RemoteError::Victim(v)) => Err(ShardRestoreError {
                shard: slot,
                kind: ShardRestoreErrorKind::Victim(v, CheckpointError::Malformed("remote")),
            }),
            Reply::Err(RemoteError::Internal) => Err(worker(WorkerFault::Remote)),
            _ => Err(worker(WorkerFault::Protocol)),
        }
    }

    /// See [`ShardState::drain_victims`].
    pub fn drain_victims(
        &mut self,
        victims: &[u32],
    ) -> Result<Vec<(u32, SimTime, Value)>, WorkerFault> {
        match self.call(&Request::Drain(victims.to_vec()))? {
            Reply::Drained(entries) => {
                for v in victims {
                    self.live.remove(v);
                }
                Ok(entries)
            }
            Reply::Err(_) => Err(WorkerFault::Remote),
            _ => Err(WorkerFault::Protocol),
        }
    }

    /// See [`ShardState::adopt_victim`]. `Ok(true)` means adopted;
    /// `Ok(false)` means the worker rejected the state document (the
    /// victim will start cold) — the transport is fine either way.
    pub fn adopt(
        &mut self,
        victim: u32,
        seen: SimTime,
        state: &Value,
    ) -> Result<bool, WorkerFault> {
        match self.call(&Request::Adopt {
            victim,
            seen,
            state: state.clone(),
        })? {
            Reply::Ok => {
                self.live.insert(victim);
                Ok(true)
            }
            Reply::Err(RemoteError::Victim(_)) => Ok(false),
            Reply::Err(_) => Err(WorkerFault::Remote),
            _ => Err(WorkerFault::Protocol),
        }
    }

    /// Hard-kill the child (`SIGKILL`), the supervisor-initiated form
    /// of the chaos plan's `ProcessAbort`.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessShard {
    fn drop(&mut self) {
        self.kill();
    }
}

// ---------------------------------------------------------------------
// worker side

struct WorkerState {
    classifier: IntervalClassifier,
    graph: Arc<StoryGraph>,
    cfg: OnlineConfig,
    state: ShardState,
}

fn handle(req: Request, worker: &mut Option<WorkerState>) -> Reply {
    match req {
        Request::Init {
            shard,
            cfg,
            classifier,
            graph,
        } => {
            *worker = Some(WorkerState {
                classifier: classifier.clone(),
                graph: graph.clone(),
                cfg: cfg.clone(),
                state: ShardState::new(shard, classifier, graph, cfg),
            });
            Reply::Ok
        }
        Request::Shutdown => Reply::Ok,
        other => {
            let Some(w) = worker.as_mut() else {
                return Reply::Err(RemoteError::Internal);
            };
            match other {
                Request::Restore(blob) => match ShardState::restore(
                    w.state.shard(),
                    &blob,
                    w.classifier.clone(),
                    w.graph.clone(),
                    w.cfg.clone(),
                ) {
                    Ok(state) => {
                        w.state = state;
                        Reply::Ok
                    }
                    Err(e) => Reply::Err(match e.kind {
                        ShardRestoreErrorKind::Envelope(_) => RemoteError::Envelope,
                        ShardRestoreErrorKind::Victim(v, _) => RemoteError::Victim(v),
                        ShardRestoreErrorKind::Worker(_) => RemoteError::Internal,
                    }),
                },
                Request::Feed {
                    time,
                    victim,
                    max_victims,
                    frame,
                } => {
                    let mut out = Vec::new();
                    w.state
                        .feed(victim, time, &frame, max_victims as usize, &mut out);
                    verdicts_of(&w.state, out)
                }
                Request::EvictIdle { now, idle } => {
                    let mut out = Vec::new();
                    w.state.evict_idle(now, idle, &mut out);
                    verdicts_of(&w.state, out)
                }
                Request::FinishAll => {
                    let mut out = Vec::new();
                    w.state.finish_all(&mut out);
                    verdicts_of(&w.state, out)
                }
                Request::Checkpoint { taken } => Reply::Blob(w.state.checkpoint(taken)),
                Request::Drain(victims) => Reply::Drained(w.state.drain_victims(&victims)),
                Request::Adopt {
                    victim,
                    seen,
                    state,
                } => match w.state.adopt_victim(victim, seen, &state) {
                    Ok(()) => Reply::Ok,
                    Err(_) => Reply::Err(RemoteError::Victim(victim)),
                },
                Request::Init { .. } | Request::Shutdown => unreachable!("handled above"),
            }
        }
    }
}

fn verdicts_of(state: &ShardState, verdicts: Vec<(u32, OnlineVerdict)>) -> Reply {
    Reply::Verdicts {
        verdicts,
        live: state.live_victims().collect(),
        state_bytes: state.state_bytes() as u64,
    }
}

/// The shard-worker process body: serve protocol frames on
/// stdin/stdout until EOF (clean supervisor exit), `Shutdown`, or a
/// protocol violation (reply `Err`, exit nonzero — the supervisor
/// respawns). Returns the process exit code.
pub fn shard_worker_main() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    let mut worker: Option<WorkerState> = None;
    let mut out = Vec::new();
    loop {
        let mut header = [0u8; 4];
        match input.read_exact(&mut header) {
            Ok(()) => {}
            // EOF between frames: the supervisor dropped the pipe.
            Err(_) => return 0,
        }
        let len = u32::from_le_bytes(header);
        if len == 0 || len > MAX_FRAME {
            return reply_and_exit(&mut output, Reply::Err(RemoteError::Internal));
        }
        let mut body = vec![0u8; len as usize];
        if input.read_exact(&mut body).is_err() {
            return 1;
        }
        let req = match Request::parse(body[0], &body[1..]) {
            Ok(req) => req,
            Err(_) => return reply_and_exit(&mut output, Reply::Err(RemoteError::Internal)),
        };
        let shutdown = matches!(req, Request::Shutdown);
        let reply = handle(req, &mut worker);
        out.clear();
        reply.encode(&mut out);
        if output.write_all(&out).is_err() || output.flush().is_err() {
            return 1;
        }
        if shutdown {
            return 0;
        }
    }
}

fn reply_and_exit(output: &mut impl Write, reply: Reply) -> i32 {
    let mut out = Vec::new();
    reply.encode(&mut out);
    let _ = output.write_all(&out);
    let _ = output.flush();
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_codec_roundtrips_and_reports_truncation() {
        let mut buf = Vec::new();
        encode_frame(OP_FEED, &[1, 2, 3], &mut buf);
        let frame = decode_frame(&buf).unwrap();
        assert_eq!(frame.opcode, OP_FEED);
        assert_eq!(frame.payload, &[1, 2, 3]);
        assert_eq!(frame.consumed, buf.len());
        for cut in 0..buf.len() {
            match decode_frame(&buf[..cut]) {
                Err(FrameError::Incomplete { need }) => {
                    assert_eq!(need, if cut < 4 { 4 - cut } else { buf.len() - cut });
                }
                other => panic!("prefix {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn frame_decoder_rejects_hostile_lengths() {
        assert_eq!(decode_frame(&0u32.to_le_bytes()), Err(FrameError::Empty));
        assert_eq!(
            decode_frame(&u32::MAX.to_le_bytes()),
            Err(FrameError::Oversize { len: u32::MAX })
        );
    }

    #[test]
    fn request_roundtrips_through_the_wire() {
        let reqs = vec![
            Request::Feed {
                time: SimTime(123_456),
                victim: 7,
                max_victims: 64,
                frame: vec![0xde, 0xad],
            },
            Request::Checkpoint {
                taken: SimTime(999),
            },
            Request::EvictIdle {
                now: SimTime(50),
                idle: Duration(10),
            },
            Request::Drain(vec![3, 1, 4]),
            Request::FinishAll,
            Request::Shutdown,
        ];
        for req in reqs {
            let mut buf = Vec::new();
            req.encode(&mut buf);
            let frame = decode_frame(&buf).unwrap();
            let parsed = Request::parse(frame.opcode, frame.payload).unwrap();
            match (&req, &parsed) {
                (
                    Request::Feed {
                        time: t0,
                        victim: v0,
                        max_victims: m0,
                        frame: f0,
                    },
                    Request::Feed {
                        time,
                        victim,
                        max_victims,
                        frame,
                    },
                ) => {
                    assert_eq!((t0, v0, m0, f0), (time, victim, max_victims, frame));
                }
                (Request::Drain(a), Request::Drain(b)) => assert_eq!(a, b),
                (Request::Checkpoint { taken: a }, Request::Checkpoint { taken: b }) => {
                    assert_eq!(a, b)
                }
                (Request::EvictIdle { now: n0, idle: i0 }, Request::EvictIdle { now, idle }) => {
                    assert_eq!((n0, i0), (now, idle))
                }
                (Request::FinishAll, Request::FinishAll) => {}
                (Request::Shutdown, Request::Shutdown) => {}
                other => panic!("mismatched request roundtrip: {other:?}"),
            }
        }
    }

    #[test]
    fn graph_codec_preserves_the_fingerprint() {
        let graph = wm_story::bandersnatch::tiny_film();
        let doc = graph_value(&graph);
        let rebuilt = graph_from_value(&doc).unwrap();
        assert_eq!(
            wm_online::graph_fingerprint(&graph),
            wm_online::graph_fingerprint(&rebuilt)
        );
    }

    #[test]
    fn err_reply_carries_the_victim() {
        let mut buf = Vec::new();
        Reply::Err(RemoteError::Victim(42)).encode(&mut buf);
        let frame = decode_frame(&buf).unwrap();
        match Reply::parse(frame.opcode, frame.payload).unwrap() {
            Reply::Err(RemoteError::Victim(42)) => {}
            other => panic!("{other:?}"),
        }
    }
}
