//! Offline TCP stream reassembly over a captured trace.
//!
//! The eavesdropper rebuilds each direction of each TCP flow into a
//! byte stream before parsing TLS records out of it. Tap loss shows up
//! as *gaps*: runs of sequence space the capture never saw (unless a
//! captured retransmission filled them in). Gaps are first-class here —
//! the record extractor has to resynchronize after each one, and the
//! evaluation counts how much of the paper's accuracy loss they cause.

use std::collections::BTreeMap;
use wm_net::headers::FlowId;
use wm_net::time::SimTime;

use crate::tap::{segments_of, Trace};

/// Flow direction relative to the viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    ClientToServer,
    ServerToClient,
}

/// A contiguous run of reassembled stream bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamChunk {
    /// Stream offset of the first byte (relative to the first captured
    /// payload byte of this direction).
    pub start_offset: u64,
    pub data: Vec<u8>,
    /// `(absolute stream offset, capture time)` marks, one per
    /// contributing segment, ascending by offset.
    pub marks: Vec<(u64, SimTime)>,
}

/// One direction of one flow, reassembled.
#[derive(Debug, Clone, Default)]
pub struct StreamView {
    /// Contiguous chunks, ascending, non-overlapping. Bytes between
    /// consecutive chunks were lost by the tap.
    pub chunks: Vec<StreamChunk>,
}

impl StreamView {
    /// Total reassembled payload bytes.
    pub fn data_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.data.len() as u64).sum()
    }

    /// Total bytes lost in gaps between chunks.
    pub fn gap_bytes(&self) -> u64 {
        self.chunks
            .windows(2)
            .map(|w| match w {
                [a, b] => b
                    .start_offset
                    .saturating_sub(a.start_offset + a.data.len() as u64),
                _ => 0,
            })
            .sum()
    }

    /// Number of gaps.
    pub fn gap_count(&self) -> usize {
        self.chunks.len().saturating_sub(1)
    }

    /// Capture time of the segment containing `offset`, if known.
    pub fn time_at(&self, offset: u64) -> Option<SimTime> {
        for c in &self.chunks {
            let end = c.start_offset + c.data.len() as u64;
            if offset >= c.start_offset && offset < end {
                // Last mark at or before `offset`.
                let idx = c.marks.partition_point(|(o, _)| *o <= offset);
                return c.marks.get(idx.saturating_sub(1)).map(|(_, t)| *t);
            }
        }
        None
    }
}

/// Both directions of one TCP connection.
#[derive(Debug, Clone)]
pub struct FlowStreams {
    /// The client→server flow id (client identified as the non-443 side).
    pub client_flow: FlowId,
    pub upstream: StreamView,
    pub downstream: StreamView,
}

/// Reassemble every TCP connection in a trace.
///
/// The side with port 443 is taken to be the server (all simulated
/// sessions use TLS on 443, as did the captures in the paper).
pub struct FlowReassembler;

impl FlowReassembler {
    /// Run reassembly over the full trace.
    pub fn reassemble(trace: &Trace) -> Vec<FlowStreams> {
        // Group segments by canonical flow.
        type Segment = (SimTime, FlowId, u32, Vec<u8>);
        let mut flows: BTreeMap<FlowId, Vec<Segment>> = BTreeMap::new();
        for (time, flow, tcp, payload) in segments_of(trace) {
            if payload.is_empty() {
                continue; // pure ACKs and control segments carry no stream bytes
            }
            flows
                .entry(flow.canonical())
                .or_default()
                .push((time, flow, tcp.seq, payload));
        }
        flows
            .into_iter()
            .map(|(canonical, segs)| {
                let client_flow = if canonical.src_port == 443 {
                    canonical.reversed()
                } else {
                    canonical
                };
                let mut up = DirectionAssembler::new();
                let mut down = DirectionAssembler::new();
                for (time, flow, seq, payload) in segs {
                    if flow == client_flow {
                        up.add(time, seq, &payload);
                    } else {
                        down.add(time, seq, &payload);
                    }
                }
                FlowStreams {
                    client_flow,
                    upstream: up.finish(),
                    downstream: down.finish(),
                }
            })
            .collect()
    }
}

/// Sequence-space reassembler for one direction.
///
/// The first captured segment anchors relative offset 0, but later
/// captures may reveal *earlier* stream bytes (out-of-order capture, or
/// the anchor itself was a retransmission), so offsets are tracked as
/// signed relatives and normalized once at the end.
struct DirectionAssembler {
    /// Wire seq of the first payload byte seen (relative offset 0).
    base_seq: Option<u32>,
    /// Segments keyed by signed relative stream offset.
    segments: BTreeMap<i64, (Vec<u8>, SimTime)>,
    /// Most recent relative offset, for unwrapping multi-wrap streams.
    last_rel: i64,
}

impl DirectionAssembler {
    fn new() -> Self {
        DirectionAssembler {
            base_seq: None,
            segments: BTreeMap::new(),
            last_rel: 0,
        }
    }

    fn add(&mut self, time: SimTime, seq: u32, payload: &[u8]) {
        let base = *self.base_seq.get_or_insert(seq);
        let raw = seq.wrapping_sub(base) as i64; // 0..2^32
                                                 // Choose raw + k·2^32 closest to the last seen offset.
        let span = 1i64 << 32;
        let k = (self.last_rel - raw + span / 2).div_euclid(span);
        let rel = raw + k * span;
        self.last_rel = self.last_rel.max(rel);
        // Keep the earliest copy of each offset (retransmissions are
        // later and carry identical bytes).
        self.segments
            .entry(rel)
            .or_insert_with(|| (payload.to_vec(), time));
    }

    fn finish(self) -> StreamView {
        let min_rel = self.segments.keys().next().copied().unwrap_or(0);
        let mut chunks: Vec<StreamChunk> = Vec::new();
        for (rel, (payload, time)) in self.segments {
            let abs = (rel - min_rel) as u64;
            let end = abs + payload.len() as u64;
            match chunks.last_mut() {
                Some(last) => {
                    let last_end = last.start_offset + last.data.len() as u64;
                    if abs <= last_end {
                        // Contiguous or overlapping: append the new tail.
                        if end > last_end {
                            let skip = (last_end - abs) as usize;
                            last.data
                                .extend_from_slice(payload.get(skip..).unwrap_or_default());
                            last.marks.push((last_end, time));
                        }
                        // Fully contained duplicates contribute nothing.
                    } else {
                        chunks.push(StreamChunk {
                            start_offset: abs,
                            data: payload,
                            marks: vec![(abs, time)],
                        });
                    }
                }
                None => {
                    chunks.push(StreamChunk {
                        start_offset: abs,
                        data: payload,
                        marks: vec![(abs, time)],
                    });
                }
            }
        }
        StreamView { chunks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tap::Tap;
    use wm_net::headers::TcpFlags;
    use wm_net::tcp::TcpSegment;

    fn client_flow() -> FlowId {
        FlowId {
            src_ip: [192, 168, 1, 2],
            src_port: 51000,
            dst_ip: [23, 246, 50, 9],
            dst_port: 443,
        }
    }

    fn seg(flow: FlowId, seq: u32, payload: &[u8]) -> TcpSegment {
        TcpSegment {
            flow,
            seq,
            ack: 0,
            flags: TcpFlags::PSH_ACK,
            payload: payload.to_vec(),
            retransmit: false,
        }
    }

    #[test]
    fn reassembles_in_order_stream() {
        let mut tap = Tap::new();
        tap.record_segment(SimTime(1), &seg(client_flow(), 1000, b"hello "));
        tap.record_segment(SimTime(2), &seg(client_flow(), 1006, b"world"));
        let trace = tap.into_trace();
        let flows = FlowReassembler::reassemble(&trace);
        assert_eq!(flows.len(), 1);
        let up = &flows[0].upstream;
        assert_eq!(up.chunks.len(), 1);
        assert_eq!(up.chunks[0].data, b"hello world");
        assert_eq!(up.gap_count(), 0);
        assert_eq!(up.time_at(0), Some(SimTime(1)));
        assert_eq!(up.time_at(8), Some(SimTime(2)));
    }

    #[test]
    fn splits_directions() {
        let mut tap = Tap::new();
        tap.record_segment(SimTime(1), &seg(client_flow(), 10, b"request"));
        tap.record_segment(SimTime(2), &seg(client_flow().reversed(), 99, b"response"));
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].client_flow, client_flow());
        assert_eq!(flows[0].upstream.chunks[0].data, b"request");
        assert_eq!(flows[0].downstream.chunks[0].data, b"response");
    }

    #[test]
    fn out_of_capture_order_reassembles() {
        let mut tap = Tap::new();
        tap.record_segment(SimTime(2), &seg(client_flow(), 1005, b"world"));
        tap.record_segment(SimTime(1), &seg(client_flow(), 1000, b"hello"));
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        // First captured segment defines offset 0; the earlier-seq one
        // sorts before it in sequence space via unwrap.
        let up = &flows[0].upstream;
        let all: Vec<u8> = up.chunks.iter().flat_map(|c| c.data.clone()).collect();
        assert_eq!(all, b"helloworld");
    }

    #[test]
    fn gap_where_tap_missed() {
        let mut tap = Tap::new();
        tap.record_segment(SimTime(1), &seg(client_flow(), 0, b"aaaa"));
        // 6 bytes at seq 4..10 never captured.
        tap.record_segment(SimTime(3), &seg(client_flow(), 10, b"bbbb"));
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        let up = &flows[0].upstream;
        assert_eq!(up.chunks.len(), 2);
        assert_eq!(up.gap_count(), 1);
        assert_eq!(up.gap_bytes(), 6);
        assert_eq!(up.data_bytes(), 8);
        assert_eq!(up.time_at(5), None, "no time inside a gap");
    }

    #[test]
    fn captured_retransmission_fills_gap() {
        let mut tap = Tap::new();
        tap.record_segment(SimTime(1), &seg(client_flow(), 0, b"aaaa"));
        tap.record_segment(SimTime(3), &seg(client_flow(), 8, b"cccc"));
        // Retransmission of the missing middle arrives later.
        tap.record_segment(SimTime(9), &seg(client_flow(), 4, b"bbbb"));
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        let up = &flows[0].upstream;
        assert_eq!(up.chunks.len(), 1);
        assert_eq!(up.chunks[0].data, b"aaaabbbbcccc");
        assert_eq!(up.time_at(5), Some(SimTime(9)), "late copy's timestamp");
    }

    #[test]
    fn duplicate_segments_keep_first_copy_time() {
        let mut tap = Tap::new();
        tap.record_segment(SimTime(1), &seg(client_flow(), 0, b"dup"));
        tap.record_segment(SimTime(5), &seg(client_flow(), 0, b"dup"));
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        let up = &flows[0].upstream;
        assert_eq!(up.chunks[0].data, b"dup");
        assert_eq!(up.time_at(0), Some(SimTime(1)));
    }

    #[test]
    fn overlapping_segment_tail_appended() {
        let mut tap = Tap::new();
        tap.record_segment(SimTime(1), &seg(client_flow(), 0, b"abcdef"));
        tap.record_segment(SimTime(2), &seg(client_flow(), 4, b"efgh"));
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        assert_eq!(flows[0].upstream.chunks[0].data, b"abcdefgh");
    }

    #[test]
    fn multiple_flows_separated() {
        let mut tap = Tap::new();
        let other = FlowId {
            src_port: 52000,
            ..client_flow()
        };
        tap.record_segment(SimTime(1), &seg(client_flow(), 0, b"flow-one"));
        tap.record_segment(SimTime(2), &seg(other, 0, b"flow-two"));
        let flows = FlowReassembler::reassemble(&tap.into_trace());
        assert_eq!(flows.len(), 2);
    }
}
