//! Handshake transcript simulation.
//!
//! The attack only ever reads record *lengths*, so the handshake is
//! modelled as a sequence of correctly framed records whose sizes match
//! what real browsers put on the wire. These records populate the
//! "others" class of the paper's Figure 2 (every client handshake record
//! in our profiles lands below the type-1 cluster) and give the capture
//! realistic connection establishment structure.
//!
//! Payload bytes are deterministic pseudo-random filler derived from the
//! transcript seed: the content is irrelevant, the framing and sizes are
//! not.

use crate::record::{ContentType, RecordHeader};
use wm_cipher::kdf::splitmix64;

/// Which endpoint emitted a flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sender {
    Client,
    Server,
}

/// One handshake flight: wire bytes from one sender.
#[derive(Debug, Clone)]
pub struct Flight {
    pub sender: Sender,
    /// Complete record bytes (header + body) for this flight.
    pub wire: Vec<u8>,
    /// Human-readable description for timelines ("ClientHello", ...).
    pub description: &'static str,
}

/// Record sizes for one handshake, before jitter.
///
/// Defaults are modelled on 2019-era captures: Firefox sends a compact
/// ClientHello, Chrome pads its to 512 bytes; Netflix's certificate
/// chain is a little over 4 kB.
#[derive(Debug, Clone, Copy)]
pub struct HandshakeShape {
    pub client_hello: usize,
    pub server_hello: usize,
    pub certificate: usize,
    pub server_kx: usize,
    pub client_kx: usize,
    /// Encrypted Finished record ciphertext length (both directions).
    pub finished: usize,
}

impl HandshakeShape {
    /// Firefox-shaped handshake.
    pub fn firefox() -> Self {
        HandshakeShape {
            client_hello: 236,
            server_hello: 89,
            certificate: 4312,
            server_kx: 333,
            client_kx: 37,
            finished: 40,
        }
    }

    /// Chrome-shaped handshake (padded ClientHello).
    pub fn chrome() -> Self {
        HandshakeShape {
            client_hello: 512,
            server_hello: 95,
            certificate: 4312,
            server_kx: 333,
            client_kx: 37,
            finished: 40,
        }
    }
}

/// Produce the full handshake transcript as wire flights.
///
/// `seed` drives the filler bytes and a ±8-byte size jitter on the
/// ClientHello/ServerHello (session-id and extension variance), matching
/// the small spread real captures show.
pub fn simulate_handshake(shape: &HandshakeShape, seed: u64) -> Vec<Flight> {
    let mut state = seed ^ 0x6873_6b5f_7369_6d31; // "hsk_sim1"
    let jitter = |state: &mut u64, base: usize| -> usize {
        base + (splitmix64(state) % 17) as usize // 0..=16 extra bytes
    };
    let ch = jitter(&mut state, shape.client_hello);
    let sh = jitter(&mut state, shape.server_hello);

    let mut flights = Vec::new();
    flights.push(flight(
        Sender::Client,
        "ClientHello",
        ContentType::Handshake,
        ch,
        &mut state,
    ));

    // Server flight: ServerHello, Certificate, ServerKeyExchange and
    // ServerHelloDone ride in consecutive records on the wire.
    let mut server_wire = Vec::new();
    for (desc, len) in [
        ("ServerHello", sh),
        ("Certificate", shape.certificate),
        ("ServerKeyExchange", shape.server_kx),
        ("ServerHelloDone", 4usize),
    ] {
        let f = flight(
            Sender::Server,
            desc,
            ContentType::Handshake,
            len,
            &mut state,
        );
        server_wire.extend_from_slice(&f.wire);
        let _ = desc;
    }
    flights.push(Flight {
        sender: Sender::Server,
        wire: server_wire,
        description: "ServerHello..ServerHelloDone",
    });

    // Client: ClientKeyExchange, ChangeCipherSpec, Finished (encrypted).
    let mut client_wire = Vec::new();
    for (desc, ct, len) in [
        ("ClientKeyExchange", ContentType::Handshake, shape.client_kx),
        ("ChangeCipherSpec", ContentType::ChangeCipherSpec, 1usize),
        ("Finished", ContentType::Handshake, shape.finished),
    ] {
        let f = flight(Sender::Client, desc, ct, len, &mut state);
        client_wire.extend_from_slice(&f.wire);
    }
    flights.push(Flight {
        sender: Sender::Client,
        wire: client_wire,
        description: "ClientKeyExchange+CCS+Finished",
    });

    // Server: ChangeCipherSpec, Finished.
    let mut fin_wire = Vec::new();
    for (desc, ct, len) in [
        ("ChangeCipherSpec", ContentType::ChangeCipherSpec, 1usize),
        ("Finished", ContentType::Handshake, shape.finished),
    ] {
        let f = flight(Sender::Server, desc, ct, len, &mut state);
        fin_wire.extend_from_slice(&f.wire);
    }
    flights.push(Flight {
        sender: Sender::Server,
        wire: fin_wire,
        description: "CCS+Finished",
    });

    flights
}

/// Produce an abbreviated session-resumption transcript.
///
/// When a connection is reset mid-session the client reconnects and
/// resumes the TLS session (session-ID / ticket): no certificate, no
/// key exchange — just ClientHello (carrying the ticket), the server's
/// ServerHello+CCS+Finished, and the client's CCS+Finished. Three
/// flights instead of four, an order of magnitude fewer bytes, and —
/// crucially for the eavesdropper — a second flow whose record stream
/// must be stitched to the first.
pub fn simulate_resumption(shape: &HandshakeShape, seed: u64) -> Vec<Flight> {
    let mut state = seed ^ 0x6873_6b5f_7265_7331; // "hsk_res1"
    let jitter = |state: &mut u64, base: usize| -> usize {
        base + (splitmix64(state) % 17) as usize // 0..=16 extra bytes
    };
    // The resuming ClientHello carries a ~32-byte session identifier on
    // top of the full hello's extension block.
    let ch = jitter(&mut state, shape.client_hello + 32);
    let sh = jitter(&mut state, shape.server_hello);

    let mut flights = Vec::new();
    flights.push(flight(
        Sender::Client,
        "ClientHello(resume)",
        ContentType::Handshake,
        ch,
        &mut state,
    ));

    let mut server_wire = Vec::new();
    for (desc, ct, len) in [
        ("ServerHello", ContentType::Handshake, sh),
        ("ChangeCipherSpec", ContentType::ChangeCipherSpec, 1usize),
        ("Finished", ContentType::Handshake, shape.finished),
    ] {
        let f = flight(Sender::Server, desc, ct, len, &mut state);
        server_wire.extend_from_slice(&f.wire);
    }
    flights.push(Flight {
        sender: Sender::Server,
        wire: server_wire,
        description: "ServerHello+CCS+Finished",
    });

    let mut fin_wire = Vec::new();
    for (desc, ct, len) in [
        ("ChangeCipherSpec", ContentType::ChangeCipherSpec, 1usize),
        ("Finished", ContentType::Handshake, shape.finished),
    ] {
        let f = flight(Sender::Client, desc, ct, len, &mut state);
        fin_wire.extend_from_slice(&f.wire);
    }
    flights.push(Flight {
        sender: Sender::Client,
        wire: fin_wire,
        description: "CCS+Finished",
    });

    flights
}

fn flight(
    sender: Sender,
    description: &'static str,
    content_type: ContentType,
    body_len: usize,
    state: &mut u64,
) -> Flight {
    let header = RecordHeader {
        content_type,
        version: (3, 3),
        length: body_len as u16,
    };
    let mut wire = Vec::with_capacity(5 + body_len);
    wire.extend_from_slice(&header.to_bytes());
    let mut remaining = body_len;
    while remaining >= 8 {
        wire.extend_from_slice(&splitmix64(state).to_le_bytes());
        remaining -= 8;
    }
    let last = splitmix64(state).to_le_bytes();
    wire.extend_from_slice(&last[..remaining]);
    Flight {
        sender,
        wire,
        description,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::RecordObserver;

    #[test]
    fn transcript_parses_as_records() {
        for shape in [HandshakeShape::firefox(), HandshakeShape::chrome()] {
            let flights = simulate_handshake(&shape, 42);
            assert_eq!(flights.len(), 4);
            let mut client_obs = RecordObserver::new();
            let mut server_obs = RecordObserver::new();
            let mut client_records = Vec::new();
            let mut server_records = Vec::new();
            for f in &flights {
                match f.sender {
                    Sender::Client => client_records.extend(client_obs.feed(&f.wire)),
                    Sender::Server => server_records.extend(server_obs.feed(&f.wire)),
                }
            }
            assert!(!client_obs.is_desynced());
            assert!(!server_obs.is_desynced());
            // CH, CKE, CCS, Finished.
            assert_eq!(client_records.len(), 4);
            // SH, Cert, SKE, SHD, CCS, Finished.
            assert_eq!(server_records.len(), 6);
        }
    }

    #[test]
    fn client_records_stay_below_type1_cluster() {
        // All client handshake records must fall into the "others"
        // region below the paper's type-1 bucket (≤2188 for Ubuntu).
        let flights = simulate_handshake(&HandshakeShape::chrome(), 7);
        let mut obs = RecordObserver::new();
        for f in flights.iter().filter(|f| f.sender == Sender::Client) {
            for r in obs.feed(&f.wire) {
                assert!(
                    r.length <= 2188,
                    "client handshake record {} too long",
                    r.length
                );
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = simulate_handshake(&HandshakeShape::firefox(), 1);
        let b = simulate_handshake(&HandshakeShape::firefox(), 1);
        let c = simulate_handshake(&HandshakeShape::firefox(), 2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.wire, y.wire);
        }
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.wire != y.wire));
    }

    #[test]
    fn resumption_is_abbreviated_and_deterministic() {
        let shape = HandshakeShape::firefox();
        let full = simulate_handshake(&shape, 5);
        let resume = simulate_resumption(&shape, 5);
        assert_eq!(resume.len(), 3, "CH / SH+CCS+Fin / CCS+Fin");
        let bytes = |fs: &[Flight]| fs.iter().map(|f| f.wire.len()).sum::<usize>();
        assert!(
            bytes(&resume) < bytes(&full) / 2,
            "resumption skips the certificate chain"
        );
        // Parses cleanly, stays below the type-1 cluster, replays.
        let mut obs = RecordObserver::new();
        for f in &resume {
            for r in obs.feed(&f.wire) {
                assert!(r.length <= 2188, "resumption record {} too long", r.length);
            }
        }
        assert!(!obs.is_desynced());
        let again = simulate_resumption(&shape, 5);
        for (a, b) in resume.iter().zip(again.iter()) {
            assert_eq!(a.wire, b.wire);
        }
    }

    #[test]
    fn jitter_bounded() {
        for seed in 0..50 {
            let flights = simulate_handshake(&HandshakeShape::firefox(), seed);
            let ch_len = flights[0].wire.len() - 5;
            assert!((236..=252).contains(&ch_len), "CH length {ch_len}");
        }
    }
}
