//! Property-based tests for the story model.

use proptest::prelude::*;
use wm_story::bandersnatch::{bandersnatch, tiny_film};
use wm_story::path::{sample_path, walk};
use wm_story::{Choice, ChoiceSequence, SegmentEnd};

fn arb_choices() -> impl Strategy<Value = ChoiceSequence> {
    prop::collection::vec(prop::bool::ANY, 0..20).prop_map(|bits| {
        ChoiceSequence(
            bits.into_iter()
                .map(|b| if b { Choice::NonDefault } else { Choice::Default })
                .collect(),
        )
    })
}

proptest! {
    /// Every choice sequence walks to an ending, consumes at most the
    /// graph's maximum decision depth, and replays identically.
    #[test]
    fn walks_terminate_and_replay(choices in arb_choices()) {
        for graph in [bandersnatch(), tiny_film()] {
            let w1 = walk(&graph, &choices);
            prop_assert!(graph.segment(w1.ending).is_ending());
            prop_assert!(w1.choices.len() <= graph.max_choices_on_path());
            prop_assert_eq!(w1.encountered.len(), w1.choices.len());
            let w2 = walk(&graph, &choices);
            prop_assert_eq!(w1, w2);
        }
    }

    /// The applied prefix of a walk equals the provided choices (until
    /// the sequence is exhausted, after which only defaults appear).
    #[test]
    fn applied_prefix_matches(choices in arb_choices()) {
        let graph = bandersnatch();
        let w = walk(&graph, &choices);
        for (i, c) in w.choices.0.iter().enumerate() {
            if i < choices.0.len() {
                prop_assert_eq!(*c, choices.0[i]);
            } else {
                prop_assert_eq!(*c, Choice::Default);
            }
        }
    }

    /// Each step's decision is consistent with the graph: the next
    /// step's segment is the chosen option's target (or the Continue
    /// successor).
    #[test]
    fn steps_follow_graph_edges(choices in arb_choices()) {
        let graph = bandersnatch();
        let w = walk(&graph, &choices);
        for pair in w.steps.windows(2) {
            let cur = graph.segment(pair[0].segment);
            let next = pair[1].segment;
            match (cur.end, pair[0].decision) {
                (SegmentEnd::Continue(n), None) => prop_assert_eq!(next, n),
                (SegmentEnd::Choice(cp), Some((dcp, choice))) => {
                    prop_assert_eq!(cp, dcp);
                    prop_assert_eq!(graph.choice_point(cp).option(choice).target, next);
                }
                (end, dec) => prop_assert!(false, "inconsistent step: {end:?} vs {dec:?}"),
            }
        }
    }

    /// Compact encoding round-trips every sequence.
    #[test]
    fn compact_roundtrip(choices in arb_choices()) {
        let s = choices.to_compact();
        prop_assert_eq!(ChoiceSequence::from_compact(&s), Some(choices));
    }

    /// Sampled paths respect the default-probability extremes and are
    /// seed-deterministic.
    #[test]
    fn sampling_properties(seed in any::<u64>()) {
        let graph = bandersnatch();
        let all_d = sample_path(&graph, seed, 1.0);
        prop_assert!(all_d.choices.0.iter().all(|c| *c == Choice::Default));
        let all_n = sample_path(&graph, seed, 0.0);
        prop_assert!(all_n.choices.0.iter().all(|c| *c == Choice::NonDefault));
        prop_assert_eq!(sample_path(&graph, seed, 0.5), sample_path(&graph, seed, 0.5));
    }

    /// Path durations are bounded by the sum of all segment durations.
    #[test]
    fn durations_bounded(choices in arb_choices()) {
        let graph = bandersnatch();
        let w = walk(&graph, &choices);
        let total: u64 = graph.segments().iter().map(|s| s.duration_secs as u64).sum();
        let d = w.duration_secs(&graph);
        prop_assert!(d > 0 && d <= total);
    }
}
