//! E12: supervised fleet kill/resume under chaos.
//!
//! Sweeps shard-fault intensity 0–4 over a supervised
//! [`wm_fleet::Fleet`] fed one merged multi-victim stream, and
//! compares its fault-free throughput against the unsupervised
//! [`wm_online::decode_sessions_sharded`] baseline. Reported per
//! intensity: kills, delivered verdicts, total loss-window sim-time
//! and mean recovery latency; headline: fleet vs baseline sessions/sec
//! and the supervision overhead ratio, written to `BENCH_fleet.json`
//! (schema-checked in-process; CI validates the same file).
//!
//! ```sh
//! cargo run --release -p wm-bench --bin fleet_recovery [-- --smoke]
//! ```
//!
//! `--smoke` (or `WM_FLEET_SMOKE=1`) shrinks the sweep for CI.
//!
//! The intensity-0 run doubles as an equivalence gate: with no faults
//! injected, the supervised fleet must deliver exactly the per-victim
//! verdicts the unsupervised baseline decodes.

use std::time::Instant;

use wm_bench::fleet::{validate_fleet_json, IntensityRow};
use wm_bench::throughput::peak_rss_bytes;
use wm_bench::{
    graph, sample_behavior, train_attack_for, viewer_cfg, write_bench_json, TraceTally, TIME_SCALE,
};
use wm_capture::time::{Duration, SimTime};
use wm_chaos::ShardFaultPlan;
use wm_dataset::{OperationalConditions, ViewerSpec};
use wm_fleet::{merge_taps, Fleet, FleetConfig, FleetReport, ObserverConfig, TapPacket};
use wm_obs::collapse_spans;
use wm_online::{decode_sessions_sharded, CapturedPacket};
use wm_telemetry::Snapshot;
use wm_trace::{SpanId, TraceEvent, TraceHandle};

const SHARDS: usize = 4;
const INTENSITIES: [f64; 5] = [0.0, 1.0, 2.0, 3.0, 4.0];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("WM_FLEET_SMOKE").is_ok_and(|v| v == "1");

    let graph = graph();
    let cond = OperationalConditions::grid()[0];
    let (attack, _) = train_attack_for(&graph, &cond, &[82_001, 82_002, 82_003]);
    let classifier = attack.classifier().clone();

    println!("=== E12: supervised fleet kill/resume ===\n");

    // ---- capture pool -----------------------------------------------
    let pool_n: u64 = if smoke { 4 } else { 12 };
    let mut telemetry = Snapshot::default();
    let mut tally = TraceTally::default();
    let gen_start = Instant::now();
    let mut pool: Vec<Vec<CapturedPacket>> = Vec::new();
    for v in 0..pool_n {
        let seed = 83_000 + v;
        let viewer = ViewerSpec {
            id: v as u32,
            seed,
            behavior: sample_behavior(seed),
            operational: cond,
        };
        let out = run_viewer_session(&graph, &viewer);
        telemetry.merge(&out.telemetry);
        tally.observe(&out.trace_events);
        pool.push(
            out.trace
                .packets
                .iter()
                .map(|p| (SimTime(p.time.micros()), p.frame.clone()))
                .collect(),
        );
    }
    println!(
        "  capture pool: {pool_n} sessions simulated in {:.2}s",
        gen_start.elapsed().as_secs_f64()
    );

    // ---- victim batch + merged stream -------------------------------
    let victims: usize = if smoke { 8 } else { 48 };
    let batch: Vec<Vec<CapturedPacket>> =
        (0..victims).map(|v| pool[v % pool.len()].clone()).collect();
    // One tap per victim, starts staggered 250 ms apart, merged into
    // the single time-ordered stream the supervisor ingests.
    let taps: Vec<Vec<TapPacket>> = batch
        .iter()
        .enumerate()
        .map(|(v, packets)| {
            let offset = v as u64 * 250_000;
            packets
                .iter()
                .map(|(t, frame)| (SimTime(t.micros() + offset), v as u32, frame.clone()))
                .collect()
        })
        .collect();
    let stream = merge_taps(&taps);
    let span_us = stream
        .last()
        .map(|(t, _, _)| t.micros())
        .unwrap_or(1)
        .max(1);

    let mut cfg = FleetConfig::scaled(SHARDS, TIME_SCALE);
    // Sessions overlap for the whole sweep; keep every victim resident
    // so the intensity-0 run is packet-for-packet the baseline decode.
    cfg.victim_idle = Duration::from_micros(span_us);
    cfg.max_victims_per_shard = victims.max(1);

    // ---- baseline: unsupervised sharded decode ----------------------
    let t = Instant::now();
    let baseline = decode_sessions_sharded(&classifier, &graph, &cfg.decode, &batch, 0);
    let baseline_secs = t.elapsed().as_secs_f64();
    let baseline_sessions_per_sec = victims as f64 / baseline_secs;
    println!(
        "  baseline decode_sessions_sharded: {victims} sessions in {baseline_secs:.2}s \
         ({baseline_sessions_per_sec:.1}/s)"
    );

    // ---- fleet sweep over fault intensity ---------------------------
    let mut rows: Vec<IntensityRow> = Vec::new();
    let mut alerts: Vec<(u32, u64)> = Vec::new();
    let mut fleet_sessions_per_sec = 0.0;
    for &intensity in &INTENSITIES {
        let plan = ShardFaultPlan::generate(
            0xE120 + intensity as u64,
            intensity,
            SHARDS,
            Duration::from_micros(span_us),
        );
        let t = Instant::now();
        let (report, trace_events) = run_fleet(&cfg, &classifier, &graph, &stream, &plan);
        let secs = t.elapsed().as_secs_f64();
        if intensity == 0.0 {
            fleet_sessions_per_sec = victims as f64 / secs;
            assert_intensity0_matches_baseline(&report, &baseline);
        }
        let obs = report.obs.as_ref().expect("observer attached to every run");
        let alert_count = obs.status.transitions.len() as u64 + obs.status.transitions_dropped;
        alerts.push((intensity as u32, alert_count));
        telemetry.merge(&obs.snapshot);
        tally.observe(&trace_events);
        let row = IntensityRow::from_report(intensity as u32, &report);
        println!(
            "  intensity {}: kills {:<3} restarts {:<3} verdicts {:<5} dropped {:<4} \
             loss-window {:>8} µs  mean recovery {:>8} µs  ({:.1} sessions/s)",
            row.intensity,
            row.kills,
            row.restarts,
            row.verdicts,
            row.dedup_dropped,
            row.loss_window_us,
            row.recovery_latency_us,
            victims as f64 / secs,
        );
        println!(
            "               per-shard: restore failures {}  worst outage {} µs",
            row.restore_failures, row.max_shard_recovery_us,
        );
        println!(
            "               health: {}  alerts {} (worst {})",
            obs.status
                .states
                .iter()
                .map(|s| s.label().chars().next().unwrap_or('?'))
                .collect::<String>(),
            alert_count,
            obs.status.worst().label(),
        );
        // The intensity-2 run is the E13 exhibit: CI uploads its
        // streamed metric series and the sim-time flamegraph.
        if intensity == 2.0 {
            write_artifact("FLEET_series.jsonl", &obs.series_jsonl);
            write_artifact("FLEET_flame.folded", &collapse_spans(&trace_events));
        }
        rows.push(row);
    }

    let overhead = baseline_sessions_per_sec / fleet_sessions_per_sec.max(f64::MIN_POSITIVE);
    let peak_rss = peak_rss_bytes().unwrap_or(0);
    println!(
        "\n  fleet {fleet_sessions_per_sec:.1} sessions/s vs baseline \
         {baseline_sessions_per_sec:.1}/s — supervision overhead {overhead:.2}x, \
         peak RSS {:.1} MiB",
        peak_rss as f64 / (1024.0 * 1024.0)
    );

    // ---- report ------------------------------------------------------
    let mut metrics: Vec<(String, f64)> = vec![
        ("fleet_sessions_per_sec".into(), fleet_sessions_per_sec),
        (
            "baseline_sessions_per_sec".into(),
            baseline_sessions_per_sec,
        ),
        ("supervision_overhead_ratio".into(), overhead),
        ("peak_rss_bytes".into(), peak_rss as f64),
    ];
    for row in &rows {
        metrics.push((format!("kills_i{}", row.intensity), row.kills as f64));
        metrics.push((format!("verdicts_i{}", row.intensity), row.verdicts as f64));
        metrics.push((
            format!("loss_window_us_i{}", row.intensity),
            row.loss_window_us as f64,
        ));
        metrics.push((
            format!("recovery_latency_us_i{}", row.intensity),
            row.recovery_latency_us as f64,
        ));
        metrics.push((
            format!("restore_failures_i{}", row.intensity),
            row.restore_failures as f64,
        ));
        metrics.push((
            format!("max_shard_recovery_us_i{}", row.intensity),
            row.max_shard_recovery_us as f64,
        ));
    }
    for (intensity, n) in &alerts {
        metrics.push((format!("alerts_i{intensity}"), *n as f64));
    }
    let metric_refs: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    write_bench_json("fleet", &metric_refs, &telemetry, &tally);

    // Self-check the artifact CI uploads and gates on.
    let json = std::fs::read_to_string("BENCH_fleet.json").expect("bench artifact just written");
    if let Err(e) = validate_fleet_json(&json) {
        eprintln!("BENCH_fleet.json failed schema validation: {e}");
        std::process::exit(1);
    }
    println!("  BENCH_fleet.json schema: ok");
}

fn run_viewer_session(
    graph: &std::sync::Arc<wm_story::StoryGraph>,
    viewer: &ViewerSpec,
) -> wm_sim::SessionOutput {
    wm_sim::run_session(&viewer_cfg(graph, viewer)).expect("victim session")
}

fn run_fleet(
    cfg: &FleetConfig,
    classifier: &wm_core::IntervalClassifier,
    graph: &std::sync::Arc<wm_story::StoryGraph>,
    stream: &[TapPacket],
    plan: &ShardFaultPlan,
) -> (FleetReport, Vec<TraceEvent>) {
    let mut fleet =
        Fleet::new(cfg.clone(), classifier.clone(), graph.clone()).expect("valid fleet config");
    fleet.inject(plan);
    let trace = TraceHandle::new();
    let root = trace.span_start_at(0, "fleet.run", SpanId::NONE);
    fleet.attach_trace(trace.clone(), root);
    fleet.attach_observer(ObserverConfig::default());
    for (t, victim, frame) in stream {
        fleet.push(*t, *victim, frame);
    }
    let end = stream.last().map(|(t, _, _)| t.micros()).unwrap_or(0);
    let report = fleet.finish();
    trace.span_end_at(end, root, "fleet.run");
    (report, trace.snapshot())
}

fn write_artifact(path: &str, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => println!("               wrote {path}"),
        Err(e) => eprintln!("               could not write {path}: {e}"),
    }
}

/// With no faults the supervised fleet must deliver exactly what the
/// unsupervised baseline decodes, victim for victim.
fn assert_intensity0_matches_baseline(report: &FleetReport, baseline: &[wm_online::SessionDecode]) {
    assert_eq!(report.stats.kills, 0, "intensity 0 must inject nothing");
    assert!(
        report.loss_windows.is_empty(),
        "intensity 0 must not report loss"
    );
    let mut per_victim = vec![0u64; baseline.len()];
    for (victim, _) in &report.verdicts {
        per_victim[*victim as usize] += 1;
    }
    for (v, decode) in baseline.iter().enumerate() {
        assert_eq!(
            per_victim[v],
            decode.verdicts.len() as u64,
            "victim {v}: supervised fleet diverged from the unsupervised baseline"
        );
    }
}
