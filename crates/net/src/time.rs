//! Simulation time: microseconds since session start.
//!
//! Wall-clock time never appears anywhere in the workspace — sessions
//! are fully deterministic and replayable. `SimTime` is a newtype over
//! microseconds (the libpcap timestamp resolution, so captures need no
//! conversion).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulation time (µs since session start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time (µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since session start.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since session start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Split into the (seconds, microseconds) pair pcap timestamps use.
    pub fn to_pcap_parts(self) -> (u32, u32) {
        ((self.0 / 1_000_000) as u32, (self.0 % 1_000_000) as u32)
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// From a float second count (rounds to the nearest microsecond).
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1e6).round() as u64)
    }

    pub fn micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scalar multiply (saturating).
    pub fn mul_f64(self, k: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(1_500_000);
        let t2 = t + Duration::from_millis(500);
        assert_eq!(t2, SimTime(2_000_000));
        assert_eq!(t2.since(t), Duration(500_000));
        assert_eq!(t.since(t2), Duration::ZERO, "saturating");
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(2).micros(), 2_000_000);
        assert_eq!(Duration::from_secs_f64(0.0000015).micros(), 2, "rounds");
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(SimTime(3_250_000).to_pcap_parts(), (3, 250_000));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(1_234_567).to_string(), "1.234567s");
    }

    #[test]
    fn mul_f64() {
        assert_eq!(Duration::from_secs(2).mul_f64(1.5), Duration::from_secs(3));
        assert_eq!(Duration::from_secs(2).mul_f64(0.0), Duration::ZERO);
    }
}
