//! # wm-netflix — the simulated interactive streaming service
//!
//! A from-scratch stand-in for the Netflix side of the paper's captures:
//! a DASH-like chunk server plus the interactive state API. It speaks
//! the HTTP dialect of `wm-http` over the TLS connection the session
//! layer provides, and it understands the two state-report shapes the
//! paper names:
//!
//! * **type-1** — posted when a choice question is displayed;
//! * **type-2** — posted when the viewer picks the *non-default* option
//!   (it reports the cancelled prefetch alongside the selection).
//!
//! The server parses and validates every state blob with `wm-json`
//! (nothing is trusted blindly — tests feed it malformed input) and
//! keeps an event log that the integration tests use as server-side
//! ground truth.

pub mod manifest;
pub mod server;

pub use manifest::{ladder_label, Manifest, BITRATE_LADDER, CHUNK_SECS};
pub use server::{
    NetflixServer, ServerConfig, ServerTelemetry, StateEventKind, StateLogEntry, STATE_ID_OFFSET,
};
