//! TLS record framing: headers, content types, fragmentation limits.

/// Length of the cleartext record header that precedes every record.
pub const RECORD_HEADER_LEN: usize = 5;

/// Maximum plaintext fragment length (RFC 5246 §6.2.1): 2^14 bytes.
/// Payloads larger than this are split across multiple records.
pub const MAX_FRAGMENT: usize = 1 << 14;

/// Maximum ciphertext length a conforming implementation will accept
/// (2^14 + 2048, RFC 5246 §6.2.3).
pub const MAX_CIPHERTEXT: usize = MAX_FRAGMENT + 2048;

/// TLS record content types (the subset that appears on a streaming
/// connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContentType {
    /// change_cipher_spec(20)
    ChangeCipherSpec,
    /// alert(21)
    Alert,
    /// handshake(22)
    Handshake,
    /// application_data(23)
    ApplicationData,
}

impl ContentType {
    /// Wire value.
    pub fn to_byte(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
        }
    }

    /// Parse a wire value.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            20 => Some(ContentType::ChangeCipherSpec),
            21 => Some(ContentType::Alert),
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::ApplicationData),
            _ => None,
        }
    }
}

/// The cleartext 5-byte header carried before every TLS record.
///
/// This header is what the White Mirror eavesdropper reads: `length` is
/// the ciphertext length and is *not* encrypted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    pub content_type: ContentType,
    /// Protocol version on the wire; TLS 1.2 is (3, 3). TLS 1.3 also
    /// writes (3, 3) for middlebox compatibility.
    pub version: (u8, u8),
    /// Ciphertext length in bytes.
    pub length: u16,
}

impl RecordHeader {
    /// Serialize into the 5 wire bytes.
    pub fn to_bytes(&self) -> [u8; RECORD_HEADER_LEN] {
        [
            self.content_type.to_byte(),
            self.version.0,
            self.version.1,
            (self.length >> 8) as u8,
            (self.length & 0xff) as u8,
        ]
    }

    /// Parse the 5 wire bytes.
    ///
    /// Returns `None` for unknown content types or absurd versions —
    /// the observer uses this to detect desynchronization.
    pub fn parse(bytes: &[u8; RECORD_HEADER_LEN]) -> Option<Self> {
        let content_type = ContentType::from_byte(bytes[0])?;
        let version = (bytes[1], bytes[2]);
        if version.0 != 3 || version.1 > 4 {
            return None;
        }
        let length = u16::from_be_bytes([bytes[3], bytes[4]]);
        if length as usize > MAX_CIPHERTEXT {
            return None;
        }
        Some(RecordHeader {
            content_type,
            version,
            length,
        })
    }
}

/// Iterator over a payload's [`MAX_FRAGMENT`]-sized plaintext
/// fragments (see [`fragments`]).
#[derive(Debug, Clone)]
pub struct Fragments<'a> {
    rest: &'a [u8],
    emitted_any: bool,
}

impl<'a> Iterator for Fragments<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.rest.is_empty() {
            if self.emitted_any {
                return None;
            }
            self.emitted_any = true;
            return Some(self.rest);
        }
        let n = self.rest.len().min(MAX_FRAGMENT);
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        self.emitted_any = true;
        Some(head)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = if self.rest.is_empty() {
            usize::from(!self.emitted_any)
        } else {
            self.rest.len().div_ceil(MAX_FRAGMENT)
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for Fragments<'_> {}

/// Split a plaintext payload into fragments no longer than
/// [`MAX_FRAGMENT`], without allocating. An empty payload yields one
/// empty fragment (TLS permits zero-length application-data records).
pub fn fragments(payload: &[u8]) -> Fragments<'_> {
    Fragments {
        rest: payload,
        emitted_any: false,
    }
}

/// [`fragments`], collected (kept for callers that want a `Vec`).
pub fn fragment(payload: &[u8]) -> Vec<&[u8]> {
    fragments(payload).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = RecordHeader {
            content_type: ContentType::ApplicationData,
            version: (3, 3),
            length: 2212,
        };
        assert_eq!(RecordHeader::parse(&h.to_bytes()), Some(h));
    }

    #[test]
    fn header_length_big_endian() {
        let h = RecordHeader {
            content_type: ContentType::Handshake,
            version: (3, 3),
            length: 0x0102,
        };
        assert_eq!(h.to_bytes(), [22, 3, 3, 1, 2]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RecordHeader::parse(&[0, 3, 3, 0, 1]).is_none()); // bad type
        assert!(RecordHeader::parse(&[23, 2, 0, 0, 1]).is_none()); // SSLv2-ish
        assert!(RecordHeader::parse(&[23, 3, 9, 0, 1]).is_none()); // bad minor
                                                                   // Length over the ciphertext bound.
        let over = (MAX_CIPHERTEXT + 1) as u16;
        assert!(RecordHeader::parse(&[23, 3, 3, (over >> 8) as u8, over as u8]).is_none());
    }

    #[test]
    fn all_content_types_roundtrip() {
        for ct in [
            ContentType::ChangeCipherSpec,
            ContentType::Alert,
            ContentType::Handshake,
            ContentType::ApplicationData,
        ] {
            assert_eq!(ContentType::from_byte(ct.to_byte()), Some(ct));
        }
        assert_eq!(ContentType::from_byte(0), None);
        assert_eq!(ContentType::from_byte(24), None);
    }

    #[test]
    fn fragmentation() {
        let small = vec![0u8; 100];
        assert_eq!(fragment(&small).len(), 1);
        let exact = vec![0u8; MAX_FRAGMENT];
        assert_eq!(fragment(&exact).len(), 1);
        let big = vec![0u8; MAX_FRAGMENT + 1];
        let frags = fragment(&big);
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].len(), MAX_FRAGMENT);
        assert_eq!(frags[1].len(), 1);
        let empty: Vec<u8> = vec![];
        assert_eq!(fragment(&empty), vec![&[] as &[u8]]);
    }
}
