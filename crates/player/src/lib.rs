//! # wm-player — the simulated browser/player
//!
//! The client half of a viewing session: manifest fetch, ABR chunk
//! streaming, the 10-second choice window with **default-branch
//! prefetch**, and the state reports whose TLS record lengths are the
//! paper's side-channel:
//!
//! * a **type-1** state JSON is posted the moment a choice question is
//!   displayed;
//! * a **type-2** state JSON follows if (and only if) the viewer picks
//!   the non-default option — it reports the selection and the
//!   prefetched chunks that were cancelled.
//!
//! Platform differences (OS × browser × device form, Table I) live in
//! [`profile::Profile`]: user-agent and ESN strings, cookie sizes and a
//! platform `clientInfo` blob shift every state report by a
//! platform-specific constant, which is why the paper's Figure 2 shows
//! different — but equally tight — length clusters per condition.
//!
//! The player is a pure event-driven state machine: the session layer
//! (`wm-sim`) feeds it responses and timer firings, and it returns the
//! requests, timers and ground-truth events to apply. It performs no
//! I/O and holds no clock of its own, which is what makes sessions
//! deterministic and replayable.

pub mod abr;
pub mod player;
pub mod profile;
pub mod state;

pub use abr::ThroughputEstimator;
pub use player::{
    timer_kinds, OutRequest, Player, PlayerActions, PlayerConfig, PlayerFault, PlayerPhase,
    PlayerTelemetry, RequestKind, TruthEvent,
};
pub use profile::{Browser, DeviceForm, Os, Profile};
pub use state::StateJsonBuilder;
pub use wm_story::{ScriptEntry, ViewerScript};
