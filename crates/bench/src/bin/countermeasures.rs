//! E5 / **§VI countermeasures**: the paper's proposed fixes (split the
//! JSON, compress it) plus constant-size padding, measured against
//! three attack variants:
//!
//! * the record-length decoder (the paper's attack);
//! * a burst-total decoder (groups split records and classifies the
//!   summed length — shows why splitting alone is cosmetic);
//! * the timing/count decoder (the residual channel of E6).
//!
//! ```sh
//! cargo run --release -p wm-bench --bin countermeasures
//! ```

use wm_bench::{graph, harness_cfg, write_bench_json, TraceTally, TIME_SCALE};
use wm_capture::records::TimedRecord;
use wm_core::{
    choice_accuracy, client_app_records, AttackTelemetry, ChoiceAccuracy, DecodedChoice,
    WhiteMirror, WhiteMirrorConfig,
};
use wm_defense::{Defense, TimingDecoder, TimingDecoderConfig};
use wm_net::time::{Duration, SimTime};
use wm_player::ViewerScript;
use wm_sim::{run_session, SessionOutput};
use wm_story::Choice;
use wm_telemetry::{Registry, Snapshot};

const VICTIMS: u64 = 6;

fn main() {
    let graph = graph();
    let defenses = [
        Defense::None,
        Defense::Split { max: 700 },
        Defense::Compress,
        Defense::PadToConstant { size: 4096 },
        Defense::PadWithDummies { size: 4096 },
    ];

    println!("=== §VI countermeasures (E5): attack accuracy under each defense ===\n");
    println!(
        "{:<24} {:>14} {:>14} {:>14}",
        "defense", "length", "burst-total", "timing/count"
    );

    let attack_registry = Registry::new();
    let mut telemetry = Snapshot::default();
    let mut tally = TraceTally::default();
    let mut metrics: Vec<(String, f64)> = Vec::new();

    for defense in defenses {
        // Attacker retrains under the deployed defense.
        let mut train_labels = Vec::new();
        let mut train_sessions = Vec::new();
        for seed in [70_001u64, 70_002, 70_003] {
            let mut cfg = harness_cfg(&graph, seed, ViewerScript::sample(seed, 14, 0.5));
            cfg.defense = defense;
            let out = run_session(&cfg).expect("training session");
            telemetry.merge(&out.telemetry);
            tally.observe(&out.trace_events);
            train_labels.extend(out.labels.iter().copied());
            train_sessions.push(out);
        }
        let attack = WhiteMirror::train(&train_labels, WhiteMirrorConfig::scaled(TIME_SCALE)).map(
            |mut a| {
                a.set_telemetry(AttackTelemetry::register(&attack_registry));
                a
            },
        );
        let burst_bands = learn_burst_bands(&train_sessions);

        let mut length_acc = ChoiceAccuracy::default();
        let mut burst_acc = ChoiceAccuracy::default();
        let mut timing_acc = ChoiceAccuracy::default();
        let mut timing_outputs: Vec<Choice> = Vec::new();
        for v in 0..VICTIMS {
            let seed = 71_000 + v;
            let mut cfg = harness_cfg(&graph, seed, ViewerScript::sample(seed, 14, 0.45));
            cfg.defense = defense;
            let out = run_session(&cfg).expect("victim session");
            telemetry.merge(&out.telemetry);
            tally.observe(&out.trace_events);

            if let Some(a) = &attack {
                let (_, acc) = a.evaluate(&out.trace, &graph, &out.decisions);
                length_acc.merge(&acc);
            }
            burst_acc.merge(&choice_accuracy(
                &burst_total_decode(&out, &graph, burst_bands),
                &out.decisions,
            ));
            if defense.constant_size().is_some() {
                let picks = timing_decode(&out, defense);
                timing_outputs.extend(picks.iter().copied());
                timing_acc.merge(&score_positional(&picks, &out));
            }
        }

        println!(
            "{:<24} {:>14} {:>14} {:>14}",
            defense.label(),
            if attack.is_some() {
                format!("{:>6.1}%", 100.0 * length_acc.accuracy())
            } else {
                "no signature".into()
            },
            format!("{:>6.1}%", 100.0 * burst_acc.accuracy()),
            if defense.constant_size().is_some() {
                let constant = timing_outputs.windows(2).all(|w| w[0] == w[1]);
                if constant && timing_outputs.len() > 1 {
                    // Constant output extracts zero information; the
                    // score is just the class base rate.
                    format!("{:>5.1}%*", 100.0 * timing_acc.accuracy())
                } else {
                    format!("{:>6.1}%", 100.0 * timing_acc.accuracy())
                }
            } else {
                // Without a known constant post size, background
                // telemetry floods the count channel; E6 studies it.
                "—".into()
            },
        );
        let key: String = defense
            .label()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if attack.is_some() {
            metrics.push((format!("length_accuracy.{key}"), length_acc.accuracy()));
        }
        metrics.push((format!("burst_accuracy.{key}"), burst_acc.accuracy()));
    }
    println!("\n* constant decoder output (every question shows two identical posts):");
    println!("  the score is the class base rate — zero information extracted.");
    println!("\npaper: \"an easy fix would be to either split the JSON file or to compress");
    println!("it … however, there could be timing side-channels that may still exist\".");
    println!("Measured: splitting only hides the per-record signature (burst totals leak);");
    println!("compression leaves distinct compressed sizes; padding kills lengths but the");
    println!("report count/timing still reveals the pick. Only padding combined with dummy");
    println!("second posts (this reproduction's extension) drives every channel to the");
    println!("all-default floor.");

    telemetry.merge(&attack_registry.snapshot());
    let metric_refs: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    write_bench_json("countermeasures", &metric_refs, &telemetry, &tally);
}

/// Burst-total bands learned from training sessions. Split posts carry
/// no single-record labels, so bands are anchored on the *ground-truth
/// event times* the attacker has for their own controlled viewings: the
/// burst nearest each question is a type-1 total, the burst nearest
/// each non-default decision is a type-2 total.
const GAP_CONTENT_SECS: f64 = 0.5;

fn learn_burst_bands(sessions: &[SessionOutput]) -> ((u64, u64), (u64, u64)) {
    let tol = Duration::from_secs_f64(1.0 / TIME_SCALE as f64);
    let mut t1_totals: Vec<u64> = Vec::new();
    let mut t2_totals: Vec<u64> = Vec::new();
    for s in sessions {
        let features = client_app_records(&s.trace);
        let bursts = bursts_of(&features.records);
        let nearest = |t: wm_net::time::SimTime| -> Option<u64> {
            bursts
                .iter()
                .filter(|b| b.start + tol >= t && b.start.since(t) <= tol)
                .min_by_key(|b| b.start.since(t).micros().max(t.since(b.start).micros()))
                .map(|b| b.total)
        };
        for e in &s.truth {
            match e {
                wm_player::TruthEvent::QuestionShown { time, .. } => {
                    t1_totals.extend(nearest(*time));
                }
                wm_player::TruthEvent::Decision {
                    time,
                    type2_sent: true,
                    ..
                } => {
                    t2_totals.extend(nearest(*time));
                }
                _ => {}
            }
        }
    }
    (robust_band(&mut t1_totals), robust_band(&mut t2_totals))
}

/// Tight band around the median: report totals jitter by a few bytes,
/// while a burst that merged with concurrent telemetry jumps by 800+.
fn robust_band(totals: &mut [u64]) -> (u64, u64) {
    if totals.is_empty() {
        return (u64::MAX, 0);
    }
    totals.sort_unstable();
    let med = totals[totals.len() / 2];
    let kept: Vec<u64> = totals
        .iter()
        .copied()
        .filter(|&v| v + 200 >= med && v <= med + 200)
        .collect();
    (
        *kept.first().expect("median kept"),
        *kept.last().expect("median kept"),
    )
}

struct Burst {
    start: SimTime,
    end: SimTime,
    total: u64,
}

fn bursts_of(records: &[TimedRecord]) -> Vec<Burst> {
    let gap = Duration::from_secs_f64(GAP_CONTENT_SECS / TIME_SCALE as f64);
    let mut out: Vec<Burst> = Vec::new();
    for r in records {
        if r.record.length < 600 {
            // Chunk requests (~540 B) would otherwise merge into report
            // bursts nondeterministically; split-post remainders below
            // the cut are excluded *consistently*, so learned totals
            // stay tight.
            continue;
        }
        match out.last_mut() {
            Some(b) if r.time.since(b.end) <= gap => {
                b.total += r.record.length as u64;
                b.end = r.time;
            }
            _ => out.push(Burst {
                start: r.time,
                end: r.time,
                total: r.record.length as u64,
            }),
        }
    }
    out
}

/// Decode with burst totals, reusing the main attack machinery: each
/// burst becomes one pseudo-record whose length is the burst total, an
/// interval classifier carries the learned total bands, and the
/// graph-aware beam decoder does the sequencing (so a question whose
/// burst merged with telemetry degrades one decision, not the whole
/// tail).
fn burst_total_decode(
    out: &SessionOutput,
    graph: &wm_story::StoryGraph,
    bands: ((u64, u64), (u64, u64)),
) -> Vec<DecodedChoice> {
    let ((t1_lo, t1_hi), (t2_lo, t2_hi)) = bands;
    let features = client_app_records(&out.trace);
    let mut pseudo: Vec<TimedRecord> = Vec::new();
    // Playback-start markers so the decoder's absolute question-time
    // anchor (second app record = first chunk request) is correct —
    // bursts exclude the small manifest/chunk requests.
    for r in features.records.iter().take(2) {
        pseudo.push(TimedRecord {
            time: r.time,
            record: wm_tls::observer::ObservedRecord {
                stream_offset: 0,
                content_type: wm_tls::ContentType::ApplicationData,
                version: (3, 3),
                length: 700,
            },
        });
    }
    pseudo.extend(
        bursts_of(&features.records)
            .into_iter()
            .map(|b| TimedRecord {
                time: b.start,
                record: wm_tls::observer::ObservedRecord {
                    stream_offset: 0,
                    content_type: wm_tls::ContentType::ApplicationData,
                    version: (3, 3),
                    length: b.total.min(u16::MAX as u64) as u16,
                },
            }),
    );
    let classifier = wm_core::IntervalClassifier {
        type1: (
            t1_lo.min(u16::MAX as u64) as u16,
            t1_hi.min(u16::MAX as u64) as u16,
        ),
        type2: (
            t2_lo.min(u16::MAX as u64) as u16,
            t2_hi.min(u16::MAX as u64) as u16,
        ),
        slack: 10,
    };
    wm_core::BeamDecoder::new(
        &classifier,
        graph,
        wm_core::DecoderConfig::scaled(TIME_SCALE),
        8,
    )
    .decode(&pseudo)
}

fn timing_decode(out: &SessionOutput, defense: Defense) -> Vec<Choice> {
    let features = client_app_records(&out.trace);
    let mut cfg = TimingDecoderConfig::new(Duration::from_secs_f64(10.0 / TIME_SCALE as f64));
    cfg.burst_gap = Duration::from_secs_f64(0.5 / TIME_SCALE as f64);
    if let Some(size) = defense.constant_size() {
        cfg.exact_post_len = Some(size as u16 + 16);
    }
    TimingDecoder::new(cfg)
        .decode(&features.records)
        .into_iter()
        .map(|e| e.choice)
        .collect()
}

/// Score a bare pick sequence positionally against the session truth.
fn score_positional(picks: &[Choice], out: &SessionOutput) -> ChoiceAccuracy {
    let decoded: Vec<DecodedChoice> = picks
        .iter()
        .zip(out.decisions.iter())
        .map(|(c, (cp, _))| DecodedChoice {
            cp: *cp,
            choice: *c,
            time: SimTime::ZERO,
            observed: true,
            confidence: 1.0,
        })
        .collect();
    choice_accuracy(&decoded, &out.decisions)
}
