//! Property-based tests for the countermeasure transforms.

use proptest::prelude::*;
use wm_defense::lz::{compress, decompress};
use wm_defense::Defense;
use wm_http::{Request, RequestParser};

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // JSON-ish printable bodies (the realistic case).
        "[ -~]{0,1500}".prop_map(String::into_bytes),
        // Arbitrary bytes (the adversarial case).
        prop::collection::vec(any::<u8>(), 0..1500),
        // Highly repetitive (compression stress).
        (any::<u8>(), 0usize..3000).prop_map(|(b, n)| vec![b; n]),
    ]
}

proptest! {
    /// LZ round-trips every input.
    #[test]
    fn lz_roundtrip(data in arb_body()) {
        let c = compress(&data);
        let d = decompress(&c);
        prop_assert_eq!(d.as_deref(), Some(&data[..]));
    }

    /// The decompressor never panics on arbitrary input and never
    /// produces output from obviously malformed streams.
    #[test]
    fn lz_decompress_total(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress(&data);
    }

    /// Split preserves the exact byte stream (only framing changes).
    #[test]
    fn split_stream_identity(body in arb_body(), max in 64usize..900) {
        let req = Request::new("POST", "/interact/state")
            .header("Host", "www.netflix.com")
            .body(body);
        let writes = Defense::Split { max }.encode(&req);
        prop_assert!(writes.iter().all(|w| w.len() <= max.max(64)));
        let glued: Vec<u8> = writes.concat();
        prop_assert_eq!(glued, req.to_bytes());
    }

    /// Padding always reaches the exact target when feasible and the
    /// padded request still parses with the original body prefix.
    #[test]
    fn pad_exact_and_parseable(body in "[ -~]{2,600}", size in 1200usize..5000) {
        let req = Request::new("POST", "/interact/state")
            .header("Host", "www.netflix.com")
            .body(body.clone().into_bytes());
        let writes = Defense::PadToConstant { size }.encode(&req);
        prop_assert_eq!(writes.len(), 1);
        if size >= req.serialized_len() {
            prop_assert_eq!(writes[0].len(), size);
        }
        let mut parser = RequestParser::new();
        let parsed = parser.feed(&writes[0]).expect("padded request parses").remove(0);
        prop_assert!(parsed.body.starts_with(body.as_bytes()));
        prop_assert!(parsed.body[body.len()..].iter().all(|&b| b == b' '));
    }

    /// Compression round-trips through the server-side decoder.
    #[test]
    fn compress_decode_roundtrip(body in arb_body()) {
        let req = Request::new("POST", "/interact/state").body(body.clone());
        let writes = Defense::Compress.encode(&req);
        let mut parser = RequestParser::new();
        let parsed = parser.feed(&writes[0]).expect("compressed request parses").remove(0);
        let decoded = Defense::Compress
            .decode_body(parsed.header_value("content-encoding"), &parsed.body)
            .expect("decodes");
        prop_assert_eq!(decoded, body);
    }

    /// Padding makes any two bodies the same wire length (the defense's
    /// entire point).
    #[test]
    fn pad_equalizes(a in "[ -~]{0,800}", b in "[ -~]{0,800}") {
        let size = 4096usize;
        let ra = Request::new("POST", "/s").body(a.into_bytes());
        let rb = Request::new("POST", "/s").body(b.into_bytes());
        let wa = Defense::PadToConstant { size }.encode(&ra);
        let wb = Defense::PadToConstant { size }.encode(&rb);
        prop_assert_eq!(wa[0].len(), wb[0].len());
    }
}
