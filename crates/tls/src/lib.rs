//! # wm-tls — TLS record layer for the White Mirror reproduction
//!
//! The paper's side-channel is the **SSL record length**: TLS encrypts
//! payloads but transmits each record behind a cleartext 5-byte header
//! whose fourth and fifth bytes spell out the ciphertext length. A
//! passive eavesdropper who reassembles the TCP stream can therefore
//! enumerate `(content_type, version, length)` for every record — and
//! the length of a record carrying a Netflix state JSON betrays which
//! JSON it is.
//!
//! This crate implements the pieces of TLS that matter for that channel:
//!
//! * [`record`] — record header encode/parse, content types, the 2^14
//!   fragmentation limit;
//! * [`suite`] — the two cipher-suite families and their exact
//!   plaintext→ciphertext length maps (AEAD: `+16`; CBC: IV + MAC +
//!   pad-to-block, which *quantizes* lengths);
//! * [`conn`] — a sending/receiving record protection engine with
//!   per-direction keys and sequence numbers (genuine encryption via
//!   `wm-cipher`; receivers authenticate before releasing plaintext);
//! * [`handshake`] — a handshake *transcript simulator* producing the
//!   realistic record sizes (ClientHello, Certificate, …) that populate
//!   the "others" class in the paper's Figure 2;
//! * [`observer`] — the eavesdropper's incremental record parser: given
//!   the reassembled TCP byte stream, it recovers record metadata only.

pub mod conn;
pub mod handshake;
pub mod observer;
pub mod record;
pub mod suite;

pub use conn::{EngineTelemetry, RecordEngine, SessionKeys, TlsError};
pub use observer::{ObservedRecord, RecordObserver};
pub use record::{ContentType, RecordHeader, MAX_FRAGMENT, RECORD_HEADER_LEN};
pub use suite::CipherSuite;
