//! Bench-regression gate: compare a candidate `BENCH_*.json` against a
//! committed baseline with per-metric tolerance bands.
//!
//! Deterministic sim-derived metrics (verdict counts, kills, loss
//! windows, accuracies) default to **exact** comparison — any drift is
//! a behaviour change, not noise. Wall-clock-derived metrics
//! (`*_per_sec`, RSS, speedups, overhead ratios) default to **any**:
//! they must be present and finite but machines differ, so CI never
//! flakes on them. Both defaults can be overridden per metric.
//!
//! The metrics parser is textual on purpose: bench metrics carry six
//! fraction digits, more than the `wm-json` state-blob dialect admits.
//!
//! The `bench_diff` CLI mirrors `trace_diff` exit codes:
//! 0 = within bands, 1 = regression, 2 = usage/parse error.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed bench report: its name and the `"metrics"` object.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    pub bench: String,
    pub metrics: BTreeMap<String, f64>,
}

impl BenchDoc {
    /// Parse a `BENCH_*.json` document produced by `wm-bench`.
    pub fn parse(json: &str) -> Result<BenchDoc, String> {
        let bench = extract_string(json, "bench").ok_or("missing \"bench\" name")?;
        let metrics_start = json
            .find("\"metrics\":{")
            .ok_or("missing \"metrics\" object")?
            + "\"metrics\":{".len();
        let body = &json[metrics_start..];
        let end = body.find('}').ok_or("unterminated \"metrics\" object")?;
        let body = &body[..end];
        let mut metrics = BTreeMap::new();
        for pair in body.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("malformed metric pair {pair:?}"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("metric {key:?} is not a number: {value:?}"))?;
            metrics.insert(key, value);
        }
        if metrics.is_empty() {
            return Err("empty \"metrics\" object".into());
        }
        Ok(BenchDoc { bench, metrics })
    }
}

fn extract_string(json: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let rest = &json[json.find(&pat)? + pat.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Tolerance band for one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Band {
    /// Bit-exact equality of the parsed values.
    Exact,
    /// `|candidate - baseline| ≤ f × |baseline|`.
    Ratio(f64),
    /// `|candidate - baseline| ≤ f`.
    Abs(f64),
    /// Presence gate only: finite and non-negative.
    Any,
}

impl Band {
    /// Default band by metric name: wall-clock-derived metrics get
    /// [`Band::Any`], everything else compares exactly.
    pub fn default_for(metric: &str) -> Band {
        const WALL_CLOCK_MARKERS: &[&str] =
            &["per_sec", "rss", "secs", "speedup", "overhead", "ratio"];
        if WALL_CLOCK_MARKERS.iter().any(|m| metric.contains(m)) {
            Band::Any
        } else {
            Band::Exact
        }
    }

    /// Parse a CLI band spec: `exact`, `any`, `ratio:0.15`, `abs:3`.
    pub fn parse(spec: &str) -> Result<Band, String> {
        match spec {
            "exact" => return Ok(Band::Exact),
            "any" => return Ok(Band::Any),
            _ => {}
        }
        let (kind, value) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad band spec {spec:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("bad band value in {spec:?}"))?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!("band value out of range in {spec:?}"));
        }
        match kind {
            "ratio" => Ok(Band::Ratio(value)),
            "abs" => Ok(Band::Abs(value)),
            _ => Err(format!("unknown band kind {kind:?}")),
        }
    }

    /// Does `candidate` fall inside this band around `baseline`?
    pub fn admits(&self, baseline: f64, candidate: f64) -> bool {
        if !candidate.is_finite() {
            return false;
        }
        match *self {
            Band::Exact => candidate == baseline,
            Band::Ratio(r) => (candidate - baseline).abs() <= r * baseline.abs(),
            Band::Abs(a) => (candidate - baseline).abs() <= a,
            Band::Any => candidate >= 0.0,
        }
    }

    fn describe(&self) -> String {
        match *self {
            Band::Exact => "exact".into(),
            Band::Ratio(r) => format!("ratio:{r}"),
            Band::Abs(a) => format!("abs:{a}"),
            Band::Any => "any".into(),
        }
    }
}

/// One metric's comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    pub name: String,
    pub baseline: f64,
    pub candidate: f64,
    pub band: Band,
    pub ok: bool,
}

/// Full comparison of candidate vs baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    pub bench: String,
    pub rows: Vec<MetricDiff>,
    /// Metrics the baseline pins that the candidate dropped — always a
    /// regression.
    pub missing: Vec<String>,
    /// Metrics only the candidate carries — allowed (benches grow),
    /// but reported so baselines get refreshed.
    pub extra: Vec<String>,
}

impl DiffReport {
    pub fn regressed(&self) -> bool {
        !self.missing.is_empty() || self.rows.iter().any(|r| !r.ok)
    }

    /// Human-readable table; out-of-band rows are marked `REGRESSED`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "bench_diff: {}", self.bench);
        for row in &self.rows {
            let _ = writeln!(
                out,
                "  {:<9} {:<32} baseline {:>16.6} candidate {:>16.6}  [{}]",
                if row.ok { "ok" } else { "REGRESSED" },
                row.name,
                row.baseline,
                row.candidate,
                row.band.describe()
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "  REGRESSED {name:<32} missing from candidate");
        }
        for name in &self.extra {
            let _ = writeln!(
                out,
                "  note      {name:<32} new in candidate (not in baseline)"
            );
        }
        let _ = writeln!(
            out,
            "  verdict: {}",
            if self.regressed() { "REGRESSED" } else { "ok" }
        );
        out
    }
}

/// Compare two bench documents. `overrides` replaces the per-name
/// default band. Errors (name mismatch, unparseable JSON) are schema
/// problems, distinct from regressions.
pub fn bench_diff(
    baseline_json: &str,
    candidate_json: &str,
    overrides: &BTreeMap<String, Band>,
) -> Result<DiffReport, String> {
    let baseline = BenchDoc::parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    let candidate = BenchDoc::parse(candidate_json).map_err(|e| format!("candidate: {e}"))?;
    if baseline.bench != candidate.bench {
        return Err(format!(
            "bench name mismatch: baseline {:?} vs candidate {:?}",
            baseline.bench, candidate.bench
        ));
    }
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (name, &base) in &baseline.metrics {
        match candidate.metrics.get(name) {
            Some(&cand) => {
                let band = overrides
                    .get(name)
                    .copied()
                    .unwrap_or_else(|| Band::default_for(name));
                rows.push(MetricDiff {
                    name: name.clone(),
                    baseline: base,
                    candidate: cand,
                    band,
                    ok: band.admits(base, cand),
                });
            }
            None => missing.push(name.clone()),
        }
    }
    let extra = candidate
        .metrics
        .keys()
        .filter(|k| !baseline.metrics.contains_key(*k))
        .cloned()
        .collect();
    Ok(DiffReport {
        bench: baseline.bench,
        rows,
        missing,
        extra,
    })
}

/// The CLI contract in library form so tests can pin exit codes
/// without spawning processes: returns `(exit_code, rendered output)`
/// with 0 = within bands, 1 = regression, 2 = parse/schema error.
pub fn diff_exit_code(
    baseline_json: &str,
    candidate_json: &str,
    overrides: &BTreeMap<String, Band>,
) -> (u8, String) {
    match bench_diff(baseline_json, candidate_json, overrides) {
        Ok(report) => ((report.regressed()) as u8, report.render()),
        Err(e) => (2, format!("bench_diff: error: {e}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(bench: &str, metrics: &[(&str, f64)]) -> String {
        let body: Vec<String> = metrics
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v:.6}"))
            .collect();
        format!(
            "{{\"bench\":\"{bench}\",\"metrics\":{{{}}},\"telemetry\":{{\"counters\":{{}},\"histograms\":{{}}}},\"trace\":{{}}}}",
            body.join(",")
        )
    }

    #[test]
    fn parses_bench_documents() {
        let json = doc(
            "fleet",
            &[("kills_i2", 5.0), ("fleet_sessions_per_sec", 41.5)],
        );
        let parsed = BenchDoc::parse(&json).expect("parses");
        assert_eq!(parsed.bench, "fleet");
        assert_eq!(parsed.metrics["kills_i2"], 5.0);
        assert_eq!(parsed.metrics["fleet_sessions_per_sec"], 41.5);
        assert!(BenchDoc::parse("{}").is_err());
        assert!(BenchDoc::parse("{\"bench\":\"x\",\"metrics\":{}}").is_err());
    }

    #[test]
    fn default_bands_split_deterministic_from_wall_clock() {
        assert_eq!(Band::default_for("verdicts_i3"), Band::Exact);
        assert_eq!(Band::default_for("accuracy_i0_00"), Band::Exact);
        assert_eq!(Band::default_for("loss_window_us_i2"), Band::Exact);
        assert_eq!(Band::default_for("sessions_per_sec"), Band::Any);
        assert_eq!(Band::default_for("peak_rss_bytes"), Band::Any);
        assert_eq!(Band::default_for("speedup_vs_contiguous"), Band::Any);
        assert_eq!(Band::default_for("supervision_overhead_ratio"), Band::Any);
    }

    #[test]
    fn band_admission() {
        assert!(Band::Exact.admits(3.0, 3.0));
        assert!(!Band::Exact.admits(3.0, 3.000001));
        assert!(Band::Ratio(0.1).admits(100.0, 109.0));
        assert!(!Band::Ratio(0.1).admits(100.0, 111.0));
        assert!(Band::Abs(5.0).admits(10.0, 14.0));
        assert!(!Band::Abs(5.0).admits(10.0, 16.0));
        assert!(Band::Any.admits(1.0, 123456.0));
        assert!(!Band::Any.admits(1.0, -1.0));
        assert!(!Band::Any.admits(1.0, f64::NAN));
        assert_eq!(Band::parse("ratio:0.15"), Ok(Band::Ratio(0.15)));
        assert_eq!(Band::parse("abs:3"), Ok(Band::Abs(3.0)));
        assert_eq!(Band::parse("exact"), Ok(Band::Exact));
        assert!(Band::parse("bogus").is_err());
        assert!(Band::parse("ratio:-1").is_err());
    }

    #[test]
    fn exit_codes_are_pinned() {
        let none = BTreeMap::new();
        let base = doc(
            "fleet",
            &[("kills_i2", 5.0), ("fleet_sessions_per_sec", 40.0)],
        );

        // 0: deterministic metric identical, wall-clock metric drifted.
        let ok = doc(
            "fleet",
            &[("kills_i2", 5.0), ("fleet_sessions_per_sec", 99.0)],
        );
        let (code, out) = diff_exit_code(&base, &ok, &none);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("verdict: ok"));

        // 1: deterministic metric drifted.
        let drift = doc(
            "fleet",
            &[("kills_i2", 6.0), ("fleet_sessions_per_sec", 40.0)],
        );
        let (code, out) = diff_exit_code(&base, &drift, &none);
        assert_eq!(code, 1, "{out}");
        assert!(
            out.contains("REGRESSED kills_i2") || out.contains("REGRESSED"),
            "{out}"
        );

        // 1: metric dropped from the candidate.
        let dropped = doc("fleet", &[("fleet_sessions_per_sec", 40.0)]);
        assert_eq!(diff_exit_code(&base, &dropped, &none).0, 1);

        // 0: extra candidate metrics are reported, not regressions.
        let grown = doc(
            "fleet",
            &[
                ("kills_i2", 5.0),
                ("fleet_sessions_per_sec", 40.0),
                ("alerts_i2", 7.0),
            ],
        );
        let (code, out) = diff_exit_code(&base, &grown, &none);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("new in candidate"));

        // 2: unparseable candidate or bench-name mismatch.
        assert_eq!(diff_exit_code(&base, "not json", &none).0, 2);
        let other = doc("throughput", &[("kills_i2", 5.0)]);
        assert_eq!(diff_exit_code(&base, &other, &none).0, 2);
    }

    #[test]
    fn overrides_replace_default_bands() {
        let base = doc("throughput", &[("sessions_per_sec", 100.0)]);
        let cand = doc("throughput", &[("sessions_per_sec", 80.0)]);
        let mut bands = BTreeMap::new();
        bands.insert("sessions_per_sec".to_string(), Band::Ratio(0.1));
        // Default Any would pass; the tightened ratio band fails.
        assert_eq!(diff_exit_code(&base, &cand, &BTreeMap::new()).0, 0);
        assert_eq!(diff_exit_code(&base, &cand, &bands).0, 1);
        bands.insert("sessions_per_sec".to_string(), Band::Ratio(0.5));
        assert_eq!(diff_exit_code(&base, &cand, &bands).0, 0);
    }
}
