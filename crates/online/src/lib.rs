//! # wm-online — the streaming White Mirror attacker
//!
//! The offline attack ([`wm_core`]) assumes the eavesdropper captures
//! a whole session to disk, then decodes at leisure. The more
//! threatening attacker decodes *while the victim watches*: verdicts
//! land seconds after each choice, and a crashed attacker process
//! resumes mid-film without losing the session. This crate is that
//! attacker:
//!
//! * [`engine::OnlineDecoder`] — consumes captured frames one at a
//!   time, reassembles TLS records incrementally across interleaved
//!   flows, classifies state reports on the fly and emits per-choice
//!   [`engine::OnlineVerdict`]s (same confidence arithmetic and
//!   provenance tiers as the offline pipeline) the moment each choice
//!   becomes decidable. Memory is bounded by configuration, not by
//!   session length.
//! * [`ingest::FlowIngest`] — per-flow streaming reassembly under hard
//!   byte budgets, tolerant of reordering, truncation, duplicates and
//!   mid-session tap attach.
//! * [`checkpoint`] — compact, versioned, byte-deterministic decoder
//!   snapshots on a configurable record cadence;
//!   [`engine::OnlineDecoder::resume_from_checkpoint`] restores one
//!   after a process kill with zero duplicated verdicts and explicit
//!   loss-window reporting for anything dropped in between.
//! * [`bounded`] — the capacity-enforcing containers everything above
//!   is built from (a wm-lint rule forbids unbounded buffering in the
//!   ingest paths).
//!
//! On a clean, in-order capture the online verdict stream is
//! byte-for-byte the offline greedy decode (`wm_core::ChoiceDecoder` +
//! `build_provenance`); the equivalence is enforced by tests. Under
//! impairment the two may diverge only around the impaired spans,
//! which the decoder reports as loss windows.

pub mod bounded;
pub mod checkpoint;
pub mod engine;
pub mod ingest;
pub mod shard;

pub use checkpoint::{
    config_from_value, config_value, graph_fingerprint, verdict_from_value, verdict_value,
    CheckpointError, CHECKPOINT_VERSION,
};
pub use engine::{OnlineConfig, OnlineDecoder, OnlineStats, OnlineVerdict};
pub use ingest::{
    ExtractedRecord, FlowIngest, GapEvent, IngestLimits, IngestLimitsError, IngestStats,
};
pub use shard::{decode_sessions_sharded, replay_session, CapturedPacket, SessionDecode};
