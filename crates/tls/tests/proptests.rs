//! Property-based tests for the record layer.
//!
//! Hand-rolled: the offline build environment has no proptest, so each
//! property runs over a few hundred cases drawn from a local splitmix64
//! driver. Failures print the case number for replay.

use wm_tls::conn::{RecordEngine, SessionKeys};
use wm_tls::observer::RecordObserver;
use wm_tls::record::{ContentType, MAX_FRAGMENT, RECORD_HEADER_LEN};
use wm_tls::suite::CipherSuite;

/// Minimal splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len + 1);
        (0..len).map(|_| self.next() as u8).collect()
    }
    fn array<const N: usize>(&mut self) -> [u8; N] {
        let mut a = [0u8; N];
        for b in &mut a {
            *b = self.next() as u8;
        }
        a
    }
    fn suite(&mut self) -> CipherSuite {
        if self.below(2) == 0 {
            CipherSuite::Aead
        } else {
            CipherSuite::Cbc
        }
    }
}

fn keys(master: [u8; 32], suite: CipherSuite) -> SessionKeys {
    SessionKeys::derive(&master, suite)
}

/// Any payload sequence round-trips client → server, in order,
/// under both suites and arbitrary TCP-like re-chunking.
#[test]
fn stream_roundtrip() {
    for case in 0..150u64 {
        let mut rng = Rng(0x715_0000 + case);
        let k = keys(rng.array(), rng.suite());
        let n_payloads = 1 + rng.below(7);
        let payloads: Vec<Vec<u8>> = (0..n_payloads).map(|_| rng.bytes(511)).collect();
        let chunk = 1 + rng.below(699);
        let mut client = RecordEngine::client(&k);
        let mut server = RecordEngine::server(&k);
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend(client.seal_payload(ContentType::ApplicationData, p));
        }
        let mut received: Vec<Vec<u8>> = Vec::new();
        for piece in wire.chunks(chunk) {
            server.feed(piece);
            for (_, plain) in server.drain_records().expect("authentic") {
                received.push(plain);
            }
        }
        // Empty-payload records still arrive as empty messages.
        assert_eq!(received, payloads, "case {case}");
    }
}

/// The observer recovers exactly the record lengths the sender
/// produced, without keys, for any payload sizes and re-chunking.
#[test]
fn observer_sees_exact_lengths() {
    for case in 0..150u64 {
        let mut rng = Rng(0x715_1000 + case);
        let suite = rng.suite();
        let k = keys(rng.array(), suite);
        let n_sizes = 1 + rng.below(9);
        let sizes: Vec<usize> = (0..n_sizes).map(|_| rng.below(3000)).collect();
        let chunk = 1 + rng.below(899);
        let mut client = RecordEngine::client(&k);
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for &s in &sizes {
            expected.push(suite.ciphertext_len(s) as u16);
            wire.extend(client.seal_payload(ContentType::ApplicationData, &vec![0xaa; s]));
        }
        let mut obs = RecordObserver::new();
        let mut seen = Vec::new();
        for piece in wire.chunks(chunk) {
            seen.extend(obs.feed(piece).into_iter().map(|r| r.length));
        }
        assert!(!obs.is_desynced(), "case {case}");
        assert_eq!(seen, expected, "case {case}");
    }
}

/// Suite length arithmetic brackets the plaintext length for any
/// size (AEAD exactly; CBC within one block).
#[test]
fn suite_inverse_sound() {
    for case in 0..400u64 {
        let mut rng = Rng(0x715_2000 + case);
        let suite = rng.suite();
        let len = rng.below(20_000).min(MAX_FRAGMENT);
        let ct = suite.ciphertext_len(len);
        let (lo, hi) = suite
            .plaintext_len_range(ct)
            .expect("valid ciphertext length");
        assert!(
            lo <= len && len <= hi,
            "case {case}: {len} not in [{lo}, {hi}]"
        );
    }
}

/// Oversized payloads fragment into ≤ 2^14 plaintext records that
/// reassemble exactly.
#[test]
fn fragmentation_reassembles() {
    for case in 0..30u64 {
        let mut rng = Rng(0x715_3000 + case);
        let k = keys(rng.array(), CipherSuite::Aead);
        let extra = rng.below(5000);
        let mut client = RecordEngine::client(&k);
        let mut server = RecordEngine::server(&k);
        let payload = vec![0x42u8; MAX_FRAGMENT + extra];
        let wire = client.seal_payload(ContentType::ApplicationData, &payload);
        server.feed(&wire);
        let records = server.drain_records().expect("authentic");
        assert_eq!(records.len(), if extra == 0 { 1 } else { 2 }, "case {case}");
        let total: Vec<u8> = records.into_iter().flat_map(|(_, p)| p).collect();
        assert_eq!(total, payload, "case {case}");
    }
}

/// Corrupting any wire byte of a record makes the receiver reject
/// it (header corruption may desync instead — also an error).
#[test]
fn any_corruption_detected() {
    for case in 0..300u64 {
        let mut rng = Rng(0x715_4000 + case);
        let k = keys(rng.array(), rng.suite());
        let len = 1 + rng.below(299);
        let mut client = RecordEngine::client(&k);
        let mut server = RecordEngine::server(&k);
        let mut wire = client.seal_payload(ContentType::ApplicationData, &vec![7u8; len]);
        let i = rng.below(wire.len());
        wire[i] ^= 0x20;
        server.feed(&wire);
        // Either the record header desyncs, the body fails auth, or —
        // if the corrupted length field now describes a longer record —
        // the engine keeps waiting (no plaintext released).
        if let Ok(records) = server.drain_records() {
            assert!(records.is_empty(), "case {case}: corrupted record released");
        }
    }
}

/// Record headers on the wire always carry the protocol version and
/// a length consistent with the body (structural wire invariant).
#[test]
fn wire_structure() {
    for case in 0..200u64 {
        let mut rng = Rng(0x715_5000 + case);
        let k = keys(rng.array(), rng.suite());
        let len = rng.below(2000);
        let mut client = RecordEngine::client(&k);
        let wire = client.seal_payload(ContentType::ApplicationData, &vec![1u8; len]);
        assert_eq!(wire[0], 23, "case {case}"); // application_data
        assert_eq!((wire[1], wire[2]), (3, 3), "case {case}");
        let l = u16::from_be_bytes([wire[3], wire[4]]) as usize;
        assert_eq!(wire.len(), RECORD_HEADER_LEN + l, "case {case}");
    }
}

/// Fill a reused buffer's full capacity with a poison byte, then clear
/// it: stale poison stays in the spare capacity where a hygiene bug in
/// the `*_into` paths could resurface it.
fn poison(buf: &mut Vec<u8>, byte: u8) {
    buf.resize(buf.capacity().max(32), byte);
    for b in buf.iter_mut() {
        *b = byte;
    }
    buf.clear();
}

/// Buffer-reuse hygiene: sealing into a poisoned, reused wire buffer
/// and opening into a poisoned, reused plaintext buffer reproduces a
/// fresh-allocation engine pair byte for byte — across both suites,
/// payloads spanning the fragmentation boundary, and random delivery
/// chunking. A stale byte surviving reuse diverges from the oracle
/// (or fails authentication) immediately.
#[test]
fn reused_buffers_match_fresh_allocation_oracle() {
    const POISON: u8 = 0x5a;
    for case in 0..120u64 {
        let mut rng = Rng(0x9e_0000 + case);
        let k = keys(rng.array(), rng.suite());
        let mut client_reuse = RecordEngine::client(&k);
        let mut server_reuse = RecordEngine::server(&k);
        let mut client_fresh = RecordEngine::client(&k);
        let mut server_fresh = RecordEngine::server(&k);
        let mut wire = Vec::new();
        let mut plain = Vec::new();
        for round in 0..(1 + rng.below(8)) {
            // Up to 1.5 fragments, so some payloads split in two.
            let payload = rng.bytes(MAX_FRAGMENT + MAX_FRAGMENT / 2);
            poison(&mut wire, POISON);
            client_reuse.seal_payload_into(ContentType::ApplicationData, &payload, &mut wire);
            let oracle_wire = client_fresh.seal_payload(ContentType::ApplicationData, &payload);
            assert_eq!(
                wire, oracle_wire,
                "case {case} round {round}: wire diverged"
            );

            let chunk = 1 + rng.below(oracle_wire.len().max(1));
            for piece in oracle_wire.chunks(chunk) {
                server_reuse.feed(piece);
                server_fresh.feed(piece);
            }
            loop {
                poison(&mut plain, POISON);
                let got = server_reuse
                    .next_record_into(&mut plain)
                    .expect("reuse path opens");
                let oracle = server_fresh.next_record().expect("oracle opens");
                match (got, oracle) {
                    (Some(ct), Some((oracle_ct, oracle_plain))) => {
                        assert_eq!(ct, oracle_ct, "case {case} round {round}");
                        assert_eq!(
                            plain, oracle_plain,
                            "case {case} round {round}: plaintext diverged"
                        );
                    }
                    (None, None) => break,
                    other => panic!("case {case} round {round}: availability diverged: {other:?}"),
                }
            }
        }
    }
}
