//! Property tests for checkpoint/resume determinism (hand-rolled
//! deterministic sweeps — the harness carries no external property-test
//! dependency, so the "any boundary" quantifier is made exhaustive
//! instead of sampled).
//!
//! The property under test: for *every* packet boundary `i`, feeding
//! packets `0..i`, checkpointing, resuming from the blob, and feeding
//! packets `i..` yields the exact verdict stream (byte-equal choices
//! *and* provenance) of an uninterrupted decode of the same capture.

use std::sync::Arc;

use wm_capture::time::{Duration, SimTime};
use wm_chaos::{impair_capture, CaptureImpairment, TapPacket};
use wm_core::{IntervalClassifier, WhiteMirrorConfig};
use wm_online::{OnlineConfig, OnlineDecoder, OnlineVerdict};
use wm_sim::{run_session, SessionConfig, SessionOutput};
use wm_story::bandersnatch::tiny_film;
use wm_story::{Choice, ViewerScript};

const TS: u32 = 20;

fn session(seed: u64, choices: &[Choice]) -> SessionOutput {
    let graph = Arc::new(tiny_film());
    let script = ViewerScript::from_choices(choices, Duration::from_millis(900));
    run_session(&SessionConfig::fast(graph, seed, script)).unwrap()
}

fn trained_classifier() -> IntervalClassifier {
    let train = session(
        100,
        &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
    );
    IntervalClassifier::train(&train.labels, WhiteMirrorConfig::DEFAULT_SLACK).unwrap()
}

fn tap_packets(out: &SessionOutput) -> Vec<TapPacket> {
    out.trace
        .packets
        .iter()
        .map(|p| (p.time.micros(), p.frame.clone()))
        .collect()
}

fn feed(dec: &mut OnlineDecoder, packets: &[TapPacket]) -> Vec<OnlineVerdict> {
    let mut out = Vec::new();
    for (t, frame) in packets {
        out.extend(dec.push_packet(SimTime(*t), frame));
    }
    out
}

fn uninterrupted(
    clf: &IntervalClassifier,
    graph: &Arc<wm_story::StoryGraph>,
    cfg: &OnlineConfig,
    packets: &[TapPacket],
) -> Vec<OnlineVerdict> {
    let mut dec = OnlineDecoder::new(clf.clone(), graph.clone(), cfg.clone());
    let mut out = feed(&mut dec, packets);
    out.extend(dec.finish());
    out
}

/// Cut the stream at packet boundary `cut`, checkpoint, resume, feed
/// the rest; returns the concatenated verdict stream.
fn cut_and_resume(
    clf: &IntervalClassifier,
    graph: &Arc<wm_story::StoryGraph>,
    cfg: &OnlineConfig,
    packets: &[TapPacket],
    cut: usize,
) -> Vec<OnlineVerdict> {
    let mut first = OnlineDecoder::new(clf.clone(), graph.clone(), cfg.clone());
    let mut out = feed(&mut first, &packets[..cut]);
    let blob = first.checkpoint();
    drop(first);
    let mut second =
        OnlineDecoder::resume_from_checkpoint(&blob, graph.clone()).expect("resume at {cut}");
    out.extend(feed(&mut second, &packets[cut..]));
    out.extend(second.finish());
    out
}

#[test]
fn resume_at_every_record_boundary_matches_uninterrupted_decode() {
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let cfg = OnlineConfig::scaled(TS);
    for (seed, picks) in [
        (
            900u64,
            [Choice::Default, Choice::NonDefault, Choice::Default],
        ),
        (
            901,
            [Choice::NonDefault, Choice::Default, Choice::NonDefault],
        ),
        (902, [Choice::Default, Choice::Default, Choice::NonDefault]),
    ] {
        let out = session(seed, &picks);
        let packets = tap_packets(&out);
        let baseline = uninterrupted(&clf, &graph, &cfg, &packets);
        assert!(!baseline.is_empty(), "seed {seed} decoded nothing");

        // Every packet boundary where at least one new TLS record was
        // finalized is a record boundary; sweep them all (plus the
        // trivial boundaries 1 and n-1).
        let mut probe = OnlineDecoder::new(clf.clone(), graph.clone(), cfg.clone());
        let mut boundaries = vec![1, packets.len().saturating_sub(1)];
        let mut seen_records = 0;
        for (i, (t, frame)) in packets.iter().enumerate() {
            probe.push_packet(SimTime(*t), frame);
            let now = probe.stats().records;
            if now > seen_records {
                seen_records = now;
                boundaries.push(i + 1);
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        boundaries.retain(|&b| b > 0 && b < packets.len());

        for &cut in &boundaries {
            let got = cut_and_resume(&clf, &graph, &cfg, &packets, cut);
            assert_eq!(
                got, baseline,
                "seed {seed}: resume at packet boundary {cut} diverged"
            );
        }
    }
}

#[test]
fn restored_state_checkpoints_byte_identically() {
    // Determinism of the snapshot itself: checkpoint the original
    // decoder twice, resume a copy from the first blob and checkpoint
    // it — the resumed decoder's blob must be byte-identical to the
    // original's second blob (the `resumes` counter is deliberately
    // not serialized).
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let cfg = OnlineConfig::scaled(TS);
    let out = session(
        910,
        &[Choice::NonDefault, Choice::NonDefault, Choice::Default],
    );
    let packets = tap_packets(&out);

    for cut in (1..packets.len()).step_by(7) {
        let mut original = OnlineDecoder::new(clf.clone(), graph.clone(), cfg.clone());
        feed(&mut original, &packets[..cut]);
        let blob = original.checkpoint();
        let blob_again = original.checkpoint();

        let mut resumed = OnlineDecoder::resume_from_checkpoint(&blob, graph.clone()).unwrap();
        let blob_resumed = resumed.checkpoint();
        assert_eq!(
            blob_again, blob_resumed,
            "restored state at boundary {cut} re-checkpoints differently"
        );
    }
}

#[test]
fn resume_under_capture_impairment_is_still_lossless() {
    // The full-replay resume property holds for *impaired* captures
    // too: whatever the tap mangled, cutting and resuming must not add
    // divergence beyond it.
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let cfg = OnlineConfig::scaled(TS);
    let out = session(
        920,
        &[Choice::Default, Choice::NonDefault, Choice::NonDefault],
    );
    let clean = tap_packets(&out);
    for (seed, intensity) in [(11u64, 0.5), (12, 1.0), (13, 2.0)] {
        let imp = CaptureImpairment::at_intensity(intensity);
        let (packets, _) = impair_capture(seed, &imp, &clean);
        let baseline = uninterrupted(&clf, &graph, &cfg, &packets);
        for cut in (1..packets.len()).step_by(11) {
            let got = cut_and_resume(&clf, &graph, &cfg, &packets, cut);
            assert_eq!(
                got, baseline,
                "impairment {intensity} seed {seed}: cut {cut} diverged"
            );
        }
    }
}

#[test]
fn checkpoint_truncated_at_every_byte_is_rejected_cleanly() {
    // Torn-write model: the checkpoint file stops at an arbitrary byte.
    // The quantifier "truncated at ANY boundary" is exhaustive — every
    // proper prefix of a real mid-stream checkpoint must be rejected
    // with a typed error (a JSON document only completes at its final
    // byte, so no proper prefix can restore), must never panic, and
    // after falling back to the intact blob the verdict stream must be
    // exactly the uninterrupted one: nothing lost, nothing duplicated.
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let cfg = OnlineConfig::scaled(TS);
    let out = session(
        930,
        &[Choice::NonDefault, Choice::NonDefault, Choice::Default],
    );
    let packets = tap_packets(&out);
    let baseline = uninterrupted(&clf, &graph, &cfg, &packets);
    let cut = packets.len() / 2;

    let mut first = OnlineDecoder::new(clf.clone(), graph.clone(), cfg.clone());
    let mut verdicts = feed(&mut first, &packets[..cut]);
    let blob = first.checkpoint();
    drop(first);

    for torn in 0..blob.len() {
        match OnlineDecoder::resume_from_checkpoint(&blob[..torn], graph.clone()) {
            Ok(_) => panic!(
                "truncation at byte {torn}/{} restored a decoder",
                blob.len()
            ),
            Err(wm_online::CheckpointError::Syntax { offset, near }) => {
                assert!(
                    offset <= torn,
                    "reported offset {offset} past the {torn}-byte blob"
                );
                assert!(!near.is_empty(), "Syntax error must name a field context");
            }
            // Rarely a prefix is *parseable* JSON (e.g. cut after a
            // closing brace of a nested value is still invalid at the
            // top level, but defensive decoding may classify it as a
            // missing field). Any typed rejection is acceptable; only
            // a successful restore or a panic is a bug.
            Err(_) => {}
        }
    }

    // The supervisor's fallback path: the last intact blob restores
    // and the tail replays to exactly the uninterrupted stream.
    let mut second =
        OnlineDecoder::resume_from_checkpoint(&blob, graph.clone()).expect("intact blob restores");
    verdicts.extend(feed(&mut second, &packets[cut..]));
    verdicts.extend(second.finish());
    assert_eq!(
        verdicts, baseline,
        "fallback resume lost or duplicated verdicts"
    );
    for (i, v) in verdicts.iter().enumerate() {
        assert_eq!(v.index, i as u64, "verdict indices must be contiguous");
    }
}

#[test]
fn ingest_limits_reject_zero_and_contradictory_budgets() {
    use wm_online::{IngestLimits, IngestLimitsError};
    assert!(IngestLimits::default().validate().is_ok());
    assert!(IngestLimits::new(96 * 1024, 64 * 1024, 64, 256).is_ok());
    assert_eq!(
        IngestLimits::new(0, 64, 4, 16).err(),
        Some(IngestLimitsError::ZeroBudget("max_carry_bytes"))
    );
    assert!(matches!(
        IngestLimits::new(3, 64, 4, 16).err(),
        Some(IngestLimitsError::CarryTooSmall { .. })
    ));
    assert_eq!(
        IngestLimits::new(4096, 64, 4, 0).err(),
        Some(IngestLimitsError::ZeroBudget("max_marks"))
    );
    assert!(matches!(
        IngestLimits::new(4096, 64, 0, 16).err(),
        Some(IngestLimitsError::ContradictoryParking { .. })
    ));
    assert!(matches!(
        IngestLimits::new(4096, 0, 4, 16).err(),
        Some(IngestLimitsError::ContradictoryParking { .. })
    ));
    // Parking disabled entirely is a policy, not a contradiction.
    assert!(IngestLimits::new(4096, 0, 0, 16).is_ok());
    // The shared bound is monotone in every budget.
    let a = IngestLimits::default().per_flow_state_bound();
    let b = IngestLimits::new(128 * 1024, 64 * 1024, 64, 256)
        .unwrap()
        .per_flow_state_bound();
    assert!(b > a);
}
