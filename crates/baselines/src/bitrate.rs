//! Bitrate fingerprinting (Reed & Kranch style) as a choice decoder.
//!
//! The original attack identifies *which title* is playing by matching
//! observed bitrates against a database. Transplanted to the
//! intra-video problem it becomes: learn the mean downstream volume
//! after each branch of each choice point, then classify a victim
//! window by the nearer mean. Because both branches of one title
//! stream on the same ladder, the class-conditional distributions
//! overlap almost completely and accuracy sits near the majority floor.

use crate::features::{downstream_bytes_in, LabeledWindow};
use std::collections::BTreeMap;
use wm_capture::tap::Trace;
use wm_capture::time::{Duration, SimTime};
use wm_story::{Choice, ChoicePointId};

/// Per-(choice point, branch) running mean of downstream volume.
#[derive(Debug, Clone, Default)]
struct Mean {
    sum: f64,
    n: u64,
}

impl Mean {
    fn push(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    fn get(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }
}

/// The bitrate-profile baseline.
#[derive(Debug, Clone, Default)]
pub struct BitrateBaseline {
    window: Duration,
    means: BTreeMap<(ChoicePointId, usize), Mean>,
    majority: MajorityBaseline,
}

impl BitrateBaseline {
    /// Train from labelled sessions; `window` is the post-question span
    /// measured (scaled like the capture).
    pub fn train(sessions: &[(&Trace, &[LabeledWindow])], window: Duration) -> Self {
        let mut b = BitrateBaseline {
            window,
            ..Default::default()
        };
        for (trace, windows) in sessions {
            for w in *windows {
                let bytes = downstream_bytes_in(trace, w.question_time, window) as f64;
                b.means
                    .entry((w.cp, w.choice.index()))
                    .or_default()
                    .push(bytes);
                b.majority.observe(w.choice);
            }
        }
        b
    }

    /// Decode one victim session given its question times.
    pub fn decode(&self, trace: &Trace, questions: &[(ChoicePointId, SimTime)]) -> Vec<Choice> {
        questions
            .iter()
            .map(|(cp, t)| {
                let observed = downstream_bytes_in(trace, *t, self.window) as f64;
                let d = |choice: Choice| -> Option<f64> {
                    self.means
                        .get(&(*cp, choice.index()))
                        .and_then(Mean::get)
                        .map(|m| (m - observed).abs())
                };
                match (d(Choice::Default), d(Choice::NonDefault)) {
                    (Some(dd), Some(dn)) if dn < dd => Choice::NonDefault,
                    (Some(_), Some(_)) | (Some(_), None) => Choice::Default,
                    (None, Some(_)) => Choice::NonDefault,
                    (None, None) => self.majority.predict(),
                }
            })
            .collect()
    }

    pub fn name(&self) -> &'static str {
        "bitrate-profile"
    }
}

/// The prior-only floor: always predict the training majority class.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityBaseline {
    defaults: u64,
    non_defaults: u64,
}

impl MajorityBaseline {
    pub fn observe(&mut self, choice: Choice) {
        match choice {
            Choice::Default => self.defaults += 1,
            Choice::NonDefault => self.non_defaults += 1,
        }
    }

    pub fn predict(&self) -> Choice {
        if self.non_defaults > self.defaults {
            Choice::NonDefault
        } else {
            Choice::Default
        }
    }

    pub fn name(&self) -> &'static str {
        "majority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_floor() {
        let mut m = MajorityBaseline::default();
        for _ in 0..6 {
            m.observe(Choice::Default);
        }
        for _ in 0..4 {
            m.observe(Choice::NonDefault);
        }
        assert_eq!(m.predict(), Choice::Default);
    }

    #[test]
    fn untrained_cells_fall_back() {
        let b = BitrateBaseline::train(&[], Duration::from_secs(1));
        let picks = b.decode(&Trace::new(), &[(ChoicePointId(0), SimTime::ZERO)]);
        assert_eq!(picks, vec![Choice::Default]);
    }
}
