//! Tentpole acceptance tests for fleet elasticity: byte-determinism
//! of the merged verdict stream across resize schedules on fault-free
//! input, bounded-loss/zero-dup under intensity-2 chaos including
//! `ProcessAbort`, the consistent-hash minimal-movement invariant for
//! `N→M→N` resize paths, and the process-shard backend surviving a
//! real `kill -9` without the supervisor exiting.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use wm_capture::time::{Duration, SimTime};
use wm_chaos::{ShardFaultKind, ShardFaultPlan};
use wm_core::{IntervalClassifier, WhiteMirrorConfig};
use wm_fleet::{
    merge_taps, victim_key, Fleet, FleetConfig, FleetReport, HashRing, ResizeSchedule,
    ShardBackend, TapPacket,
};
use wm_online::OnlineVerdict;
use wm_sim::{run_session, SessionConfig, SessionOutput};
use wm_story::bandersnatch::tiny_film;
use wm_story::{Choice, ViewerScript};

const TS: u32 = 20;

fn session(seed: u64, choices: &[Choice]) -> SessionOutput {
    let graph = Arc::new(tiny_film());
    let script = ViewerScript::from_choices(choices, Duration::from_millis(900));
    run_session(&SessionConfig::fast(graph, seed, script)).unwrap()
}

fn trained_classifier() -> IntervalClassifier {
    let train = session(
        100,
        &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
    );
    IntervalClassifier::train(&train.labels, WhiteMirrorConfig::DEFAULT_SLACK).unwrap()
}

const PICKS: [[Choice; 3]; 4] = [
    [Choice::Default, Choice::NonDefault, Choice::Default],
    [Choice::NonDefault, Choice::NonDefault, Choice::NonDefault],
    [Choice::Default, Choice::Default, Choice::Default],
    [Choice::NonDefault, Choice::Default, Choice::NonDefault],
];

fn victim_stream(victims: u32) -> Vec<TapPacket> {
    let mut taps = Vec::new();
    for v in 0..victims {
        let out = session(300 + v as u64, &PICKS[v as usize % PICKS.len()]);
        let offset = v as u64 * 2_000_000;
        taps.push(
            out.trace
                .packets
                .iter()
                .map(|p| (SimTime(p.time.micros() + offset), v, p.frame.clone()))
                .collect::<Vec<TapPacket>>(),
        );
    }
    merge_taps(&taps)
}

fn fleet_cfg(shards: usize) -> FleetConfig {
    let mut cfg = FleetConfig::scaled(shards, TS);
    // Keep idle eviction out of the determinism comparisons: where a
    // victim sits when an eviction sweep fires is exactly what a
    // resize perturbs, and an evicted-then-resumed victim legitimately
    // re-finishes. The soak exercises eviction.
    cfg.victim_idle = Duration::from_secs_f64(1e6);
    cfg
}

fn process_cfg(shards: usize) -> FleetConfig {
    let mut cfg = fleet_cfg(shards);
    cfg.backend = ShardBackend::Process {
        worker: Some(PathBuf::from(env!("CARGO_BIN_EXE_shard_worker"))),
    };
    cfg
}

fn run_fleet(
    cfg: FleetConfig,
    stream: &[TapPacket],
    plan: Option<&ShardFaultPlan>,
    resize: Option<&ResizeSchedule>,
) -> FleetReport {
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let mut fleet = Fleet::new(cfg, clf, graph).unwrap();
    if let Some(plan) = plan {
        fleet.inject(plan);
    }
    if let Some(schedule) = resize {
        fleet.schedule_resize(schedule);
    }
    for (t, v, frame) in stream {
        fleet.push(*t, *v, frame);
    }
    fleet.finish()
}

fn by_victim(report: &FleetReport) -> BTreeMap<u32, Vec<OnlineVerdict>> {
    let mut map: BTreeMap<u32, Vec<OnlineVerdict>> = BTreeMap::new();
    for (v, verdict) in &report.verdicts {
        map.entry(*v).or_default().push(verdict.clone());
    }
    map
}

/// Same dedup invariants the recovery suite pins, over the merged
/// stream of an elastic run.
fn assert_zero_duplicates(report: &FleetReport) {
    for (victim, verdicts) in by_victim(report) {
        let mut record_hw: Option<usize> = None;
        let mut blind_hw: Option<u64> = None;
        let mut seen_cp = std::collections::BTreeSet::new();
        for v in &verdicts {
            match v.provenance.records.iter().map(|r| r.index).max() {
                Some(cited) => {
                    if let Some(hw) = record_hw {
                        assert!(
                            cited > hw,
                            "victim {victim}: delivered verdict re-cites record {cited} <= {hw}"
                        );
                    }
                    record_hw = Some(cited);
                }
                None => {
                    if let Some(hw) = blind_hw {
                        assert!(
                            v.index > hw,
                            "victim {victim}: blind verdict index {} replayed",
                            v.index
                        );
                    }
                    blind_hw = Some(v.index);
                }
            }
            assert!(
                seen_cp.insert((v.choice.cp, v.choice.time.micros())),
                "victim {victim}: duplicate verdict for {:?} at {}",
                v.choice.cp,
                v.choice.time.micros()
            );
        }
    }
}

#[test]
fn merged_verdicts_are_byte_identical_across_resize_schedules() {
    const VICTIMS: u32 = 6;
    let stream = victim_stream(VICTIMS);
    let end = stream.last().unwrap().0.micros();

    let schedules = [
        // Grow, then shrink below the starting count.
        ResizeSchedule::new(vec![(SimTime(end / 3), 6), (SimTime(end * 2 / 3), 3)]).unwrap(),
        // Shrink hard, then grow past the starting count: every victim
        // on the removed shards migrates twice.
        ResizeSchedule::new(vec![(SimTime(end / 4), 1), (SimTime(end / 2), 5)]).unwrap(),
    ];

    let baseline = run_fleet(fleet_cfg(4), &stream, None, None);
    assert!(baseline.loss_windows.is_empty());
    assert!(baseline.migrations.is_empty());

    for (i, schedule) in schedules.iter().enumerate() {
        let report = run_fleet(fleet_cfg(4), &stream, None, Some(schedule));
        assert_eq!(
            report.stats.resizes,
            schedule.len() as u64,
            "schedule {i}: every step must fire"
        );
        assert!(
            report.stats.victims_migrated > 0,
            "schedule {i}: resizing a populated fleet must migrate victims"
        );
        assert!(
            report.migrations.iter().all(|m| m.lossless()),
            "schedule {i}: fault-free migrations must drain live state"
        );
        assert!(
            report.loss_windows.is_empty(),
            "schedule {i}: fault-free resize reported loss: {:?}",
            report.loss_windows
        );
        assert_eq!(report.stats.packets_lost, 0, "schedule {i}");
        assert_eq!(report.stats.migrate_failures, 0, "schedule {i}");
        // The contract itself: the merged verdict stream is
        // byte-identical to the static fleet's.
        assert_eq!(
            baseline.verdicts, report.verdicts,
            "schedule {i} changed the merged verdict stream"
        );
        // And rerunning the same schedule reproduces it bit-for-bit,
        // pool-parallel migration included.
        let again = run_fleet(fleet_cfg(4), &stream, None, Some(schedule));
        assert_eq!(report.verdicts, again.verdicts);
        assert_eq!(report.migrations, again.migrations, "schedule {i}");
    }
}

#[test]
fn resize_under_intensity_two_chaos_bounds_loss_and_never_duplicates() {
    const VICTIMS: u32 = 4;
    let stream = victim_stream(VICTIMS);
    let end = stream.last().unwrap().0.micros();
    let horizon = Duration::from_micros(end);
    let plan = ShardFaultPlan::generate_with_aborts(0xE14, 2.0, 4, horizon);
    assert!(!plan.is_empty());
    assert!(
        plan.count(|k| *k == ShardFaultKind::ProcessAbort) > 0,
        "the acceptance plan must include ProcessAbort faults"
    );
    let schedule =
        ResizeSchedule::new(vec![(SimTime(end * 2 / 5), 2), (SimTime(end * 7 / 10), 5)]).unwrap();

    let chaotic = run_fleet(fleet_cfg(4), &stream, Some(&plan), Some(&schedule));
    assert!(chaotic.stats.kills >= 1, "plan must exercise the kill path");
    assert_eq!(chaotic.stats.resizes, 2);
    assert_zero_duplicates(&chaotic);

    // Determinism: the same chaotic elastic run reproduces exactly.
    let again = run_fleet(fleet_cfg(4), &stream, Some(&plan), Some(&schedule));
    assert_eq!(chaotic.verdicts, again.verdicts);
    assert_eq!(chaotic.loss_windows, again.loss_windows);
    assert_eq!(chaotic.migrations, again.migrations);
    assert_eq!(chaotic.stats, again.stats);

    // Bounded loss: every divergence from the fault-free static run
    // sits inside a reported loss window or a reported (possibly
    // lossy) migration window for that victim — the windows are the
    // contract that nothing vanishes unaccounted.
    let clean = run_fleet(fleet_cfg(4), &stream, None, None);
    let clean_by = by_victim(&clean);
    let chaotic_by = by_victim(&chaotic);
    let margin = {
        let wcfg = Duration::from_secs_f64(10.0 / TS as f64);
        Duration(wcfg.micros() * 4)
    };
    let in_window = |victim: u32, t: SimTime| {
        let covers = |from: SimTime, to: SimTime| {
            t.micros() + margin.micros() >= from.micros()
                && t.micros() <= to.micros() + margin.micros()
        };
        chaotic
            .loss_windows
            .iter()
            .any(|w| w.victim == victim && covers(w.from, w.to))
            || chaotic
                .migrations
                .iter()
                .any(|m| m.victim == victim && !m.lossless() && covers(m.from, m.to))
    };
    for v in 0..VICTIMS {
        let clean_v = clean_by.get(&v).cloned().unwrap_or_default();
        let chaotic_v = chaotic_by.get(&v).cloned().unwrap_or_default();
        for c in &clean_v {
            if !chaotic_v.iter().any(|f| f.choice == c.choice) {
                assert!(
                    in_window(v, c.choice.time),
                    "victim {v}: lost verdict at {} µs outside every reported window",
                    c.choice.time.micros()
                );
            }
        }
        for f in &chaotic_v {
            if !clean_v.iter().any(|c| c.choice == f.choice) {
                assert!(
                    in_window(v, f.choice.time),
                    "victim {v}: novel verdict at {} µs outside every reported window",
                    f.choice.time.micros()
                );
            }
        }
    }
}

/// Proptest-style sweep of the consistent-hash minimal-movement
/// invariant: for random victim sets and any `N→M→N` resize path,
/// ownership returns to the original assignment (the ring is a pure
/// function of `(seed, count)`), and each step migrates at most
/// `ceil(victims * |M−N| / max(N, M))` victims plus virtual-node
/// variance — a modulo scheme would move nearly all of them.
#[test]
fn ring_ownership_returns_after_n_m_n_and_per_step_movement_is_minimal() {
    let vnodes = 32usize;
    let cases: &[(u64, usize, usize, u32)] = &[
        (0xA0, 4, 5, 96),
        (0xA1, 5, 4, 128),
        (0xA2, 2, 3, 64),
        (0xA3, 8, 9, 200),
        (0xA4, 3, 2, 80),
        (0xA5, 6, 7, 144),
        (0xA6, 9, 8, 256),
        (0xA7, 7, 6, 112),
    ];
    for &(seed, n, m, victims) in cases {
        let ring_n = HashRing::new(seed, n, vnodes);
        let ring_m = HashRing::new(seed, m, vnodes);
        let ring_back = HashRing::new(seed, n, vnodes);
        // Random victim set: seed-scoped keys, offset so different
        // cases don't reuse the same victim ids.
        let ids: Vec<u32> = (0..victims)
            .map(|i| i * 37 + (seed as u32) * 1_000)
            .collect();
        let mut moved_out = 0u32;
        let mut moved_back = 0u32;
        for &v in &ids {
            let k = victim_key(seed, v);
            let own_n = ring_n.shard_of(k);
            let own_m = ring_m.shard_of(k);
            let own_back = ring_back.shard_of(k);
            assert_eq!(
                own_n, own_back,
                "seed {seed:#x}: N→M→N must return victim {v} to its original shard"
            );
            if own_n != own_m {
                moved_out += 1;
            }
            if own_m != own_back {
                moved_back += 1;
            }
        }
        // Minimal movement per step: the ideal is |M−N|/max(N,M) of
        // the victims; virtual-node arc variance earns a 2× allowance,
        // still far below the ~(1 − 1/N) a modulo reshard would move.
        let delta = n.abs_diff(m) as u32;
        let bound = 2 * (victims * delta).div_ceil(n.max(m) as u32) + 1;
        assert!(
            moved_out <= bound,
            "seed {seed:#x}: {n}→{m} moved {moved_out}/{victims} victims, bound {bound}"
        );
        assert!(
            moved_back <= bound,
            "seed {seed:#x}: {m}→{n} moved {moved_back}/{victims} victims, bound {bound}"
        );
        assert!(
            moved_out == moved_back,
            "the two steps cross the same arc boundary set"
        );
    }
}

#[test]
fn process_backend_matches_in_process_fleet_byte_for_byte() {
    const VICTIMS: u32 = 3;
    let stream = victim_stream(VICTIMS);
    let in_proc = run_fleet(fleet_cfg(2), &stream, None, None);
    let proc = run_fleet(process_cfg(2), &stream, None, None);
    assert!(proc.loss_windows.is_empty());
    assert_eq!(proc.stats.packets_lost, 0);
    assert_eq!(
        in_proc.verdicts, proc.verdicts,
        "child-process shards must reproduce the in-process stream"
    );
}

#[test]
fn process_abort_respawns_from_last_checkpoint_and_supervisor_survives() {
    const VICTIMS: u32 = 3;
    let stream = victim_stream(VICTIMS);
    let end = stream.last().unwrap().0.micros();
    let horizon = Duration::from_micros(end);
    let plan = ShardFaultPlan::generate_with_aborts(0xAB07, 2.0, 2, horizon);
    assert!(plan.count(|k| *k == ShardFaultKind::ProcessAbort) > 0);

    // The supervisor absorbs every abort (a real SIGKILL of the child)
    // and finishes the stream: reaching the report at all is the
    // "never exits" half of the contract.
    let report = run_fleet(process_cfg(2), &stream, Some(&plan), None);
    assert!(report.stats.kills >= 1);
    assert!(
        report.stats.process_respawns >= 1,
        "an aborted process shard must be respawned from its blob"
    );
    assert!(
        report.recovery.iter().any(|r| r.respawns >= 1),
        "recovery attribution must name the respawned shard"
    );
    assert_zero_duplicates(&report);

    // Determinism holds for the process backend too: the worker is
    // driven purely by supervisor-ordered exchanges.
    let again = run_fleet(process_cfg(2), &stream, Some(&plan), None);
    assert_eq!(report.verdicts, again.verdicts);
    assert_eq!(report.loss_windows, again.loss_windows);
}

#[test]
fn external_kill_nine_of_a_worker_is_absorbed_mid_stream() {
    const VICTIMS: u32 = 2;
    let stream = victim_stream(VICTIMS);
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let mut fleet = Fleet::new(process_cfg(1), clf, graph).unwrap();

    let pids = fleet.worker_pids();
    assert_eq!(pids.len(), 1, "one process-backed shard expected");
    let (_, pid) = pids[0];

    let half = stream.len() / 2;
    for (t, v, frame) in &stream[..half] {
        fleet.push(*t, *v, frame);
    }
    // A genuine SIGKILL from outside the supervisor — exactly what a
    // segfaulting shard looks like from the parent's side.
    let status = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -9 {pid} failed");
    // SIGKILL delivery is immediate, but give the kernel a beat to
    // tear down the child's pipe ends so the next exchange sees EPIPE
    // instead of racing the teardown.
    std::thread::sleep(std::time::Duration::from_millis(100));

    for (t, v, frame) in &stream[half..] {
        fleet.push(*t, *v, frame);
    }
    let report = fleet.finish();
    assert!(
        report.stats.kills >= 1,
        "the dead child must surface as an absorbed kill"
    );
    assert!(
        report.stats.process_respawns >= 1,
        "the shard must come back as a fresh child process"
    );
    assert!(
        !report.verdicts.is_empty(),
        "decode must continue after the respawn"
    );
    assert_zero_duplicates(&report);
}
