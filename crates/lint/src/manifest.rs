//! Minimal `Cargo.toml` reader.
//!
//! `wm-lint` only needs three facts per manifest: the package name, the
//! declared `[dependencies]`, and the declared `[dev-dependencies]`.
//! Cargo's manifests in this workspace are plain (no multi-line arrays
//! in dependency sections), so a line-oriented scan is sufficient and
//! keeps the tool std-only.

/// One declared dependency with the line it appears on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    pub name: String,
    pub line: u32,
}

/// The subset of a manifest the lint cares about.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    /// `package.name`, empty if absent (e.g. the virtual workspace root).
    pub name: String,
    /// Keys of `[dependencies]` (and `[dependencies.<x>]` tables).
    pub dependencies: Vec<Dep>,
    /// Keys of `[dev-dependencies]`. Kept separate because dev-deps are
    /// exempt from layering: tests may legitimately simulate a victim.
    pub dev_dependencies: Vec<Dep>,
    /// Keys of `[build-dependencies]`, held to the same layering rules
    /// as normal dependencies (build scripts shape shipped bytes).
    pub build_dependencies: Vec<Dep>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Package,
    Deps,
    DevDeps,
    BuildDeps,
    Other,
}

/// Parse a manifest. Total: unknown syntax is skipped, not an error.
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = Section::Other;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']').trim();
            section = match header {
                "package" => Section::Package,
                "dependencies" => Section::Deps,
                "dev-dependencies" => Section::DevDeps,
                "build-dependencies" => Section::BuildDeps,
                _ => {
                    // `[dependencies.foo]` style tables declare one dep.
                    if let Some(dep) = header.strip_prefix("dependencies.") {
                        m.dependencies.push(Dep {
                            name: unquote(dep),
                            line: line_no,
                        });
                    } else if let Some(dep) = header.strip_prefix("dev-dependencies.") {
                        m.dev_dependencies.push(Dep {
                            name: unquote(dep),
                            line: line_no,
                        });
                    } else if let Some(dep) = header.strip_prefix("build-dependencies.") {
                        m.build_dependencies.push(Dep {
                            name: unquote(dep),
                            line: line_no,
                        });
                    }
                    Section::Other
                }
            };
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line.get(..eq).unwrap_or_default().trim();
        let val = line.get(eq + 1..).unwrap_or_default().trim();
        match section {
            Section::Package if key == "name" => {
                m.name = unquote(val);
            }
            Section::Deps | Section::DevDeps | Section::BuildDeps => {
                // `wm-json.workspace = true` → key is `wm-json.workspace`;
                // strip at the first dot. Quoted keys are unquoted first.
                let bare = unquote(key);
                let name = bare.split('.').next().unwrap_or_default().to_string();
                if name.is_empty() {
                    continue;
                }
                let dep = Dep {
                    name,
                    line: line_no,
                };
                match section {
                    Section::Deps => m.dependencies.push(dep),
                    Section::DevDeps => m.dev_dependencies.push(dep),
                    Section::BuildDeps => m.build_dependencies.push(dep),
                    _ => {}
                }
            }
            _ => {}
        }
    }
    m
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "wm-core"
version.workspace = true

[dependencies]
wm-telemetry.workspace = true
wm-json.workspace = true
wm-capture = { path = "../capture" }

[dependencies.wm-story]
path = "../story"

[dev-dependencies]
wm-sim.workspace = true

[features]
default = []
"#;

    fn names(deps: &[Dep]) -> Vec<&str> {
        deps.iter().map(|d| d.name.as_str()).collect()
    }

    #[test]
    fn reads_package_name() {
        assert_eq!(parse(SAMPLE).name, "wm-core");
    }

    #[test]
    fn collects_dependencies_in_both_styles() {
        let m = parse(SAMPLE);
        assert_eq!(
            names(&m.dependencies),
            ["wm-telemetry", "wm-json", "wm-capture", "wm-story"]
        );
    }

    #[test]
    fn dev_dependencies_are_separate() {
        let m = parse(SAMPLE);
        assert_eq!(names(&m.dev_dependencies), ["wm-sim"]);
        assert!(m.build_dependencies.is_empty());
    }

    #[test]
    fn feature_keys_are_not_deps() {
        let m = parse(SAMPLE);
        assert!(!names(&m.dependencies).contains(&"default"));
    }

    #[test]
    fn dep_lines_are_recorded() {
        let m = parse("[dependencies]\nwm-tls.workspace = true\n");
        assert_eq!(m.dependencies[0].line, 2);
    }
}
