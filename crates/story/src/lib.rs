//! # wm-story — interactive film model and the Bandersnatch graph
//!
//! *Black Mirror: Bandersnatch* is a branching film: playback proceeds
//! through **segments**; some segments end at a **choice point** where
//! the viewer picks one of two on-screen options within ten seconds, and
//! the option determines the next segment. Netflix treats one option of
//! every pair as the **default**: the player prefetches the default
//! branch while the timer runs, which is precisely the asymmetry the
//! White Mirror side-channel exploits (a non-default pick forces an
//! extra state report and a prefetch cancellation).
//!
//! This crate models that structure:
//!
//! * [`model`] — segments, choice points, options, semantic tags;
//! * [`graph`] — the validated story graph and traversal;
//! * [`path`] — choice sequences, path walks, and sampling;
//! * [`bandersnatch`] — a Bandersnatch-scale instance reconstructed from
//!   the film's publicly documented branch structure (segment names are
//!   descriptive, not script text). The paper treats the graph as public
//!   knowledge available to the attacker, and so do we.

pub mod bandersnatch;
pub mod graph;
pub mod model;
pub mod path;
pub mod script;

pub use graph::{GraphError, StoryGraph};
pub use model::{
    Choice, ChoiceOption, ChoicePoint, ChoicePointId, ChoiceTag, Segment, SegmentEnd, SegmentId,
};
pub use path::{sample_path, ChoiceSequence, PathWalk};
pub use script::{ScriptEntry, ViewerScript};
