//! `wm` — the White Mirror command-line tool.
//!
//! ```text
//! wm info
//!     Print the reconstructed Bandersnatch structure.
//!
//! wm simulate --seed N [--out FILE.pcap] [--os ubuntu|windows|macos]
//!             [--browser firefox|chrome] [--conn wired|wireless]
//!             [--tod morning|noon|night] [--defense none|split:MAX|
//!             compress|pad:SIZE|pad+dummies:SIZE] [--p-default P]
//!     Run one viewing session, print the ground truth, optionally
//!     save the capture as a pcap.
//!
//! wm attack --pcap FILE.pcap [--train-seed N]... [--model FILE.json]
//!           [--save-model FILE.json] [--os ...] [...]
//!     Train on controlled sessions (same platform/conditions flags) —
//!     or reload a saved model — then decode the viewer's choices from
//!     the capture and print the analyst report.
//!
//! wm dataset --n N --seed S --out DIR
//!     Generate and save a synthetic IITM-Bandersnatch dataset.
//! ```
//!
//! Everything is deterministic; sessions run at 20× playback with media
//! bytes scaled 512× (see DESIGN.md).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use white_mirror::behavior::BehaviorAttributes;
use white_mirror::capture::Trace;
use white_mirror::core::session_report;
use white_mirror::dataset::{run_dataset, save_dataset, DatasetSpec};
use white_mirror::net::rng::SimRng;
use white_mirror::player::{Browser, DeviceForm, Os};
use white_mirror::prelude::*;
use white_mirror::story::SegmentEnd;

const TIME_SCALE: u32 = 20;
const MEDIA_SCALE: u32 = 512;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", USAGE);
        return ExitCode::FAILURE;
    };
    let flags = Flags::parse(&args[1..]);
    let result = match command.as_str() {
        "info" => cmd_info(),
        "simulate" => cmd_simulate(&flags),
        "attack" => cmd_attack(&flags),
        "dataset" => cmd_dataset(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wm: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: wm <info|simulate|attack|dataset> [flags]
  wm info
  wm simulate --seed N [--out FILE.pcap] [--os X] [--browser X] [--conn X] [--tod X] [--defense X] [--p-default P]
  wm attack --pcap FILE.pcap [--train-seed N ...] [--model F] [--save-model F] [--os X] [--browser X] [--conn X] [--tod X]
  wm dataset [--n N] [--seed S] [--out DIR]";

/// Minimal `--key value` flag parser (repeatable keys collect).
struct Flags {
    entries: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut entries = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                let value = args.get(i + 1).cloned().unwrap_or_default();
                entries.push((key.to_string(), value));
                i += 2;
            } else {
                i += 1;
            }
        }
        Flags { entries }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

fn parse_profile(flags: &Flags) -> Result<Profile, String> {
    let os = match flags.get("os").unwrap_or("ubuntu") {
        "ubuntu" | "linux" => Os::Ubuntu,
        "windows" => Os::Windows,
        "macos" | "mac" => Os::MacOs,
        other => return Err(format!("unknown --os {other:?}")),
    };
    let browser = match flags.get("browser").unwrap_or("firefox") {
        "firefox" => Browser::Firefox,
        "chrome" => Browser::Chrome,
        other => return Err(format!("unknown --browser {other:?}")),
    };
    Ok(Profile::new(os, browser, DeviceForm::Desktop))
}

fn parse_conditions(flags: &Flags) -> Result<LinkConditions, String> {
    let conn = match flags.get("conn").unwrap_or("wired") {
        "wired" | "ethernet" => ConnectionType::Wired,
        "wireless" | "wifi" => ConnectionType::Wireless,
        other => return Err(format!("unknown --conn {other:?}")),
    };
    let tod = match flags.get("tod").unwrap_or("morning") {
        "morning" => TimeOfDay::Morning,
        "noon" => TimeOfDay::Noon,
        "night" => TimeOfDay::Night,
        other => return Err(format!("unknown --tod {other:?}")),
    };
    Ok(LinkConditions::new(conn, tod))
}

fn parse_defense(flags: &Flags) -> Result<Defense, String> {
    let spec = flags.get("defense").unwrap_or("none");
    let parse_size = |s: &str, what: &str| -> Result<usize, String> {
        s.parse().map_err(|_| format!("bad {what} size {s:?}"))
    };
    Ok(match spec {
        "none" => Defense::None,
        "compress" => Defense::Compress,
        s if s.starts_with("split:") => Defense::Split {
            max: parse_size(&s[6..], "split")?,
        },
        s if s.starts_with("pad+dummies:") => Defense::PadWithDummies {
            size: parse_size(&s[12..], "pad")?,
        },
        s if s.starts_with("pad:") => Defense::PadToConstant {
            size: parse_size(&s[4..], "pad")?,
        },
        other => return Err(format!("unknown --defense {other:?}")),
    })
}

fn build_config(flags: &Flags, seed: u64) -> Result<SessionConfig, String> {
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let p_default: f64 = flags
        .get("p-default")
        .map(|v| v.parse().map_err(|_| format!("bad --p-default {v:?}")))
        .transpose()?
        .unwrap_or(0.5);
    // Behaviour-driven script seeded per session.
    let mut rng = SimRng::new(seed ^ 0xbeef);
    let behavior = BehaviorAttributes::sample(&mut rng);
    let script = if flags.get("p-default").is_some() {
        ViewerScript::sample(seed, 20, p_default)
    } else {
        white_mirror::behavior::script_for(&graph, &behavior, seed)
    };
    let mut cfg = SessionConfig::baseline(graph, seed, script);
    cfg.profile = parse_profile(flags)?;
    cfg.conditions = parse_conditions(flags)?;
    cfg.defense = parse_defense(flags)?;
    cfg.media_scale = MEDIA_SCALE;
    cfg.player.time_scale = TIME_SCALE;
    Ok(cfg)
}

fn cmd_info() -> Result<(), String> {
    let graph = story::bandersnatch::bandersnatch();
    println!("{}", graph.title());
    println!(
        "{} segments, {} choice points, {} endings, up to {} decisions per viewing\n",
        graph.segments().len(),
        graph.choice_points().len(),
        graph.endings().len(),
        graph.max_choices_on_path()
    );
    println!("choice points (default option first):");
    for cp in graph.choice_points() {
        println!(
            "  Q{:<3} {:<46} [{} | {}]",
            cp.id.0 + 1,
            cp.question,
            cp.options[0].label,
            cp.options[1].label
        );
    }
    println!("\nendings:");
    for id in graph.endings() {
        println!("  {}", graph.segment(id).name);
    }
    let linear: u32 = {
        // Longest possible viewing in content time.
        fn depth(
            g: &StoryGraph,
            id: white_mirror::story::SegmentId,
            memo: &mut Vec<Option<u32>>,
        ) -> u32 {
            if let Some(d) = memo[id.0 as usize] {
                return d;
            }
            let s = g.segment(id);
            let d = s.duration_secs
                + match s.end {
                    SegmentEnd::Ending => 0,
                    SegmentEnd::Continue(n) => depth(g, n, memo),
                    SegmentEnd::Choice(cp) => {
                        let cp = g.choice_point(cp);
                        depth(g, cp.options[0].target, memo).max(depth(
                            g,
                            cp.options[1].target,
                            memo,
                        ))
                    }
                };
            memo[id.0 as usize] = Some(d);
            d
        }
        let mut memo = vec![None; graph.segments().len()];
        depth(&graph, graph.start(), &mut memo)
    };
    println!("\nlongest viewing: {} min of content", linear / 60);
    Ok(())
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let seed: u64 = flags
        .get("seed")
        .ok_or("simulate requires --seed N")?
        .parse()
        .map_err(|_| "bad --seed")?;
    let cfg = build_config(flags, seed)?;
    let graph = cfg.graph.clone();
    let out = run_session(&cfg).map_err(|e| format!("session failed: {e}"))?;
    let summary = out.trace.summary();
    println!(
        "session complete: {} packets ({} up / {} down), {:.1} MiB down, {} choices, defense {}",
        summary.packets,
        summary.upstream_packets,
        summary.downstream_packets,
        summary.downstream_payload_bytes as f64 / (1024.0 * 1024.0),
        out.decisions.len(),
        cfg.defense.label()
    );
    println!("ground truth: {}", out.choice_string());
    for (cp, choice) in &out.decisions {
        let q = graph.choice_point(*cp);
        println!("  {:<46} -> {}", q.question, q.option(*choice).label);
    }
    if let Some(path) = flags.get("out") {
        out.trace
            .write_pcap_file(&PathBuf::from(path))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("capture written to {path}");
    }
    Ok(())
}

fn cmd_attack(flags: &Flags) -> Result<(), String> {
    let pcap = flags.get("pcap").ok_or("attack requires --pcap FILE")?;
    let trace =
        Trace::read_pcap_file(&PathBuf::from(pcap)).map_err(|e| format!("reading {pcap}: {e}"))?;
    let attack = if let Some(model) = flags.get("model") {
        WhiteMirror::load_model(&PathBuf::from(model), WhiteMirrorConfig::scaled(TIME_SCALE))
            .map_err(|e| format!("loading model {model}: {e}"))?
    } else {
        let train_seeds: Vec<u64> = {
            let given = flags.get_all("train-seed");
            if given.is_empty() {
                vec![424_242, 424_243]
            } else {
                given
                    .iter()
                    .map(|s| s.parse().map_err(|_| format!("bad --train-seed {s:?}")))
                    .collect::<Result<_, String>>()?
            }
        };
        let mut labels = Vec::new();
        for seed in train_seeds {
            let cfg = build_config(flags, seed)?;
            labels.extend(
                run_session(&cfg)
                    .map_err(|e| format!("training session failed: {e}"))?
                    .labels,
            );
        }
        WhiteMirror::train(&labels, WhiteMirrorConfig::scaled(TIME_SCALE))
            .ok_or("training sessions produced no state reports")?
    };
    if let Some(path) = flags.get("save-model") {
        attack
            .save_model(&PathBuf::from(path))
            .map_err(|e| format!("saving model {path}: {e}"))?;
        println!("model saved to {path}");
    }
    println!(
        "trained: type-1 band {:?}, type-2 band {:?}\n",
        attack.classifier().type1,
        attack.classifier().type2
    );
    let graph = story::bandersnatch::bandersnatch();
    let decoded = attack.decode_trace(&trace, &graph);
    print!("{}", session_report(&graph, &decoded));
    Ok(())
}

fn cmd_dataset(flags: &Flags) -> Result<(), String> {
    let n: usize = flags
        .get("n")
        .unwrap_or("20")
        .parse()
        .map_err(|_| "bad --n")?;
    let seed: u64 = flags
        .get("seed")
        .unwrap_or("2019")
        .parse()
        .map_err(|_| "bad --seed")?;
    let out = PathBuf::from(flags.get("out").unwrap_or("iitm-bandersnatch-synth"));
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let spec = DatasetSpec::generate("IITM-Bandersnatch-synthetic", n, seed);
    println!("{}", spec.table1());
    let opts = white_mirror::dataset::SimOptions {
        media_scale: MEDIA_SCALE,
        time_scale: TIME_SCALE,
        ..Default::default()
    };
    let records = run_dataset(&graph, &spec, &opts);
    save_dataset(&out, &spec.name, &records).map_err(|e| format!("saving: {e}"))?;
    println!("saved {} traces to {}", records.len(), out.display());
    Ok(())
}
