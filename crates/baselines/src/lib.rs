//! # wm-baselines — prior-work techniques, re-implemented
//!
//! §II of the paper argues that existing encrypted-video fingerprinting
//! cannot read *intra-video* choices: "inter-video features cannot be
//! used to differentiate between segments from the same video", because
//! every branch of one title streams on the same bitrate ladder. This
//! crate makes that argument executable by re-implementing the prior
//! techniques' feature sets as *choice decoders* and measuring them on
//! the same captures White Mirror reads:
//!
//! * [`bitrate::BitrateBaseline`] — Reed–Kranch-style bitrate
//!   fingerprinting: mean downstream throughput in the window after
//!   each question;
//! * [`burst::BurstKnnBaseline`] — "Beauty and the Burst"-style burst
//!   vectors: per-sub-window downstream byte counts, k-NN matched;
//! * [`bitrate::MajorityBaseline`] — the prior-free floor (always
//!   predict the majority class).
//!
//! The baselines are deliberately *over*-provisioned: they receive the
//! ground-truth question times for free (White Mirror has to find them
//! itself). They still hover near the majority floor, which is the
//! paper's point. Silhouette-style ADU features (Li et al.) identify
//! video *flows*, not intra-flow branches, and degenerate to the same
//! downstream-volume features `burst` already covers — see DESIGN.md.

pub mod bitrate;
pub mod burst;
pub mod features;

pub use bitrate::{BitrateBaseline, MajorityBaseline};
pub use burst::BurstKnnBaseline;
pub use features::{downstream_bytes_in, LabeledWindow};
