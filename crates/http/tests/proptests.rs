//! Property-based tests for HTTP framing.
//!
//! Hand-rolled: the offline build environment has no proptest, so each
//! property runs over a few hundred cases drawn from a local splitmix64
//! driver. Failures print the case number for replay.

use wm_http::{ParseError, Request, RequestParser, Response, ResponseParser};

/// Minimal splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len + 1);
        (0..len).map(|_| self.next() as u8).collect()
    }
    fn pick_char(&mut self, pool: &[u8]) -> char {
        pool[self.below(pool.len())] as char
    }
    /// `[A-Za-z][A-Za-z0-9-]{0,15}` — a header-name token.
    fn token(&mut self) -> String {
        const FIRST: &[u8] = b"ABCXYZabcxyz";
        const REST: &[u8] = b"ABCXYZabcxyz019-";
        let mut s = String::new();
        s.push(self.pick_char(FIRST));
        for _ in 0..self.below(16) {
            s.push(self.pick_char(REST));
        }
        s
    }
    /// Printable-ASCII header value without `:` or CR/LF, trimmed.
    fn header_value(&mut self) -> String {
        let len = self.below(41);
        let s: String = (0..len)
            .map(|_| {
                let c = (0x20 + self.below(0x5f)) as u8 as char;
                if c == ':' {
                    ';'
                } else {
                    c
                }
            })
            .collect();
        s.trim().to_string()
    }
}

/// Requests round-trip through the parser for any method, path,
/// headers and body, under any feed chunking.
#[test]
fn request_roundtrip() {
    const PATH_POOL: &[u8] = b"abcxyz019/._-";
    for case in 0..200u64 {
        let mut rng = Rng(0x47_0000 + case);
        let method = ["GET", "POST", "PUT"][rng.below(3)];
        let mut path = String::from("/");
        for _ in 0..rng.below(31) {
            path.push(rng.pick_char(PATH_POOL));
        }
        let n_headers = rng.below(6);
        let headers: Vec<(String, String)> = (0..n_headers)
            .map(|_| (rng.token(), rng.header_value()))
            .collect();
        let body = rng.bytes(799);
        let chunk = 1 + rng.below(255);
        // Content-Length is parser-internal; exclude colliding names.
        let mut req = Request::new(method, &path);
        for (n, v) in &headers {
            if n.eq_ignore_ascii_case("content-length") {
                continue;
            }
            req = req.header(n, v);
        }
        let req = req.body(body);
        assert_eq!(req.to_bytes().len(), req.serialized_len(), "case {case}");
        let bytes = req.to_bytes();
        let mut parser = RequestParser::new();
        let mut got = Vec::new();
        for piece in bytes.chunks(chunk) {
            got.extend(parser.feed(piece).expect("own request"));
        }
        assert_eq!(got, vec![req], "case {case}");
    }
}

/// Responses round-trip likewise.
#[test]
fn response_roundtrip() {
    const REASON_POOL: &[u8] = b"ABCXYZabcxyz ";
    for case in 0..200u64 {
        let mut rng = Rng(0x47_1000 + case);
        let status = 100 + rng.below(500) as u16;
        let reason: String = (0..rng.below(17))
            .map(|_| rng.pick_char(REASON_POOL))
            .collect();
        let body = rng.bytes(799);
        let chunk = 1 + rng.below(255);
        let resp = Response::new(status, reason.trim()).body(body);
        let bytes = resp.to_bytes();
        let mut parser = ResponseParser::new();
        let mut got = Vec::new();
        for piece in bytes.chunks(chunk) {
            got.extend(parser.feed(piece).expect("own response"));
        }
        assert_eq!(got.len(), 1, "case {case}");
        assert_eq!(got[0].status, resp.status, "case {case}");
        assert_eq!(&got[0].body, &resp.body, "case {case}");
    }
}

/// Pipelined request sequences parse back in order.
#[test]
fn pipelining() {
    for case in 0..150u64 {
        let mut rng = Rng(0x47_2000 + case);
        let n = 1 + rng.below(5);
        let reqs: Vec<Request> = (0..n)
            .map(|i| Request::new("POST", &format!("/r/{i}")).body(rng.bytes(99)))
            .collect();
        let wire: Vec<u8> = reqs.iter().flat_map(Request::to_bytes).collect();
        let mut parser = RequestParser::new();
        let got = parser.feed(&wire).expect("own requests");
        assert_eq!(got, reqs, "case {case}");
    }
}

/// The parser never panics on arbitrary bytes.
#[test]
fn parser_total() {
    for case in 0..300u64 {
        let mut rng = Rng(0x47_3000 + case);
        let bytes = rng.bytes(399);
        let mut p = RequestParser::new();
        let _ = p.feed(&bytes);
        let mut p = ResponseParser::new();
        let _ = p.feed(&bytes);
    }
}

/// Mutating one byte of a valid request (or truncating it) never
/// panics: the parser either produces requests, keeps waiting for more
/// input, or returns a typed error — under any feed chunking.
#[test]
fn mutated_requests_never_panic() {
    for case in 0..300u64 {
        let mut rng = Rng(0x47_4000 + case);
        let req = Request::new("POST", "/pbo/choice")
            .header("X-Netflix.esn", "NFCDIE-03-ABC")
            .body(rng.bytes(199));
        let mut bytes = req.to_bytes();
        match rng.below(3) {
            0 => {
                let at = rng.below(bytes.len());
                bytes[at] = rng.next() as u8;
            }
            1 => bytes.truncate(rng.below(bytes.len() + 1)),
            _ => {
                let at = rng.below(bytes.len());
                bytes.insert(at, rng.next() as u8);
            }
        }
        let chunk = 1 + rng.below(64);
        let mut parser = RequestParser::new();
        for piece in bytes.chunks(chunk) {
            if parser.feed(piece).is_err() {
                break; // typed error: fine, just must not panic
            }
        }
    }
}

/// Structurally malformed heads are rejected with the *right* typed
/// error, so callers can tell protocol violations apart.
#[test]
fn malformed_heads_yield_typed_errors() {
    let feed_req = |bytes: &[u8]| RequestParser::new().feed(bytes);
    let feed_resp = |bytes: &[u8]| ResponseParser::new().feed(bytes);

    assert!(matches!(
        feed_req(b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
        Err(ParseError::BadContentLength(v)) if v == "banana"
    ));
    assert!(matches!(
        feed_req(b"POST /x HTTP/1.1\r\nNoColonHere\r\n\r\n"),
        Err(ParseError::MalformedHeaderLine(_))
    ));
    assert!(matches!(
        feed_req(b"NOT-A-REQUEST-LINE\r\n\r\n"),
        Err(ParseError::MalformedRequestLine(_))
    ));
    assert!(matches!(
        feed_req(b"POST /x HTTP/1.1\r\nX: \xff\xfe\r\n\r\n"),
        Err(ParseError::NonUtf8Head)
    ));
    assert!(matches!(
        feed_resp(b"HTTP/1.1 banana OK\r\n\r\n"),
        Err(ParseError::BadStatusLine(_))
    ));
    // Errors are values: Display/Error impls must hold up.
    let err = feed_req(b"oops\r\n\r\n").expect_err("malformed");
    assert!(!err.to_string().is_empty());
    let _: &dyn std::error::Error = &err;
}
