//! Trace explorer: the flight-recorder view of one attacked session.
//!
//! ```sh
//! cargo run --release --example trace_explorer [-- --export <prefix>]
//! ```
//!
//! Runs the quickstart scenario (train on one seeded viewing, attack a
//! second) with tracing enabled, then renders:
//!
//! * the victim session's causal event tree — session → flows →
//!   handshakes, with player/server/capture/chaos instants attached;
//! * the attacker's decode span and, for every decoded choice, the
//!   provenance "why" report: which captured records produced it, at
//!   what confidence tier, and whether a capture gap sat nearby.
//!
//! With `--export <prefix>` it also writes `<prefix>.jsonl` (the
//! golden-diffable export) and `<prefix>.perfetto.json` (open in
//! <https://ui.perfetto.dev>).

use std::collections::BTreeMap;
use std::sync::Arc;
use white_mirror::prelude::*;
use white_mirror::trace::{EventKind, SpanId, TraceHandle};

/// The quickstart victim scenario, traced. Shared with the golden-trace
/// test: same graph, seeds and scales produce the same event log.
fn traced_victim(graph: &Arc<StoryGraph>) -> SessionOutput {
    let mut cfg = SessionConfig::fast(graph.clone(), 2002, ViewerScript::sample(2002, 14, 0.5));
    cfg.player.time_scale = 40;
    cfg.trace = true;
    run_session(&cfg).expect("victim session")
}

fn main() {
    let export_prefix = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--export")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let mut train_cfg =
        SessionConfig::fast(graph.clone(), 1001, ViewerScript::sample(1001, 14, 0.5));
    train_cfg.player.time_scale = 40;
    let train = run_session(&train_cfg).expect("training session");
    let mut attack = WhiteMirror::train(&train.labels, WhiteMirrorConfig::scaled(40))
        .expect("training needs report examples");

    let victim = traced_victim(&graph);
    println!(
        "victim session traced: {} events, {} packets captured\n",
        victim.trace_events.len(),
        victim.stats.packets_captured
    );

    println!("=== causal tree (victim session) ===\n");
    print!("{}", render_tree(&victim.trace_events));

    // The attacker records its own decode under a fresh root handle.
    let attack_trace = TraceHandle::new();
    attack.set_trace(attack_trace.clone(), SpanId::NONE);
    let decoded = attack.decode_trace(&victim.trace, &graph);
    let attack_events = attack_trace.drain();
    println!("\n=== causal tree (attacker decode) ===\n");
    print!("{}", render_tree(&attack_events));

    println!("\n=== per-choice provenance ===\n");
    print!("{}", decoded.why_report());
    println!("\ntruth:   {}", victim.choice_string());
    println!("decoded: {}", decoded.choice_string());

    println!("\n=== event counts ===\n");
    for (name, n) in counts_by_name(&victim.trace_events) {
        println!("  {name:<28} {n:>6}");
    }

    if let Some(prefix) = export_prefix {
        let jsonl = format!("{prefix}.jsonl");
        let perfetto = format!("{prefix}.perfetto.json");
        std::fs::write(&jsonl, export_jsonl(&victim.trace_events)).expect("write jsonl");
        std::fs::write(&perfetto, export_chrome_trace(&victim.trace_events))
            .expect("write perfetto");
        println!("\nwrote {jsonl} and {perfetto}");
    }
}

/// Render the event log as an indented causal tree: spans nest by
/// parent, instants attach to their owning span, in time order.
fn render_tree(events: &[TraceEvent]) -> String {
    // Children (starts and instants) keyed by owning span, span end
    // times keyed by span.
    let mut children: BTreeMap<u32, Vec<&TraceEvent>> = BTreeMap::new();
    let mut ends: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::SpanStart => children.entry(e.parent.0).or_default().push(e),
            EventKind::Instant => children.entry(e.span.0).or_default().push(e),
            EventKind::SpanEnd => {
                ends.insert(e.span.0, e.t_us);
            }
        }
    }
    // Tap lifecycle events are emitted at capture-assembly time with
    // historical timestamps; sort each level into time order.
    for kids in children.values_mut() {
        kids.sort_by_key(|e| (e.t_us, e.seq));
    }
    let mut out = String::new();
    render_level(&children, &ends, SpanId::NONE.0, 0, &mut out);
    out
}

fn render_level(
    children: &BTreeMap<u32, Vec<&TraceEvent>>,
    ends: &BTreeMap<u32, u64>,
    span: u32,
    depth: usize,
    out: &mut String,
) {
    let Some(kids) = children.get(&span) else {
        return;
    };
    for e in kids {
        let indent = "  ".repeat(depth);
        match e.kind {
            EventKind::SpanStart => {
                let end = ends
                    .get(&e.span.0)
                    .map_or("…".to_string(), |t| format!("{t}"));
                out.push_str(&format!(
                    "{indent}{} [span {}] t={}..{} µs\n",
                    e.name, e.span.0, e.t_us, end
                ));
                render_level(children, ends, e.span.0, depth + 1, out);
            }
            EventKind::Instant => {
                out.push_str(&format!(
                    "{indent}· {} t={} µs a={} b={}\n",
                    e.name, e.t_us, e.a, e.b
                ));
            }
            EventKind::SpanEnd => {}
        }
    }
}
