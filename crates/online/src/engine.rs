//! The streaming (online) White Mirror decoder.
//!
//! The offline attack ([`wm_core`]) decodes a finished capture in one
//! pass. [`OnlineDecoder`] runs the *same* timing model — the same
//! anchor estimate, duplicate suppression, type-1 seek slack and
//! type-2 window scan as [`wm_core::ChoiceDecoder`], with the same
//! confidence arithmetic and provenance tiers — but incrementally,
//! against packets as the tap delivers them, in memory bounded by
//! configuration rather than session length. On a clean in-order
//! capture its verdict stream is byte-for-byte the offline decode.
//!
//! The central discipline is a **watermark**: the capture time below
//! which the event stream is *final*. It trails the newest packet by
//! the reorder allowance and never passes a flow that still holds a
//! record in reassembly. Classified report events sit in a small
//! sorted pending buffer until the watermark passes them, then
//! finalize — dedup, ordering, anchor estimation — exactly once. The
//! decoder's phase machine (seek the next type-1, scan its choice
//! window, walk the graph) only commits to a verdict when the
//! watermark proves no earlier-timed evidence can still arrive, so a
//! verdict, once emitted, is never retracted.
//!
//! Crash recovery: [`OnlineDecoder::checkpoint`] serializes the whole
//! decoder — ingest carries, pending/ready events, the phase frontier,
//! classifier calibration — into a compact, versioned, byte-
//! deterministic JSON blob on a configurable record cadence, and
//! [`OnlineDecoder::resume_from_checkpoint`] restores it. Replaying
//! the packets after the checkpoint yields the uninterrupted verdict
//! stream with zero duplicates; packets lost between checkpoint and
//! restart surface as explicit loss windows ([`OnlineDecoder::loss_windows`]).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::bounded::{Batch, BoundedVec};
use crate::ingest::{ExtractedRecord, FlowIngest, GapEvent, IngestLimits};
use wm_capture::headers::{parse_frame_lossy, FlowId};
use wm_capture::time::{Duration, SimTime};
use wm_capture::{ContentType, RecordClass};
use wm_core::classify::RecordClassifier;
use wm_core::provenance::{ChoiceProvenance, ConfidenceTier, ProvenanceRecord, RecordRole};
use wm_core::{
    initial_gap_secs, min_question_gap_secs, question_gap_secs, DecodedChoice, IntervalClassifier,
    CONFIDENCE_BLIND, CONFIDENCE_INFERRED, CONFIDENCE_OBSERVED, GAP_CONFIDENCE_FACTOR, WINDOW_SECS,
};
use wm_story::{Choice, ChoicePointId, SegmentEnd, SegmentId, StoryGraph};
use wm_telemetry::{Counter, Histogram, Registry};
use wm_trace::{SpanId, TraceHandle};

/// Tunables for the online decoder. All buffers it ever grows are
/// sized by these fields, so resident memory is a constant of the
/// configuration, independent of session length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineConfig {
    /// Time scale the session plays at (1 = real time).
    pub time_scale: u32,
    /// How far the watermark trails the newest packet: the reorder
    /// window the capture path may shuffle packets within.
    pub reorder_lag: Duration,
    /// How long a reassembly hole may stall a flow before it is
    /// declared lost and decoding resumes past it.
    pub gap_patience: Duration,
    /// Checkpoint cadence, in extracted TLS records.
    pub checkpoint_every_records: u64,
    /// Concurrent upstream flows tracked (new flows drop beyond this).
    pub max_flows: usize,
    /// Classified events awaiting watermark finality.
    pub max_pending_events: usize,
    /// Finalized report events awaiting the phase machine.
    pub max_ready_events: usize,
    /// Recent application records kept for anchor provenance.
    pub max_recent_apps: usize,
    /// Capture-gap markers kept for confidence discounting.
    pub max_gap_times: usize,
    /// Loss windows retained for reporting.
    pub max_loss_windows: usize,
    /// Per-flow reassembly budgets.
    pub ingest: IngestLimits,
}

impl OnlineConfig {
    /// Real-time capture (scale 1).
    pub fn realtime() -> Self {
        Self::scaled(1)
    }

    /// Configuration for a session simulated at `time_scale`.
    pub fn scaled(time_scale: u32) -> Self {
        let ts = time_scale.max(1);
        OnlineConfig {
            time_scale: ts,
            reorder_lag: Duration::from_secs_f64(0.25 / ts as f64),
            gap_patience: Duration::from_secs_f64(0.5 / ts as f64),
            checkpoint_every_records: 64,
            max_flows: 8,
            max_pending_events: 512,
            max_ready_events: 256,
            max_recent_apps: 32,
            max_gap_times: 64,
            max_loss_windows: 64,
            ingest: IngestLimits::default(),
        }
    }

    /// Configured upper bound on [`OnlineDecoder::state_bytes`]: the
    /// per-flow reassembly budgets plus every event cap, with generous
    /// per-entry allowances. Deliberately loose — the value of the
    /// bound is that it is a *constant of the configuration* while
    /// traffic volume is unbounded. The soak suite, the kill/resume
    /// tests and the fleet supervisor all budget against this one
    /// helper instead of each deriving their own arithmetic.
    pub fn state_bound(&self) -> usize {
        let events = (self.max_pending_events
            + self.max_ready_events
            + self.max_recent_apps
            + self.max_gap_times
            + self.max_loss_windows)
            * 256;
        self.max_flows * self.ingest.per_flow_state_bound() + events + 64 * 1024
    }

    /// Check the configuration for budgets a decoder cannot run under.
    /// Today this is exactly the ingest-limit validation; event caps
    /// of zero degrade gracefully (the engine clamps to one).
    pub fn validate(&self) -> Result<(), crate::ingest::IngestLimitsError> {
        self.ingest.validate()
    }
}

/// One verdict emitted while the session plays: the decoded choice
/// plus the same provenance the offline pipeline attaches.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineVerdict {
    /// Position in the verdict stream (0-based, contiguous).
    pub index: u64,
    pub choice: DecodedChoice,
    pub provenance: ChoiceProvenance,
}

/// Engine counters (all monotonic; aggregated over all flows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineStats {
    pub packets: u64,
    pub segments: u64,
    /// Segments whose capture was snaplen-clipped (payload truncated).
    pub truncated_segments: u64,
    pub records: u64,
    pub non_app_records: u64,
    /// Classified type-1/type-2 events (pre-dedup).
    pub report_events: u64,
    pub deduped_events: u64,
    /// Records that arrived with a timestamp below the watermark.
    pub late_events: u64,
    /// Pending events finalized early because the buffer filled.
    pub pending_force_finalized: u64,
    /// Ready events evicted unconsumed because the buffer filled.
    pub ready_evictions: u64,
    pub flows: u64,
    /// Segments dropped because the flow table was full.
    pub flow_overflow_drops: u64,
    pub gaps: u64,
    pub verdicts: u64,
    pub checkpoints: u64,
    pub resumes: u64,
}

/// A classified record awaiting watermark finality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingEvent {
    pub(crate) time: SimTime,
    /// Admission order, tie-breaking equal timestamps deterministically.
    pub(crate) seq: u64,
    pub(crate) length: u16,
    pub(crate) class: RecordClass,
}

/// A finalized report event, queued for the phase machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ReadyEvent {
    pub(crate) time: SimTime,
    /// Index into the finalized application-record stream (the same
    /// numbering offline provenance cites).
    pub(crate) index: u64,
    pub(crate) length: u16,
    pub(crate) class: RecordClass,
}

/// Where the decoder stands in the story graph: the beam frontier of
/// the streaming walk (width 1 — the greedy offline path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Phase {
    /// Looking for the type-1 report of the question shown while
    /// `seg` plays.
    Seek { seg: SegmentId, cp: ChoicePointId },
    /// Question placed at `t1`; scanning its choice window for a
    /// type-2.
    Open {
        seg: SegmentId,
        cp: ChoicePointId,
        t1: SimTime,
        observed: bool,
        t1_evt: Option<ReadyEvent>,
    },
    /// The walk reached an ending.
    Done,
}

/// Durations derived from the graph and the time scale. Never
/// checkpointed: recomputed on construction and resume so the
/// checkpoint holds integers only (byte determinism).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Derived {
    pub(crate) scale: f64,
    pub(crate) dedup: Duration,
    pub(crate) slack: Duration,
    pub(crate) first_slack: Duration,
    pub(crate) window_cfg: Duration,
    pub(crate) init_gap: Duration,
}

impl Derived {
    pub(crate) fn compute(graph: &StoryGraph, time_scale: u32) -> Derived {
        let scale = time_scale.max(1) as f64;
        let min_gap = min_question_gap_secs(graph);
        let slack = Duration::from_secs_f64((min_gap / 2.0).clamp(1.0, 5.0) / scale);
        Derived {
            scale,
            dedup: Duration::from_secs_f64((min_gap / 3.0).clamp(0.5, 2.0) / scale),
            slack,
            first_slack: Duration(slack.micros() * 3),
            window_cfg: Duration::from_secs_f64(WINDOW_SECS / scale),
            init_gap: Duration::from_secs_f64(initial_gap_secs(graph) / scale),
        }
    }
}

/// Telemetry counters the engine publishes to when attached.
///
/// The hot path never touches these: per-event counts accumulate in
/// the plain-integer [`OnlineStats`] the decoder maintains anyway, and
/// [`OnlineDecoder::flush_telemetry`] publishes the delta since
/// `flushed` at deterministic boundaries (checkpoint, finish, observer
/// tick). One batch of atomic adds per flush replaces one atomic RMW
/// per packet/record, which keeps the metrics-plane overhead on the
/// decode path within the ≤ 5% budget.
struct OnlineTelemetry {
    packets: Arc<Counter>,
    records: Arc<Counter>,
    verdicts: Arc<Counter>,
    gaps: Arc<Counter>,
    late_events: Arc<Counter>,
    checkpoints: Arc<Counter>,
    resumes: Arc<Counter>,
    /// Per-checkpoint gauge: `state_bytes × 100 / state_bound` — how
    /// close the decoder sits to its configured memory ceiling.
    checkpoint_state_util_pct: Arc<Histogram>,
    /// Per-checkpoint gauge: records ingested since the previous
    /// checkpoint — staleness relative to the configured cadence.
    checkpoint_staleness_records: Arc<Histogram>,
    /// Stats already published; the next flush adds `stats - flushed`.
    flushed: OnlineStats,
}

impl OnlineTelemetry {
    fn from_registry(reg: &Registry, baseline: OnlineStats) -> Self {
        OnlineTelemetry {
            packets: reg.counter("online.packets"),
            records: reg.counter("online.records"),
            verdicts: reg.counter("online.verdicts"),
            gaps: reg.counter("online.gaps"),
            late_events: reg.counter("online.late_events"),
            checkpoints: reg.counter("online.checkpoints"),
            resumes: reg.counter("online.resumes"),
            checkpoint_state_util_pct: reg.histogram("online.checkpoint.state_util_pct"),
            checkpoint_staleness_records: reg.histogram("online.checkpoint.staleness_records"),
            flushed: baseline,
        }
    }
}

/// The streaming decoder. Feed it captured frames with
/// [`OnlineDecoder::push_packet`]; it emits [`OnlineVerdict`]s as the
/// watermark makes each choice decidable, and [`OnlineDecoder::finish`]
/// resolves whatever the end of the capture leaves open.
pub struct OnlineDecoder {
    pub(crate) cfg: OnlineConfig,
    pub(crate) graph: Arc<StoryGraph>,
    pub(crate) classifier: IntervalClassifier,
    pub(crate) derived: Derived,

    // -- clock --
    pub(crate) max_seen: SimTime,
    pub(crate) watermark: SimTime,
    pub(crate) finishing: bool,

    // -- reassembly --
    pub(crate) flows: BTreeMap<FlowId, FlowIngest>,

    // -- event stream --
    pub(crate) admit_seq: u64,
    pub(crate) pending: BoundedVec<PendingEvent>,
    pub(crate) ready: BoundedVec<ReadyEvent>,
    pub(crate) cursor: usize,
    pub(crate) app_count: u64,
    pub(crate) app_first: Option<SimTime>,
    pub(crate) app_second: Option<SimTime>,
    pub(crate) first_type1: Option<SimTime>,
    pub(crate) last_kept_t1: Option<SimTime>,
    pub(crate) last_kept_t2: Option<SimTime>,
    pub(crate) recent_apps: BoundedVec<(u64, SimTime, u16)>,
    pub(crate) gap_times: BoundedVec<SimTime>,
    pub(crate) loss_windows: BoundedVec<(SimTime, SimTime)>,

    // -- decode frontier --
    pub(crate) phase: Phase,
    pub(crate) predicted: Option<SimTime>,
    pub(crate) emitted: u64,

    // -- checkpoint cadence --
    pub(crate) records_seen: u64,
    pub(crate) records_at_checkpoint: u64,

    // -- per-call scratch: cleared on every use, never part of decoder
    //    state (checkpoints ignore it). Bounded by one push's record
    //    yield, which the ingest budgets cap.
    admit_scratch: Batch<ExtractedRecord>,
    len_scratch: Batch<u16>,
    class_scratch: Vec<RecordClass>,

    pub(crate) stats: OnlineStats,
    telemetry: Option<OnlineTelemetry>,
    trace: Option<(TraceHandle, SpanId)>,
}

/// Walk `Continue` chains from `from` to the next decision point.
pub(crate) fn phase_at(graph: &StoryGraph, from: SegmentId) -> Phase {
    let mut current = from;
    loop {
        match graph.segment(current).end {
            SegmentEnd::Ending => return Phase::Done,
            SegmentEnd::Continue(next) => current = next,
            SegmentEnd::Choice(cp) => return Phase::Seek { seg: current, cp },
        }
    }
}

impl OnlineDecoder {
    pub fn new(classifier: IntervalClassifier, graph: Arc<StoryGraph>, cfg: OnlineConfig) -> Self {
        let derived = Derived::compute(&graph, cfg.time_scale);
        let phase = phase_at(&graph, graph.start());
        OnlineDecoder {
            derived,
            phase,
            classifier,
            max_seen: SimTime::ZERO,
            watermark: SimTime::ZERO,
            finishing: false,
            flows: BTreeMap::new(),
            admit_seq: 0,
            pending: BoundedVec::new(cfg.max_pending_events),
            ready: BoundedVec::new(cfg.max_ready_events),
            cursor: 0,
            app_count: 0,
            app_first: None,
            app_second: None,
            first_type1: None,
            last_kept_t1: None,
            last_kept_t2: None,
            recent_apps: BoundedVec::new(cfg.max_recent_apps),
            gap_times: BoundedVec::new(cfg.max_gap_times),
            loss_windows: BoundedVec::new(cfg.max_loss_windows),
            predicted: None,
            emitted: 0,
            records_seen: 0,
            records_at_checkpoint: 0,
            admit_scratch: Batch::new(),
            len_scratch: Batch::new(),
            class_scratch: Vec::new(),
            stats: OnlineStats::default(),
            telemetry: None,
            trace: None,
            graph,
            cfg,
        }
    }

    /// Attach telemetry counters (`online.*`) to `registry`. Events
    /// counted before the attach stay out of the registry: the flush
    /// baseline is the stats as of this call.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(OnlineTelemetry::from_registry(registry, self.stats));
    }

    /// Publish every event counted since the last flush into the
    /// attached registry (no-op when none is). Called automatically at
    /// checkpoint and finish; supervisors observing mid-stream call it
    /// right before snapshotting so tick values are exact.
    pub fn flush_telemetry(&mut self) {
        let Some(t) = &mut self.telemetry else { return };
        let s = self.stats;
        let f = t.flushed;
        t.packets.add(s.packets.saturating_sub(f.packets));
        t.records.add(s.records.saturating_sub(f.records));
        t.verdicts.add(s.verdicts.saturating_sub(f.verdicts));
        t.gaps.add(s.gaps.saturating_sub(f.gaps));
        t.late_events
            .add(s.late_events.saturating_sub(f.late_events));
        t.checkpoints
            .add(s.checkpoints.saturating_sub(f.checkpoints));
        t.resumes.add(s.resumes.saturating_sub(f.resumes));
        t.flushed = s;
    }

    /// Attach a trace recorder; verdicts and gaps emit instants under
    /// `parent`.
    pub fn attach_trace(&mut self, handle: TraceHandle, parent: SpanId) {
        self.trace = Some((handle, parent));
    }

    pub fn config(&self) -> &OnlineConfig {
        &self.cfg
    }

    pub fn stats(&self) -> OnlineStats {
        self.stats
    }

    /// Loss windows declared so far: spans of capture time where
    /// reassembly skipped data (tap loss, impairment, or a crash gap
    /// between checkpoint and resume). Verdicts whose choice window
    /// overlaps one of these carry degraded confidence.
    pub fn loss_windows(&self) -> &[(SimTime, SimTime)] {
        self.loss_windows.as_slice()
    }

    /// The finality horizon: all evidence timed below this is decided.
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Whether the graph walk has reached an ending.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// True when the record cadence since the last checkpoint has been
    /// reached — callers own checkpoint scheduling and persistence.
    pub fn checkpoint_due(&self) -> bool {
        self.records_seen.saturating_sub(self.records_at_checkpoint)
            >= self.cfg.checkpoint_every_records.max(1)
    }

    /// Approximate resident state in bytes (buffers + fixed fields).
    /// Bounded by configuration: independent of how much traffic has
    /// been pushed.
    pub fn state_bytes(&self) -> usize {
        let flows: usize = self.flows.values().map(|f| f.state_bytes()).sum();
        flows
            + self.pending.len() * std::mem::size_of::<PendingEvent>()
            + self.ready.len() * std::mem::size_of::<ReadyEvent>()
            + self.recent_apps.len() * std::mem::size_of::<(u64, SimTime, u16)>()
            + self.gap_times.len() * std::mem::size_of::<SimTime>()
            + self.loss_windows.len() * std::mem::size_of::<(SimTime, SimTime)>()
            + std::mem::size_of::<Self>()
    }

    /// Feed one captured frame. Returns the verdicts this packet made
    /// decidable (usually none; one or more around choice windows).
    pub fn push_packet(&mut self, time: SimTime, frame: &[u8]) -> Vec<OnlineVerdict> {
        self.stats.packets = self.stats.packets.saturating_add(1);
        if time > self.max_seen {
            self.max_seen = time;
        }
        let mut recs = Batch::new();
        let mut gaps = Batch::new();
        if let Some((flow, tcp, payload, missing)) = parse_frame_lossy(frame) {
            if flow.dst_port == 443 && !payload.is_empty() {
                self.stats.segments = self.stats.segments.saturating_add(1);
                if missing > 0 {
                    self.stats.truncated_segments = self.stats.truncated_segments.saturating_add(1);
                }
                let limits = self.cfg.ingest;
                if self.flows.contains_key(&flow) || self.flows.len() < self.cfg.max_flows.max(1) {
                    let ingest = self
                        .flows
                        .entry(flow)
                        .or_insert_with(|| FlowIngest::new(limits));
                    ingest.accept_segment(time, tcp.seq, payload, &mut recs, &mut gaps);
                    self.stats.flows = self.flows.len() as u64;
                } else {
                    self.stats.flow_overflow_drops =
                        self.stats.flow_overflow_drops.saturating_add(1);
                }
            }
        }
        // Age out reassembly holes across all flows.
        let now = self.max_seen;
        let patience = self.cfg.gap_patience;
        for ingest in self.flows.values_mut() {
            ingest.flush(now, patience, &mut recs, &mut gaps);
        }
        self.note_gaps(gaps);
        self.note_records(recs);
        let mut out = Batch::new();
        self.advance(&mut out);
        out.into_vec()
    }

    /// End of capture: every outstanding hole is declared, all pending
    /// evidence finalizes, and the remaining graph walk resolves (on
    /// timing alone where the stream ran dry).
    pub fn finish(&mut self) -> Vec<OnlineVerdict> {
        let mut recs = Batch::new();
        let mut gaps = Batch::new();
        for ingest in self.flows.values_mut() {
            ingest.finish(&mut recs, &mut gaps);
        }
        self.note_gaps(gaps);
        self.note_records(recs);
        self.finishing = true;
        let mut out = Batch::new();
        self.advance(&mut out);
        self.flush_telemetry();
        out.into_vec()
    }

    // -- event admission ----------------------------------------------

    fn note_gaps(&mut self, gaps: Batch<GapEvent>) {
        for g in gaps.into_vec() {
            self.stats.gaps = self.stats.gaps.saturating_add(1);
            self.gap_times.admit_evict(g.resume_time);
            self.loss_windows.admit_evict((g.last_time, g.resume_time));
            if let Some((h, parent)) = &self.trace {
                h.instant_at(
                    g.resume_time.micros(),
                    *parent,
                    "online.gap",
                    g.last_time.micros(),
                    g.resume_time.micros(),
                );
            }
        }
    }

    fn note_records(&mut self, recs: Batch<ExtractedRecord>) {
        // Two passes: admission filtering first, then one batch
        // classification over the survivors' contiguous length array —
        // the dominant classifier runs its branch-lean kernel instead
        // of a per-record virtual call. The scratch buffers are taken
        // out of `self` for the duration to keep the borrow on the
        // pending queue disjoint.
        let mut admitted = std::mem::take(&mut self.admit_scratch);
        let mut lengths = std::mem::take(&mut self.len_scratch);
        let mut classes = std::mem::take(&mut self.class_scratch);
        admitted.clear();
        lengths.clear();
        classes.clear();
        for r in recs.into_vec() {
            self.stats.records = self.stats.records.saturating_add(1);
            self.records_seen = self.records_seen.saturating_add(1);
            if r.content_type != ContentType::ApplicationData {
                self.stats.non_app_records = self.stats.non_app_records.saturating_add(1);
                continue;
            }
            if r.time < self.watermark {
                // Finality was already declared past this timestamp;
                // admitting it would reorder decided evidence.
                self.stats.late_events = self.stats.late_events.saturating_add(1);
                continue;
            }
            admitted.put(r);
            lengths.put(r.length);
        }
        self.classifier
            .classify_lengths(lengths.as_slice(), &mut classes);
        for (r, &class) in admitted.as_slice().iter().zip(classes.iter()) {
            let ev = PendingEvent {
                time: r.time,
                seq: self.admit_seq,
                length: r.length,
                class,
            };
            self.admit_seq = self.admit_seq.saturating_add(1);
            if self.pending.len() >= self.pending.cap() {
                // Make room by finalizing the oldest early — it is the
                // next to finalize anyway; only its finality guarantee
                // is weakened, and only under pathological event rates.
                if let Some(old) = self.pending.pop_front() {
                    self.stats.pending_force_finalized =
                        self.stats.pending_force_finalized.saturating_add(1);
                    self.finalize(old);
                }
            }
            self.pending.admit_sorted_by_key(ev, |e| (e.time, e.seq));
        }
        self.admit_scratch = admitted;
        self.len_scratch = lengths;
        self.class_scratch = classes;
    }

    /// An event's timestamp became final: assign its application-record
    /// index, update the anchor estimate, dedup, and queue reports for
    /// the phase machine.
    fn finalize(&mut self, e: PendingEvent) {
        let index = self.app_count;
        self.app_count = self.app_count.saturating_add(1);
        if self.app_first.is_none() {
            self.app_first = Some(e.time);
        } else if self.app_second.is_none() {
            self.app_second = Some(e.time);
        }
        self.recent_apps.admit_evict((index, e.time, e.length));
        let prev = match e.class {
            RecordClass::Other => return,
            RecordClass::Type1 => self.last_kept_t1,
            RecordClass::Type2 => self.last_kept_t2,
        };
        self.stats.report_events = self.stats.report_events.saturating_add(1);
        // Duplicate suppression, same rule as the offline decoder:
        // a report of the same class within the dedup window of the
        // last *kept* one is a retry/duplicate, not a new event.
        if prev.is_some_and(|p| e.time.since(p) <= self.derived.dedup) {
            self.stats.deduped_events = self.stats.deduped_events.saturating_add(1);
            return;
        }
        match e.class {
            RecordClass::Type1 => self.last_kept_t1 = Some(e.time),
            RecordClass::Type2 => self.last_kept_t2 = Some(e.time),
            RecordClass::Other => {}
        }
        if e.class == RecordClass::Type1 && self.first_type1.is_none() {
            self.first_type1 = Some(e.time);
        }
        if self.ready.len() >= self.ready.cap() {
            // The phase machine is far behind the event stream; shed
            // the oldest (it is the least likely to still be wanted).
            self.ready.pop_front();
            self.cursor = self.cursor.saturating_sub(1);
            self.stats.ready_evictions = self.stats.ready_evictions.saturating_add(1);
        }
        self.ready.admit(ReadyEvent {
            time: e.time,
            index,
            length: e.length,
            class: e.class,
        });
    }

    // -- the decode loop ----------------------------------------------

    fn advance(&mut self, out: &mut Batch<OnlineVerdict>) {
        // 1. Advance the watermark: trail the newest capture time by
        //    the reorder allowance, but never pass a flow still
        //    holding bytes of an unfinished record (unless it has
        //    stalled past any plausible recovery).
        let lagged = SimTime(
            self.max_seen
                .0
                .saturating_sub(self.cfg.reorder_lag.micros()),
        );
        let mut target = lagged;
        let stall = Duration(
            self.cfg
                .gap_patience
                .micros()
                .saturating_add(self.cfg.reorder_lag.micros()),
        );
        for ingest in self.flows.values() {
            if let Some(f) = ingest.frontier() {
                if self.max_seen.since(f) <= stall {
                    target = target.min(f);
                }
            }
        }
        if target > self.watermark {
            self.watermark = target;
        }
        // 2. Finalize pending events the watermark has passed.
        while self
            .pending
            .first()
            .is_some_and(|e| self.finishing || e.time < self.watermark)
        {
            if let Some(e) = self.pending.pop_front() {
                self.finalize(e);
            }
        }
        // 3. Run the phase machine until it stops making progress.
        loop {
            let stepped = match self.phase {
                Phase::Done => false,
                Phase::Seek { seg, cp } => self.try_seek(seg, cp),
                Phase::Open {
                    seg,
                    cp,
                    t1,
                    observed,
                    t1_evt,
                } => self.try_open(seg, cp, t1, observed, t1_evt, out),
            };
            if !stepped {
                break;
            }
        }
    }

    /// Playback-anchor estimate for the first question, once decidable:
    /// the second application record plus the public opening-chain gap
    /// (identical to the offline decoder's `initial_question_time`).
    fn anchor(&self) -> Option<SimTime> {
        if let Some(a2) = self.app_second {
            if self.finishing || self.watermark > a2 {
                return Some(a2 + self.derived.init_gap);
            }
        }
        if !self.finishing {
            // A second app record may still arrive below the current
            // candidate; wait for the watermark to decide.
            return None;
        }
        if let Some(a1) = self.app_first {
            return Some(a1 + self.derived.init_gap);
        }
        // No app records at all: fall back to the first type-1, then
        // to time zero — the offline fallbacks.
        Some(self.first_type1.unwrap_or(SimTime::ZERO))
    }

    /// Seek the type-1 report of the question at `cp` near its
    /// predicted time. Returns true when the phase advanced.
    fn try_seek(&mut self, seg: SegmentId, cp: ChoicePointId) -> bool {
        let Some(anchor) = self.anchor() else {
            return false;
        };
        let slack = if self.predicted.is_none() {
            self.derived.first_slack
        } else {
            self.derived.slack
        };
        let expect = self.predicted.unwrap_or(anchor);
        let deadline = expect + slack;
        let mut found: Option<(usize, ReadyEvent)> = None;
        let mut decided = false;
        let mut probe = self.cursor;
        while let Some(&ev) = self.ready.get(probe) {
            if ev.time > deadline {
                decided = true;
                break;
            }
            if ev.class == RecordClass::Type1 && ev.time + slack >= expect {
                found = Some((probe, ev));
                decided = true;
                break;
            }
            probe += 1;
        }
        // A found report commits immediately: the ready stream is
        // final and complete below the watermark, and every future
        // event is timed at or above it. Otherwise the absence of the
        // report is only decided once the watermark clears the window.
        if !(decided || self.finishing || self.watermark > deadline) {
            return false;
        }
        let (t1, observed, t1_evt) = match found {
            Some((at, ev)) => {
                self.cursor = at + 1;
                (ev.time, true, Some(ev))
            }
            None => (expect, false, None),
        };
        self.phase = Phase::Open {
            seg,
            cp,
            t1,
            observed,
            t1_evt,
        };
        true
    }

    /// Scan the open question's choice window for a type-2 report.
    fn try_open(
        &mut self,
        seg: SegmentId,
        cp: ChoicePointId,
        t1: SimTime,
        observed: bool,
        t1_evt: Option<ReadyEvent>,
        out: &mut Batch<OnlineVerdict>,
    ) -> bool {
        let dur = self.graph.segment(seg).duration_secs as f64;
        let window = Duration::from_secs_f64(WINDOW_SECS.min(dur / 2.0) / self.derived.scale);
        let close = t1 + window;
        let mut choice: Option<Choice> = None;
        let mut t2_evt: Option<ReadyEvent> = None;
        let mut probe = self.cursor;
        while let Some(&ev) = self.ready.get(probe) {
            if ev.time > close {
                choice = Some(Choice::Default);
                break;
            }
            if ev.time >= t1 {
                match ev.class {
                    RecordClass::Type2 => {
                        choice = Some(Choice::NonDefault);
                        t2_evt = Some(ev);
                        self.cursor = probe + 1;
                        break;
                    }
                    RecordClass::Type1 => {
                        choice = Some(Choice::Default);
                        break;
                    }
                    RecordClass::Other => {}
                }
            }
            probe += 1;
        }
        let choice = match choice {
            Some(c) => c,
            // Nothing in the window yet: default only once no report
            // timed inside it can still arrive.
            None if self.finishing || self.watermark > close => Choice::Default,
            None => return false,
        };
        self.emit(out, cp, t1, observed, t1_evt, choice, t2_evt);
        // Step the graph walk and re-anchor the next prediction on
        // this question's time (offline's exact arithmetic).
        let gap = question_gap_secs(&self.graph, seg, cp, choice);
        self.predicted = Some(t1 + Duration::from_secs_f64(gap / self.derived.scale));
        let next = self.graph.choice_point(cp).option(choice).target;
        self.phase = phase_at(&self.graph, next);
        // The walk never revisits evidence at or before this question.
        let mut dropped = 0usize;
        while self.ready.first().is_some_and(|e| e.time <= t1) {
            self.ready.pop_front();
            dropped += 1;
        }
        self.cursor = self.cursor.saturating_sub(dropped);
        // Gap markers too old to overlap any future choice window.
        let wcfg = self.derived.window_cfg;
        self.gap_times.keep(|&g| g + wcfg >= t1);
        true
    }

    /// Resolve one choice: confidence arithmetic, provenance citation
    /// and emission — the online equivalent of the offline
    /// `decode_trace` + `build_provenance` pair.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        out: &mut Batch<OnlineVerdict>,
        cp: ChoicePointId,
        t1: SimTime,
        observed: bool,
        t1_evt: Option<ReadyEvent>,
        choice: Choice,
        t2_evt: Option<ReadyEvent>,
    ) {
        let wcfg = self.derived.window_cfg;
        let near_gap = self
            .gap_times
            .iter()
            .any(|&g| g + wcfg >= t1 && g <= t1 + wcfg);
        let mut confidence = if observed {
            CONFIDENCE_OBSERVED
        } else {
            CONFIDENCE_INFERRED
        };
        if near_gap {
            confidence *= GAP_CONFIDENCE_FACTOR;
        }
        let tier = if observed {
            ConfidenceTier::Observed
        } else if confidence > CONFIDENCE_BLIND {
            ConfidenceTier::Inferred
        } else {
            ConfidenceTier::Blind
        };
        let mut cited: Batch<ProvenanceRecord> = Batch::new();
        if observed {
            if let Some(ev) = t1_evt {
                cited.put(ProvenanceRecord {
                    index: ev.index as usize,
                    time: ev.time,
                    length: ev.length,
                    role: RecordRole::Type1Report,
                });
            }
        }
        if choice == Choice::NonDefault {
            if let Some(ev) = t2_evt {
                cited.put(ProvenanceRecord {
                    index: ev.index as usize,
                    time: ev.time,
                    length: ev.length,
                    role: RecordRole::Type2Report,
                });
            }
        }
        if cited.is_empty() {
            // Timing-only decision: cite the nearest application
            // record as the anchor (over the bounded recency ring —
            // identical to offline whenever the true nearest record is
            // recent, which it is on any capture dense enough to
            // decode).
            let mut best: Option<(u64, u64, SimTime, u16)> = None;
            for &(index, time, length) in self.recent_apps.iter() {
                let dist = time.micros().abs_diff(t1.micros());
                if best.is_none_or(|(d, ..)| dist < d) {
                    best = Some((dist, index, time, length));
                }
            }
            if let Some((_, index, time, length)) = best {
                cited.put(ProvenanceRecord {
                    index: index as usize,
                    time,
                    length,
                    role: RecordRole::Anchor,
                });
            }
        }
        let d = DecodedChoice {
            cp,
            choice,
            time: t1,
            observed,
            confidence,
        };
        let provenance = ChoiceProvenance {
            records: cited.into_vec(),
            tier,
            near_gap,
        };
        if let Some((h, parent)) = &self.trace {
            h.instant_at(
                t1.micros(),
                *parent,
                "online.verdict",
                cp.0 as u64,
                (((choice == Choice::NonDefault) as u64) << 8) | provenance.records.len() as u64,
            );
        }
        self.stats.verdicts = self.stats.verdicts.saturating_add(1);
        let index = self.emitted;
        self.emitted = self.emitted.saturating_add(1);
        out.put(OnlineVerdict {
            index,
            choice: d,
            provenance,
        });
    }

    // -- checkpointing ------------------------------------------------

    /// Serialize the full decoder state into a compact, versioned,
    /// byte-deterministic blob (see [`crate::checkpoint`] for the
    /// format). Resets the cadence clock.
    pub fn checkpoint(&mut self) -> Vec<u8> {
        self.record_checkpoint_gauges();
        self.records_at_checkpoint = self.records_seen;
        self.stats.checkpoints = self.stats.checkpoints.saturating_add(1);
        self.flush_telemetry();
        crate::checkpoint::encode(self)
    }

    /// Shard-scoped checkpoint: the same state as
    /// [`OnlineDecoder::checkpoint`] but as a [`wm_json::Value`], so a
    /// supervisor snapshotting a whole shard of decoders can embed
    /// each one in a single canonical JSON document instead of
    /// JSON-escaped-inside-JSON. Resets the cadence clock exactly like
    /// the byte form.
    pub fn checkpoint_value(&mut self) -> wm_json::Value {
        self.record_checkpoint_gauges();
        self.records_at_checkpoint = self.records_seen;
        self.stats.checkpoints = self.stats.checkpoints.saturating_add(1);
        self.flush_telemetry();
        crate::checkpoint::encode_value(self)
    }

    /// Health gauges observed at every checkpoint, before the cadence
    /// clock resets: state-bound utilization and records-since-last-
    /// checkpoint. Both derive from simulation state only, so they are
    /// deterministic per seed (unlike the `*_ns` timing histograms).
    fn record_checkpoint_gauges(&self) {
        let Some(t) = &self.telemetry else { return };
        let bound = self.cfg.state_bound().max(1) as u64;
        t.checkpoint_state_util_pct
            .record(self.state_bytes() as u64 * 100 / bound);
        t.checkpoint_staleness_records
            .record(self.records_seen.saturating_sub(self.records_at_checkpoint));
    }

    /// Restore a decoder from a value produced by
    /// [`OnlineDecoder::checkpoint_value`] (or by parsing checkpoint
    /// bytes out of a larger shard document).
    pub fn resume_from_value(
        value: &wm_json::Value,
        graph: Arc<StoryGraph>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        let mut decoder = crate::checkpoint::decode_value(value, graph)?;
        decoder.stats.resumes = decoder.stats.resumes.saturating_add(1);
        Ok(decoder)
    }

    /// Restore a decoder from a checkpoint taken by
    /// [`OnlineDecoder::checkpoint`]. The graph must be the one the
    /// checkpointed decoder walked (validated by fingerprint).
    /// Telemetry/trace attachments do not survive; re-attach after
    /// resuming.
    pub fn resume_from_checkpoint(
        bytes: &[u8],
        graph: Arc<StoryGraph>,
    ) -> Result<Self, crate::checkpoint::CheckpointError> {
        let mut decoder = crate::checkpoint::decode(bytes, graph)?;
        decoder.stats.resumes = decoder.stats.resumes.saturating_add(1);
        Ok(decoder)
    }
}
