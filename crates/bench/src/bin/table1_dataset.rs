//! E2 / **Table I**: attributes of the synthetic IITM-Bandersnatch
//! dataset (100 viewers).
//!
//! ```sh
//! cargo run --release -p wm-bench --bin table1_dataset
//! ```

use wm_dataset::DatasetSpec;

fn main() {
    let spec = DatasetSpec::generate("IITM-Bandersnatch-synthetic", 100, 2019);
    println!(
        "=== Table I (reproduced): attributes of the {} dataset ===\n",
        spec.name
    );
    println!("{}", spec.table1());
    println!("paper attribute domains covered:");
    println!("  OS:        Windows, Linux(Ubuntu), Mac        ✓");
    println!("  Platform:  Desktop, Laptop                    ✓");
    println!("  Traffic:   Morning, Noon, Night               ✓");
    println!("  Conn:      Wired, Wireless                    ✓");
    println!("  Browser:   Google-chrome, Firefox             ✓");
    println!("  Age:       <20, 20-25, 25-30, >30             ✓");
    println!("  Gender:    Male, Female, Undisclosed          ✓");
    println!("  Political: Liberal, Centrist, Communist, Und. ✓");
    println!("  Mind:      Happy, Stressed, Sad, Undisclosed  ✓");
    println!(
        "\n{} viewers; operational grid cells cycled so all 72 combinations occur.",
        spec.viewers.len()
    );
}
