//! E10: online decoder accuracy vs capture-impairment intensity.
//!
//! Sweeps `wm-chaos` *capture-side* impairments (reordering, snaplen
//! truncation, duplication) of growing intensity over victim sessions
//! and feeds the impaired tap stream to the streaming decoder
//! ([`wm_online::OnlineDecoder`]) packet by packet — including one
//! checkpoint/kill/resume cycle per session, so every point on the
//! curve also exercises crash recovery. Reported per intensity: choice
//! accuracy, mean verdict confidence, reported loss windows, and
//! late/dropped events. The headline claim: accuracy degrades
//! gracefully with impairment, confidence falls *first*, and no
//! intensity panics or hangs the decoder.
//!
//! ```sh
//! cargo run --release -p wm-bench --bin online_robustness [-- --smoke]
//! ```
//!
//! `--smoke` (or `WM_ONLINE_ROBUSTNESS_SMOKE=1`) shrinks the matrix
//! for CI.

use wm_bench::{
    bench_json, graph, sample_behavior, train_attack_for, validate_bench_json, viewer_cfg,
    write_bench_json, TraceTally, TIME_SCALE,
};
use wm_capture::time::SimTime;
use wm_chaos::{impair_capture, kill_index, CaptureImpairment, TapPacket};
use wm_core::{choice_accuracy, ChoiceAccuracy, DecodedChoice};
use wm_dataset::{OperationalConditions, ViewerSpec};
use wm_online::{OnlineConfig, OnlineDecoder, OnlineVerdict};
use wm_sim::run_session;
use wm_telemetry::{Registry, Snapshot};
use wm_trace::{SpanId, TraceHandle};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("WM_ONLINE_ROBUSTNESS_SMOKE").is_ok_and(|v| v == "1");
    let intensities: &[f64] = if smoke {
        &[0.0, 1.0]
    } else {
        &[0.0, 0.5, 1.0, 2.0, 4.0]
    };
    let victims: u64 = if smoke { 2 } else { 6 };

    let graph = graph();
    let cond = OperationalConditions::grid()[0];
    let (attack, _) = train_attack_for(&graph, &cond, &[70_001, 70_002, 70_003]);
    let classifier = attack.classifier().clone();

    println!("=== E10: online decoder vs capture impairment ({victims} victims/point) ===\n");
    println!(
        "{:>9} {:>10} {:>12} {:>8} {:>10} {:>8} {:>8}",
        "intensity", "accuracy", "confidence", "losses", "late-evts", "gaps", "resumes"
    );

    let mut telemetry = Snapshot::default();
    let mut tally = TraceTally::default();
    let mut metrics: Vec<(String, f64)> = Vec::new();
    for &intensity in intensities {
        let mut acc = ChoiceAccuracy::default();
        let mut conf_sum = 0.0f64;
        let mut conf_n = 0u64;
        let mut losses = 0u64;
        let mut late = 0u64;
        let mut gaps = 0u64;
        let mut resumes = 0u64;
        for v in 0..victims {
            let seed = 72_000 + v;
            let viewer = ViewerSpec {
                id: v as u32,
                seed,
                behavior: sample_behavior(seed),
                operational: cond,
            };
            let out = run_session(&viewer_cfg(&graph, &viewer)).expect("victim session");
            let clean: Vec<TapPacket> = out
                .trace
                .packets
                .iter()
                .map(|p| (p.time.micros(), p.frame.clone()))
                .collect();
            let (packets, _) = if intensity > 0.0 {
                impair_capture(seed, &CaptureImpairment::at_intensity(intensity), &clean)
            } else {
                (clean, Default::default())
            };

            // Stream the capture through the decoder, killing the
            // process at a seeded packet index and resuming from the
            // latest checkpoint with full replay of the tail.
            let registry = Registry::new();
            let trace = TraceHandle::new();
            let session_span = trace.span_start_at(0, "online.session", SpanId::NONE);
            let mut dec = OnlineDecoder::new(
                classifier.clone(),
                graph.clone(),
                OnlineConfig::scaled(TIME_SCALE),
            );
            dec.attach_telemetry(&registry);
            dec.attach_trace(trace.clone(), session_span);
            let kill = kill_index(seed, packets.len());
            let mut verdicts: Vec<OnlineVerdict> = Vec::new();
            let mut checkpoint: Option<(usize, usize, Vec<u8>)> = None;
            for (i, (t, frame)) in packets.iter().enumerate().take(kill) {
                verdicts.extend(dec.push_packet(SimTime(*t), frame));
                if dec.checkpoint_due() {
                    checkpoint = Some((i + 1, verdicts.len(), dec.checkpoint()));
                }
            }
            let mut dec = match checkpoint {
                Some((fed, delivered, blob)) => {
                    drop(dec); // the simulated crash
                    verdicts.truncate(delivered);
                    let mut resumed = OnlineDecoder::resume_from_checkpoint(&blob, graph.clone())
                        .expect("checkpoint resumes");
                    resumed.attach_telemetry(&registry);
                    resumed.attach_trace(trace.clone(), session_span);
                    for (t, frame) in &packets[fed..] {
                        verdicts.extend(resumed.push_packet(SimTime(*t), frame));
                    }
                    resumed
                }
                None => {
                    // Too few records before the kill for a checkpoint:
                    // keep the original decoder and just finish the tail.
                    for (t, frame) in &packets[kill..] {
                        verdicts.extend(dec.push_packet(SimTime(*t), frame));
                    }
                    dec
                }
            };
            verdicts.extend(dec.finish());
            trace.span_end_at(dec.watermark().micros(), session_span, "online.session");

            let choices: Vec<DecodedChoice> = verdicts.iter().map(|v| v.choice).collect();
            acc.merge(&choice_accuracy(&choices, &out.decisions));
            if !choices.is_empty() {
                conf_sum +=
                    choices.iter().map(|c| c.confidence).sum::<f64>() / choices.len() as f64;
                conf_n += 1;
            }
            let stats = dec.stats();
            losses += dec.loss_windows().len() as u64;
            late += stats.late_events;
            gaps += stats.gaps;
            resumes += stats.resumes;
            telemetry.merge(&registry.snapshot());
            tally.observe(&trace.snapshot());
        }
        let confidence = if conf_n > 0 {
            conf_sum / conf_n as f64
        } else {
            0.0
        };
        println!(
            "{:>9.2} {:>9.1}% {:>12.3} {:>8} {:>10} {:>8} {:>8}",
            intensity,
            100.0 * acc.accuracy(),
            confidence,
            losses,
            late,
            gaps,
            resumes
        );
        let key = format!("{intensity:.2}").replace('.', "_");
        metrics.push((format!("accuracy_i{key}"), acc.accuracy()));
        metrics.push((format!("confidence_i{key}"), confidence));
        metrics.push((format!("loss_windows_i{key}"), losses as f64));
        metrics.push((format!("late_events_i{key}"), late as f64));
        metrics.push((format!("resumes_i{key}"), resumes as f64));
    }

    // Required keys are the full per-intensity grid this run swept, so
    // a dropped column fails the schema gate before CI ever sees it.
    let required: Vec<String> = intensities
        .iter()
        .flat_map(|intensity| {
            let key = format!("{intensity:.2}").replace('.', "_");
            [
                "accuracy",
                "confidence",
                "loss_windows",
                "late_events",
                "resumes",
            ]
            .map(|stem| format!("{stem}_i{key}"))
        })
        .collect();
    let borrowed: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let json = bench_json("online_robustness", &borrowed, &telemetry, &tally);
    if let Err(e) = validate_bench_json(&json, "online_robustness", &required) {
        eprintln!("BENCH_online_robustness.json failed schema validation: {e}");
        std::process::exit(1);
    }
    write_bench_json("online_robustness", &borrowed, &telemetry, &tally);
    println!("  BENCH_online_robustness.json schema: ok");
}
