//! Seeded randomness for the simulator.
//!
//! A self-contained xoshiro256++ generator (seeded through splitmix64)
//! adding the distributions the link and behaviour models use. The
//! workspace builds offline, so no external `rand` crate is involved.
//! Every subsystem gets its own labelled seed (see
//! `wm_cipher::kdf::derive_seed`), so adding randomness to one
//! component never perturbs another — a property the regression tests
//! rely on.

/// Deterministic RNG with simulation-friendly helpers.
pub struct SimRng {
    state: [u64; 4],
}

/// Splitmix64 step (duplicated from `wm-cipher` to keep this crate
/// dependency-free; the constants are the canonical ones).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let range = span + 1;
        // Unbiased via rejection of the tail zone.
        let zone = u64::MAX - (u64::MAX - range + 1) % range;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % range;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1]` (never zero; safe under `ln`).
    fn unit_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Normal sample via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.unit_open();
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Normal truncated to `[lo, hi]` (resampled, capped iterations).
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        for _ in 0..16 {
            let v = self.normal(mean, std_dev);
            if (lo..=hi).contains(&v) {
                return v;
            }
        }
        mean.clamp(lo, hi)
    }

    /// Exponential sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * self.unit_open().ln()
    }

    /// Choose an index in `0..n` with the given relative weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Pick a uniformly random element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.uniform_u64(0, items.len() as u64 - 1) as usize;
        &items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = SimRng::new(10);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "unit {u}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let v = r.normal_clamped(0.0, 100.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(6);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = SimRng::new(7);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[0] > 500 && counts[0] < 1500, "{counts:?}");
        assert!(counts[2] > 6500 && counts[2] < 7500, "{counts:?}");
    }

    #[test]
    fn uniform_bounds_inclusive() {
        let mut r = SimRng::new(8);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match r.uniform_u64(0, 3) {
                0 => saw_lo = true,
                3 => saw_hi = true,
                1 | 2 => {}
                _ => panic!("out of range"),
            }
        }
        assert!(saw_lo && saw_hi);
    }
}
