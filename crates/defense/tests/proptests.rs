//! Property-based tests for the countermeasure transforms.
//!
//! Hand-rolled: the offline build environment has no proptest, so each
//! property runs over a few hundred cases drawn from a local splitmix64
//! driver. Failures print the case number for replay.

use wm_defense::lz::{compress, decompress};
use wm_defense::Defense;
use wm_http::{Request, RequestParser};

/// Minimal splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn printable(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len + 1);
        (0..len).map(|_| (0x20 + self.below(0x5f)) as u8).collect()
    }
    /// JSON-ish printable, arbitrary, or highly repetitive bodies —
    /// the realistic, adversarial and compression-stress cases.
    fn body(&mut self) -> Vec<u8> {
        match self.below(3) {
            0 => self.printable(1500),
            1 => {
                let len = self.below(1500);
                (0..len).map(|_| self.next() as u8).collect()
            }
            _ => {
                let b = self.next() as u8;
                vec![b; self.below(3000)]
            }
        }
    }
}

/// LZ round-trips every input.
#[test]
fn lz_roundtrip() {
    for case in 0..200u64 {
        let mut rng = Rng(0xDE_0000 + case);
        let data = rng.body();
        let c = compress(&data);
        let d = decompress(&c);
        assert_eq!(d.as_deref(), Some(&data[..]), "case {case}");
    }
}

/// The decompressor never panics on arbitrary input and never
/// produces output from obviously malformed streams.
#[test]
fn lz_decompress_total() {
    for case in 0..300u64 {
        let mut rng = Rng(0xDE_1000 + case);
        let len = rng.below(512);
        let data: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let _ = decompress(&data);
    }
}

/// Split preserves the exact byte stream (only framing changes).
#[test]
fn split_stream_identity() {
    for case in 0..150u64 {
        let mut rng = Rng(0xDE_2000 + case);
        let body = rng.body();
        let max = 64 + rng.below(836);
        let req = Request::new("POST", "/interact/state")
            .header("Host", "www.netflix.com")
            .body(body);
        let writes = Defense::Split { max }.encode(&req);
        assert!(writes.iter().all(|w| w.len() <= max.max(64)), "case {case}");
        let glued: Vec<u8> = writes.concat();
        assert_eq!(glued, req.to_bytes(), "case {case}");
    }
}

/// Padding always reaches the exact target when feasible and the
/// padded request still parses with the original body prefix.
#[test]
fn pad_exact_and_parseable() {
    for case in 0..150u64 {
        let mut rng = Rng(0xDE_3000 + case);
        let body = {
            let mut b = rng.printable(600);
            while b.len() < 2 {
                b.push(b'x');
            }
            b
        };
        let size = 1200 + rng.below(3800);
        let req = Request::new("POST", "/interact/state")
            .header("Host", "www.netflix.com")
            .body(body.clone());
        let writes = Defense::PadToConstant { size }.encode(&req);
        assert_eq!(writes.len(), 1, "case {case}");
        if size >= req.serialized_len() {
            assert_eq!(writes[0].len(), size, "case {case}");
        }
        let mut parser = RequestParser::new();
        let parsed = parser
            .feed(&writes[0])
            .expect("padded request parses")
            .remove(0);
        assert!(parsed.body.starts_with(&body), "case {case}");
        assert!(
            parsed.body[body.len()..].iter().all(|&b| b == b' '),
            "case {case}"
        );
    }
}

/// Compression round-trips through the server-side decoder.
#[test]
fn compress_decode_roundtrip() {
    for case in 0..150u64 {
        let mut rng = Rng(0xDE_4000 + case);
        let body = rng.body();
        let req = Request::new("POST", "/interact/state").body(body.clone());
        let writes = Defense::Compress.encode(&req);
        let mut parser = RequestParser::new();
        let parsed = parser
            .feed(&writes[0])
            .expect("compressed request parses")
            .remove(0);
        let decoded = Defense::Compress
            .decode_body(parsed.header_value("content-encoding"), &parsed.body)
            .expect("decodes");
        assert_eq!(decoded, body, "case {case}");
    }
}

/// Padding makes any two bodies the same wire length (the defense's
/// entire point).
#[test]
fn pad_equalizes() {
    for case in 0..150u64 {
        let mut rng = Rng(0xDE_5000 + case);
        let a = rng.printable(800);
        let b = rng.printable(800);
        let size = 4096usize;
        let ra = Request::new("POST", "/s").body(a);
        let rb = Request::new("POST", "/s").body(b);
        let wa = Defense::PadToConstant { size }.encode(&ra);
        let wb = Defense::PadToConstant { size }.encode(&rb);
        assert_eq!(wa[0].len(), wb[0].len(), "case {case}");
    }
}
