//! Property-based tests for the attack pipeline.
//!
//! Hand-rolled: the offline build environment has no proptest, so each
//! property runs over a few hundred cases drawn from a local splitmix64
//! driver. Failures print the case number for replay.

use wm_capture::labels::{LabeledRecord, RecordClass};
use wm_capture::records::TimedRecord;
use wm_capture::time::SimTime;
use wm_capture::ContentType;
use wm_capture::ObservedRecord;
use wm_core::classify::{HistogramClassifier, IntervalClassifier, KnnClassifier, RecordClassifier};
use wm_core::metrics::{choice_accuracy, ConfusionMatrix};
use wm_core::{BeamDecoder, ChoiceDecoder, DecodedChoice, DecoderConfig};
use wm_story::bandersnatch::tiny_film;
use wm_story::{Choice, ChoicePointId};

/// Minimal splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn bools(&mut self, len: usize) -> Vec<bool> {
        (0..len).map(|_| self.below(2) == 1).collect()
    }
}

fn labelled(length: u16, class: RecordClass) -> LabeledRecord {
    LabeledRecord {
        time: SimTime::ZERO,
        length,
        class,
    }
}

/// A well-separated synthetic training set with random band positions
/// (type-2 strictly above type-1 by ≥ 200).
fn arb_training(rng: &mut Rng) -> (Vec<LabeledRecord>, (u16, u16), (u16, u16)) {
    let t1_lo = 1500 + rng.below(1000) as u16;
    let t1_w = rng.below(12) as u16;
    let gap = 200 + rng.below(200) as u16;
    let t2_w = rng.below(30) as u16;
    let t1 = (t1_lo, t1_lo + t1_w);
    let t2_lo = t1.1 + gap;
    let t2 = (t2_lo, t2_lo + t2_w);
    let mut set = Vec::new();
    for l in [t1.0, (t1.0 + t1.1) / 2, t1.1] {
        set.push(labelled(l, RecordClass::Type1));
    }
    for l in [t2.0, (t2.0 + t2.1) / 2, t2.1] {
        set.push(labelled(l, RecordClass::Type2));
    }
    for l in [300u16, 550, 900, 5000, 9000] {
        set.push(labelled(l, RecordClass::Other));
    }
    (set, t1, t2)
}

/// The interval classifier recalls every training example of the
/// report classes, for any band geometry.
#[test]
fn interval_perfect_training_recall() {
    for case in 0..200u64 {
        let mut rng = Rng(0xC0_0000 + case);
        let (set, _, _) = arb_training(&mut rng);
        let slack = rng.below(8) as u16;
        let c = IntervalClassifier::train(&set, slack).expect("both classes present");
        let mut m = ConfusionMatrix::default();
        for r in &set {
            m.record(r.class, c.classify(r.length));
        }
        assert_eq!(m.recall(RecordClass::Type1), 1.0, "case {case}");
        assert_eq!(m.recall(RecordClass::Type2), 1.0, "case {case}");
    }
}

/// All three classifier families agree on points well inside the
/// bands and far outside them.
#[test]
fn classifier_families_agree_on_clear_points() {
    for case in 0..200u64 {
        let mut rng = Rng(0xC0_1000 + case);
        let (set, t1, t2) = arb_training(&mut rng);
        let interval = IntervalClassifier::train(&set, 0).expect("train");
        let hist = HistogramClassifier::train(&set, 4);
        let knn = KnnClassifier::train(&set, 3);
        let mid_t1 = (t1.0 + t1.1) / 2;
        let mid_t2 = (t2.0 + t2.1) / 2;
        for (len, want) in [
            (mid_t1, RecordClass::Type1),
            (mid_t2, RecordClass::Type2),
            (300u16, RecordClass::Other),
            (9000u16, RecordClass::Other),
        ] {
            assert_eq!(
                interval.classify(len),
                want,
                "case {case}: interval at {len}"
            );
            assert_eq!(hist.classify(len), want, "case {case}: hist at {len}");
            assert_eq!(knn.classify(len), want, "case {case}: knn at {len}");
        }
    }
}

/// Confusion-matrix identities hold for arbitrary prediction
/// streams: total preserved, accuracy within [0,1], row sums match.
#[test]
fn confusion_identities() {
    const CLASSES: [RecordClass; 3] = [RecordClass::Type1, RecordClass::Type2, RecordClass::Other];
    for case in 0..200u64 {
        let mut rng = Rng(0xC0_2000 + case);
        let n = rng.below(200);
        let pairs: Vec<(usize, usize)> = (0..n).map(|_| (rng.below(3), rng.below(3))).collect();
        let mut m = ConfusionMatrix::default();
        for (t, p) in &pairs {
            m.record(CLASSES[*t], CLASSES[*p]);
        }
        assert_eq!(m.total(), pairs.len() as u64, "case {case}");
        let acc = m.accuracy();
        assert!((0.0..=1.0).contains(&acc), "case {case}");
        for class in CLASSES {
            assert!((0.0..=1.0).contains(&m.precision(class)), "case {case}");
            assert!((0.0..=1.0).contains(&m.recall(class)), "case {case}");
        }
    }
}

/// choice_accuracy is symmetric in totals and bounded.
#[test]
fn choice_accuracy_bounds() {
    for case in 0..200u64 {
        let mut rng = Rng(0xC0_3000 + case);
        let decoded_len = rng.below(20);
        let decoded_bits = rng.bools(decoded_len);
        let truth_len = rng.below(20);
        let truth_bits = rng.bools(truth_len);
        let decoded: Vec<DecodedChoice> = decoded_bits
            .iter()
            .enumerate()
            .map(|(i, b)| DecodedChoice {
                cp: ChoicePointId(i as u16),
                choice: if *b {
                    Choice::NonDefault
                } else {
                    Choice::Default
                },
                time: SimTime::ZERO,
                observed: true,
                confidence: 1.0,
            })
            .collect();
        let truth: Vec<(ChoicePointId, Choice)> = truth_bits
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    ChoicePointId(i as u16),
                    if *b {
                        Choice::NonDefault
                    } else {
                        Choice::Default
                    },
                )
            })
            .collect();
        let acc = choice_accuracy(&decoded, &truth);
        assert_eq!(
            acc.total as usize,
            decoded.len().max(truth.len()),
            "case {case}"
        );
        assert!(acc.correct <= acc.total, "case {case}");
        assert!((0.0..=1.0).contains(&acc.accuracy()), "case {case}");
    }
}

/// Decoders always emit one decision per choice point on the walked
/// path and never panic, for arbitrary classified event streams.
#[test]
fn decoders_total_and_path_consistent() {
    let graph = tiny_film();
    let training = vec![
        labelled(2211, RecordClass::Type1),
        labelled(2213, RecordClass::Type1),
        labelled(2992, RecordClass::Type2),
        labelled(3017, RecordClass::Type2),
    ];
    let classifier = IntervalClassifier::train(&training, 0).expect("train");
    for case in 0..100u64 {
        let mut rng = Rng(0xC0_4000 + case);
        let n = rng.below(40);
        // Map class index to a length inside/outside the bands.
        let mut records: Vec<TimedRecord> = (0..n)
            .map(|_| TimedRecord {
                time: SimTime(rng.below(60_000) as u64 * 1000),
                record: ObservedRecord {
                    stream_offset: 0,
                    content_type: ContentType::ApplicationData,
                    version: (3, 3),
                    length: match rng.below(3) {
                        0 => 2212,
                        1 => 3000,
                        _ => 700,
                    },
                },
            })
            .collect();
        records.sort_by_key(|r| r.time);
        for time_aware in [false, true] {
            let cfg = DecoderConfig {
                time_aware,
                ..DecoderConfig::scaled(1)
            };
            let decoded = ChoiceDecoder::new(&classifier, &graph, cfg).decode(&records);
            // The decode must trace a real path: its cp sequence equals
            // the walk induced by its own choices.
            let seq = wm_story::ChoiceSequence(decoded.iter().map(|d| d.choice).collect());
            let walk = wm_story::path::walk(&graph, &seq);
            assert_eq!(decoded.len(), walk.encountered.len(), "case {case}");
            for (d, cp) in decoded.iter().zip(walk.encountered.iter()) {
                assert_eq!(d.cp, *cp, "case {case}");
            }
        }
        let cfg = DecoderConfig::scaled(1);
        let decoded = BeamDecoder::new(&classifier, &graph, cfg, 8).decode(&records);
        let seq = wm_story::ChoiceSequence(decoded.iter().map(|d| d.choice).collect());
        let walk = wm_story::path::walk(&graph, &seq);
        assert_eq!(decoded.len(), walk.encountered.len(), "case {case}");
    }
}

/// On a *clean* event stream generated from a true path (correct
/// question times, no noise), every decoder recovers the path
/// exactly.
#[test]
fn decoders_exact_on_clean_streams() {
    let graph = tiny_film();
    let training = vec![
        labelled(2211, RecordClass::Type1),
        labelled(2213, RecordClass::Type1),
        labelled(2992, RecordClass::Type2),
        labelled(3017, RecordClass::Type2),
    ];
    let classifier = IntervalClassifier::train(&training, 0).expect("train");
    // All 8 combinations of 3 binary choices.
    for case in 0..8u64 {
        let truth: Vec<Choice> = (0..3)
            .map(|i| {
                if (case >> i) & 1 == 1 {
                    Choice::NonDefault
                } else {
                    Choice::Default
                }
            })
            .collect();
        // tiny_film question times (content secs): 4, 10, 14 when every
        // branch is 4 s — true for all paths in tiny_film's first two
        // levels; the third question time depends only on segment
        // durations of level-2 branches, all 4 s.
        let q_times = [4_000u64, 10_000, 14_000];
        let mut records = vec![TimedRecord {
            time: SimTime(0),
            record: ObservedRecord {
                stream_offset: 0,
                content_type: ContentType::ApplicationData,
                version: (3, 3),
                length: 700, // playback-start marker (manifest fetch)
            },
        }];
        for (i, &q) in q_times.iter().enumerate() {
            records.push(TimedRecord {
                time: SimTime(q * 1000),
                record: ObservedRecord {
                    stream_offset: 0,
                    content_type: ContentType::ApplicationData,
                    version: (3, 3),
                    length: 2212,
                },
            });
            if truth[i] == Choice::NonDefault {
                records.push(TimedRecord {
                    time: SimTime((q + 1200) * 1000),
                    record: ObservedRecord {
                        stream_offset: 0,
                        content_type: ContentType::ApplicationData,
                        version: (3, 3),
                        length: 3000,
                    },
                });
            }
        }
        for time_aware in [false, true] {
            let cfg = DecoderConfig {
                time_aware,
                ..DecoderConfig::scaled(1)
            };
            let decoded = ChoiceDecoder::new(&classifier, &graph, cfg).decode(&records);
            let picks: Vec<Choice> = decoded.iter().map(|d| d.choice).collect();
            assert_eq!(
                &picks, &truth,
                "case {case}: greedy time_aware={time_aware}"
            );
        }
        let decoded =
            BeamDecoder::new(&classifier, &graph, DecoderConfig::scaled(1), 8).decode(&records);
        let picks: Vec<Choice> = decoded.iter().map(|d| d.choice).collect();
        assert_eq!(&picks, &truth, "case {case}: beam");
    }
}
