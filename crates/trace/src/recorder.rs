//! The bounded ring-buffer recorder and its shared handle.
//!
//! Mirrors the `wm-telemetry` registry pattern: subsystems hold a
//! cloned [`TraceHandle`] (an `Arc` around the recorder) and emit into
//! it; the session owner drains the events at the end. The buffer is
//! bounded: when full, the **oldest** event is evicted. Because a
//! span's `SpanEnd` always carries a later sequence number than its
//! `SpanStart`, oldest-first eviction guarantees that any span whose
//! start survives in the buffer also has its end (if one was emitted)
//! — open spans never lose their close.
//!
//! The recorder also carries the simulation clock: the session event
//! loop calls [`TraceHandle::set_now`] as sim time advances, so
//! subsystems without a time parameter in their signatures (the TLS
//! record engine, the Netflix request handler) still stamp events with
//! exact sim time. Nothing here ever reads a wall clock.

use crate::event::{EventKind, SpanId, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default event capacity: generous for a full session, bounded so a
/// runaway emitter cannot exhaust memory.
pub const DEFAULT_CAPACITY: usize = 65_536;

struct Inner {
    buf: VecDeque<TraceEvent>,
    next_seq: u64,
    next_span: u32,
    evicted: u64,
}

/// The shared recorder. Construct via [`TraceHandle::new`].
pub struct TraceRecorder {
    capacity: usize,
    clock_us: AtomicU64,
    inner: Mutex<Inner>,
}

impl TraceRecorder {
    fn new(capacity: usize) -> Self {
        TraceRecorder {
            capacity: capacity.max(1),
            clock_us: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                next_seq: 0,
                next_span: 0,
                evicted: 0,
            }),
        }
    }
}

/// Cloneable handle to a [`TraceRecorder`], the unit every subsystem
/// holds (like a telemetry counter handle).
#[derive(Clone)]
pub struct TraceHandle {
    rec: Arc<TraceRecorder>,
}

impl Default for TraceHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceHandle {
    /// A recorder with the default bounded capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder holding at most `capacity` events (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceHandle {
            rec: Arc::new(TraceRecorder::new(capacity)),
        }
    }

    /// Advance the shared simulation clock (microseconds). Called by
    /// the session event loop before dispatching each event, so
    /// emitters without a time parameter stamp correctly.
    pub fn set_now(&self, t_us: u64) {
        self.rec.clock_us.store(t_us, Ordering::Relaxed);
    }

    /// Current simulation clock in microseconds.
    pub fn now(&self) -> u64 {
        self.rec.clock_us.load(Ordering::Relaxed)
    }

    #[allow(clippy::too_many_arguments)] // private emit primitive; the public API is the *_at trio
    fn push(
        &self,
        t_us: u64,
        span: SpanId,
        parent: SpanId,
        kind: EventKind,
        name: &'static str,
        a: u64,
        b: u64,
    ) {
        let Ok(mut g) = self.rec.inner.lock() else {
            return; // poisoned: tracing is observation, never propagate
        };
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.buf.len() == self.rec.capacity {
            g.buf.pop_front();
            g.evicted += 1;
        }
        g.buf.push_back(TraceEvent {
            seq,
            t_us,
            span,
            parent,
            kind,
            name,
            a,
            b,
        });
    }

    /// Open a span at the current sim clock.
    pub fn span_start(&self, name: &'static str, parent: SpanId) -> SpanId {
        self.span_start_at(self.now(), name, parent)
    }

    /// Open a span at an explicit sim time.
    pub fn span_start_at(&self, t_us: u64, name: &'static str, parent: SpanId) -> SpanId {
        let span = {
            let Ok(mut g) = self.rec.inner.lock() else {
                return SpanId::NONE;
            };
            g.next_span += 1;
            SpanId(g.next_span)
        };
        self.push(t_us, span, parent, EventKind::SpanStart, name, 0, 0);
        span
    }

    /// Close a span at the current sim clock.
    pub fn span_end(&self, span: SpanId, name: &'static str) {
        self.span_end_at(self.now(), span, name);
    }

    /// Close a span at an explicit sim time.
    pub fn span_end_at(&self, t_us: u64, span: SpanId, name: &'static str) {
        self.push(t_us, span, SpanId::NONE, EventKind::SpanEnd, name, 0, 0);
    }

    /// Record an instant inside `span` at the current sim clock.
    pub fn instant(&self, span: SpanId, name: &'static str, a: u64, b: u64) {
        self.instant_at(self.now(), span, name, a, b);
    }

    /// Record an instant at an explicit sim time.
    pub fn instant_at(&self, t_us: u64, span: SpanId, name: &'static str, a: u64, b: u64) {
        self.push(t_us, span, SpanId::NONE, EventKind::Instant, name, a, b);
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.rec.inner.lock().map(|g| g.buf.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the bounded ring (0 unless the session
    /// out-emitted the capacity).
    pub fn evicted(&self) -> u64 {
        self.rec.inner.lock().map(|g| g.evicted).unwrap_or(0)
    }

    /// Copy of the buffered events, in emission order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.rec
            .inner
            .lock()
            .map(|g| g.buf.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Take the buffered events out, leaving the recorder empty
    /// (sequence and span counters keep advancing).
    // wm-lint: alloc-ok(reason = "drains the bounded trace ring into one owned batch per flush; empty when tracing is off")
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.rec
            .inner
            .lock()
            .map(|mut g| g.buf.drain(..).collect())
            .unwrap_or_default()
    }
}

/// Event counts by name — the cheap summary bench harnesses embed in
/// `BENCH_*.json`. Deterministic (sorted by name).
pub fn counts_by_name(events: &[TraceEvent]) -> BTreeMap<&'static str, u64> {
    let mut m = BTreeMap::new();
    for e in events {
        *m.entry(e.name).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_ids_are_monotonic() {
        let h = TraceHandle::new();
        h.set_now(10);
        let root = h.span_start("session", SpanId::NONE);
        h.set_now(20);
        let flow = h.span_start("flow", root);
        assert!(flow > root);
        h.instant(flow, "tls.record.sealed", 1, 512);
        h.set_now(30);
        h.span_end(flow, "flow");
        h.span_end(root, "session");
        let ev = h.snapshot();
        assert_eq!(ev.len(), 5);
        assert_eq!(ev[0].kind, EventKind::SpanStart);
        assert_eq!(ev[1].parent, root);
        assert_eq!(ev[2].t_us, 20);
        assert_eq!(ev[4].t_us, 30);
        let seqs: Vec<u64> = ev.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let h = TraceHandle::with_capacity(4);
        let s = h.span_start("session", SpanId::NONE);
        for i in 0..10 {
            h.instant(s, "noise", i, 0);
        }
        h.span_end(s, "session");
        let ev = h.snapshot();
        assert_eq!(ev.len(), 4);
        assert_eq!(h.evicted(), 8);
        // The newest events survive; the end event is always present.
        assert_eq!(ev.last().map(|e| e.kind), Some(EventKind::SpanEnd));
        for w in ev.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn surviving_span_starts_keep_their_ends() {
        // The causal guarantee: any SpanStart still in the buffer has
        // its SpanEnd in the buffer too (ends are emitted later, and
        // eviction is strictly oldest-first). Exercised with a
        // seeded pseudo-random workload (see also the property test in
        // tests/properties.rs).
        let h = TraceHandle::with_capacity(8);
        let mut open = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match x % 3 {
                0 => open.push(h.span_start("s", SpanId::NONE)),
                1 => {
                    if let Some(sp) = open.pop() {
                        h.span_end(sp, "s");
                    }
                }
                _ => h.instant(SpanId::NONE, "i", x, 0),
            }
        }
        for sp in open.drain(..) {
            h.span_end(sp, "s");
        }
        let ev = h.snapshot();
        for e in &ev {
            if e.kind == EventKind::SpanStart {
                assert!(
                    ev.iter()
                        .any(|f| f.kind == EventKind::SpanEnd && f.span == e.span),
                    "span {:?} start survived without its end",
                    e.span
                );
            }
        }
    }

    #[test]
    fn drain_empties_but_counters_advance() {
        let h = TraceHandle::new();
        let s = h.span_start("a", SpanId::NONE);
        let first = h.drain();
        assert_eq!(first.len(), 1);
        assert!(h.is_empty());
        let s2 = h.span_start("b", s);
        assert!(s2 > s, "span ids keep advancing across drains");
        assert_eq!(h.snapshot()[0].seq, 1, "seq keeps advancing");
    }

    #[test]
    fn counts_by_name_is_sorted_and_complete() {
        let h = TraceHandle::new();
        let s = h.span_start("session", SpanId::NONE);
        h.instant(s, "tls.record.sealed", 0, 0);
        h.instant(s, "tls.record.sealed", 1, 0);
        h.instant(s, "chaos.blackout", 0, 0);
        let counts = counts_by_name(&h.snapshot());
        assert_eq!(counts.get("tls.record.sealed"), Some(&2));
        assert_eq!(counts.get("chaos.blackout"), Some(&1));
        assert_eq!(counts.get("session"), Some(&1));
    }
}
