//! Golden event-sequence test for the tracing subsystem.
//!
//! Pins the exact causal event log of one seeded session as a committed
//! JSONL fixture, and self-tests `trace_diff` on controlled
//! perturbations. Together these turn any determinism regression in the
//! sim/tracing stack into a one-line diff naming the first event that
//! went off script.
//!
//! Regenerate the fixture after an intentional trace change with:
//!
//! ```sh
//! WM_REGEN_GOLDEN=1 cargo test --test golden_trace_events
//! ```

use std::sync::Arc;
use white_mirror::net::time::Duration;
use white_mirror::prelude::*;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_trace_events.jsonl"
);

/// The pinned scenario: the quickstart attack shape (seeded viewing,
/// fast scales) on the tiny film, so the fixture stays reviewably
/// small while exercising every event family the full title does.
fn golden_cfg() -> SessionConfig {
    let graph = Arc::new(story::bandersnatch::tiny_film());
    let script = ViewerScript::from_choices(
        &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
        Duration::from_millis(900),
    );
    let mut c = SessionConfig::fast(graph, 2002, script);
    c.trace = true;
    c
}

#[test]
fn golden_trace_events_match_fixture() {
    let out = run_session(&golden_cfg()).expect("golden session");
    let jsonl = export_jsonl(&out.trace_events);
    if std::env::var("WM_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(FIXTURE, &jsonl).expect("write fixture");
        println!("regenerated {FIXTURE}");
        return;
    }
    let golden = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing; regenerate with WM_REGEN_GOLDEN=1");
    if let Some(d) = trace_diff(&golden, &jsonl) {
        panic!("trace diverges from committed fixture\n{d}\n(if intentional, regenerate with WM_REGEN_GOLDEN=1)");
    }
}

/// trace_diff self-test: equal config + seed ⇒ no divergence, on the
/// real pipeline, not a synthetic string.
#[test]
fn identical_seeds_produce_no_divergence() {
    let a = run_session(&golden_cfg()).expect("a");
    let b = run_session(&golden_cfg()).expect("b");
    assert!(!a.trace_events.is_empty());
    assert_eq!(
        trace_diff(
            &export_jsonl(&a.trace_events),
            &export_jsonl(&b.trace_events)
        ),
        None
    );
}

/// trace_diff self-test: against a faulted run of the same seed, the
/// first divergence is the first injected fault — the clean prefix up
/// to the fault's sim time is shared event for event.
#[test]
fn fault_plan_divergence_points_at_the_first_fault() {
    let clean = run_session(&golden_cfg()).expect("clean");
    let mut faulted_cfg = golden_cfg();
    faulted_cfg.chaos = FaultPlan::generate(2002, 1.5, Duration::from_secs(4));
    let (faulted, _) = run_session_lossy(&faulted_cfg);
    assert!(
        faulted.stats.faults_applied > 0,
        "plan must inject at least one fault"
    );

    let left = export_jsonl(&clean.trace_events);
    let right = export_jsonl(&faulted.trace_events);
    let d = trace_diff(&left, &right).expect("faulted run must diverge");
    let faulted_side = d
        .right
        .as_deref()
        .expect("faulted trace has the extra event");
    assert!(
        faulted_side.contains("\"chaos."),
        "first divergence should be the first chaos event, got: {faulted_side}"
    );
    // And it really is the *first* chaos event in the faulted trace.
    let first_chaos = right
        .lines()
        .position(|l| l.contains("\"chaos."))
        .expect("faulted trace records chaos events");
    assert_eq!(d.line, first_chaos + 1);
}
