//! Property-based tests for the attack pipeline.

use proptest::prelude::*;
use wm_capture::labels::{LabeledRecord, RecordClass};
use wm_capture::records::TimedRecord;
use wm_core::classify::{HistogramClassifier, IntervalClassifier, KnnClassifier, RecordClassifier};
use wm_core::metrics::{choice_accuracy, ConfusionMatrix};
use wm_core::{BeamDecoder, ChoiceDecoder, DecodedChoice, DecoderConfig};
use wm_net::time::SimTime;
use wm_story::bandersnatch::tiny_film;
use wm_story::{Choice, ChoicePointId};
use wm_tls::observer::ObservedRecord;
use wm_tls::ContentType;

fn labelled(length: u16, class: RecordClass) -> LabeledRecord {
    LabeledRecord { time: SimTime::ZERO, length, class }
}

/// A well-separated synthetic training set with configurable band
/// positions (type-2 strictly above type-1 by ≥ 200).
fn arb_training() -> impl Strategy<Value = (Vec<LabeledRecord>, (u16, u16), (u16, u16))> {
    (1500u16..2500, 0u16..12, 200u16..400, 0u16..30).prop_map(|(t1_lo, t1_w, gap, t2_w)| {
        let t1 = (t1_lo, t1_lo + t1_w);
        let t2_lo = t1.1 + gap;
        let t2 = (t2_lo, t2_lo + t2_w);
        let mut set = Vec::new();
        for l in [t1.0, (t1.0 + t1.1) / 2, t1.1] {
            set.push(labelled(l, RecordClass::Type1));
        }
        for l in [t2.0, (t2.0 + t2.1) / 2, t2.1] {
            set.push(labelled(l, RecordClass::Type2));
        }
        for l in [300u16, 550, 900, 5000, 9000] {
            set.push(labelled(l, RecordClass::Other));
        }
        (set, t1, t2)
    })
}

proptest! {
    /// The interval classifier recalls every training example of the
    /// report classes, for any band geometry.
    #[test]
    fn interval_perfect_training_recall((set, _, _) in arb_training(), slack in 0u16..8) {
        let c = IntervalClassifier::train(&set, slack).expect("both classes present");
        let mut m = ConfusionMatrix::default();
        for r in &set {
            m.record(r.class, c.classify(r.length));
        }
        prop_assert_eq!(m.recall(RecordClass::Type1), 1.0);
        prop_assert_eq!(m.recall(RecordClass::Type2), 1.0);
    }

    /// All three classifier families agree on points well inside the
    /// bands and far outside them.
    #[test]
    fn classifier_families_agree_on_clear_points((set, t1, t2) in arb_training()) {
        let interval = IntervalClassifier::train(&set, 0).expect("train");
        let hist = HistogramClassifier::train(&set, 4);
        let knn = KnnClassifier::train(&set, 3);
        let mid_t1 = (t1.0 + t1.1) / 2;
        let mid_t2 = (t2.0 + t2.1) / 2;
        for (len, want) in [
            (mid_t1, RecordClass::Type1),
            (mid_t2, RecordClass::Type2),
            (300u16, RecordClass::Other),
            (9000u16, RecordClass::Other),
        ] {
            prop_assert_eq!(interval.classify(len), want, "interval at {}", len);
            prop_assert_eq!(hist.classify(len), want, "hist at {}", len);
            prop_assert_eq!(knn.classify(len), want, "knn at {}", len);
        }
    }

    /// Confusion-matrix identities hold for arbitrary prediction
    /// streams: total preserved, accuracy within [0,1], row sums match.
    #[test]
    fn confusion_identities(pairs in prop::collection::vec(
        (0usize..3, 0usize..3), 0..200)) {
        const CLASSES: [RecordClass; 3] =
            [RecordClass::Type1, RecordClass::Type2, RecordClass::Other];
        let mut m = ConfusionMatrix::default();
        for (t, p) in &pairs {
            m.record(CLASSES[*t], CLASSES[*p]);
        }
        prop_assert_eq!(m.total(), pairs.len() as u64);
        let acc = m.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        for class in CLASSES {
            prop_assert!((0.0..=1.0).contains(&m.precision(class)));
            prop_assert!((0.0..=1.0).contains(&m.recall(class)));
        }
    }

    /// choice_accuracy is symmetric in totals and bounded.
    #[test]
    fn choice_accuracy_bounds(decoded_bits in prop::collection::vec(any::<bool>(), 0..20),
                              truth_bits in prop::collection::vec(any::<bool>(), 0..20)) {
        let decoded: Vec<DecodedChoice> = decoded_bits
            .iter()
            .enumerate()
            .map(|(i, b)| DecodedChoice {
                cp: ChoicePointId(i as u16),
                choice: if *b { Choice::NonDefault } else { Choice::Default },
                time: SimTime::ZERO,
                observed: true,
            })
            .collect();
        let truth: Vec<(ChoicePointId, Choice)> = truth_bits
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (ChoicePointId(i as u16), if *b { Choice::NonDefault } else { Choice::Default })
            })
            .collect();
        let acc = choice_accuracy(&decoded, &truth);
        prop_assert_eq!(acc.total as usize, decoded.len().max(truth.len()));
        prop_assert!(acc.correct <= acc.total);
        prop_assert!((0.0..=1.0).contains(&acc.accuracy()));
    }

    /// Decoders always emit one decision per choice point on the walked
    /// path and never panic, for arbitrary classified event streams.
    #[test]
    fn decoders_total_and_path_consistent(
        events in prop::collection::vec((0u64..60_000, 0usize..3), 0..40)
    ) {
        let graph = tiny_film();
        let training = vec![
            labelled(2211, RecordClass::Type1),
            labelled(2213, RecordClass::Type1),
            labelled(2992, RecordClass::Type2),
            labelled(3017, RecordClass::Type2),
        ];
        let classifier = IntervalClassifier::train(&training, 0).expect("train");
        // Map class index to a length inside/outside the bands.
        let mut records: Vec<TimedRecord> = events
            .iter()
            .map(|(ms, class)| TimedRecord {
                time: SimTime(ms * 1000),
                record: ObservedRecord {
                    stream_offset: 0,
                    content_type: ContentType::ApplicationData,
                    version: (3, 3),
                    length: match class {
                        0 => 2212,
                        1 => 3000,
                        _ => 700,
                    },
                },
            })
            .collect();
        records.sort_by_key(|r| r.time);
        for time_aware in [false, true] {
            let cfg = DecoderConfig { time_aware, ..DecoderConfig::scaled(1) };
            let decoded = ChoiceDecoder::new(&classifier, &graph, cfg).decode(&records);
            // The decode must trace a real path: its cp sequence equals
            // the walk induced by its own choices.
            let seq = wm_story::ChoiceSequence(decoded.iter().map(|d| d.choice).collect());
            let walk = wm_story::path::walk(&graph, &seq);
            prop_assert_eq!(decoded.len(), walk.encountered.len());
            for (d, cp) in decoded.iter().zip(walk.encountered.iter()) {
                prop_assert_eq!(d.cp, *cp);
            }
        }
        let cfg = DecoderConfig::scaled(1);
        let decoded = BeamDecoder::new(&classifier, &graph, cfg, 8).decode(&records);
        let seq = wm_story::ChoiceSequence(decoded.iter().map(|d| d.choice).collect());
        let walk = wm_story::path::walk(&graph, &seq);
        prop_assert_eq!(decoded.len(), walk.encountered.len());
    }

    /// On a *clean* event stream generated from a true path (correct
    /// question times, no noise), every decoder recovers the path
    /// exactly.
    #[test]
    fn decoders_exact_on_clean_streams(bits in prop::collection::vec(any::<bool>(), 3)) {
        let graph = tiny_film();
        let truth: Vec<Choice> = bits
            .iter()
            .map(|b| if *b { Choice::NonDefault } else { Choice::Default })
            .collect();
        // tiny_film question times (content secs): 4, 10, 14 when every
        // branch is 4 s — true for all paths in tiny_film's first two
        // levels; the third question time depends only on segment
        // durations of level-2 branches, all 4 s.
        let q_times = [4_000u64, 10_000, 14_000];
        let mut records = vec![TimedRecord {
            time: SimTime(0),
            record: ObservedRecord {
                stream_offset: 0,
                content_type: ContentType::ApplicationData,
                version: (3, 3),
                length: 700, // playback-start marker (manifest fetch)
            },
        }];
        for (i, &q) in q_times.iter().enumerate() {
            records.push(TimedRecord {
                time: SimTime(q * 1000),
                record: ObservedRecord {
                    stream_offset: 0,
                    content_type: ContentType::ApplicationData,
                    version: (3, 3),
                    length: 2212,
                },
            });
            if truth[i] == Choice::NonDefault {
                records.push(TimedRecord {
                    time: SimTime((q + 1200) * 1000),
                    record: ObservedRecord {
                        stream_offset: 0,
                        content_type: ContentType::ApplicationData,
                        version: (3, 3),
                        length: 3000,
                    },
                });
            }
        }
        let training = vec![
            labelled(2211, RecordClass::Type1),
            labelled(2213, RecordClass::Type1),
            labelled(2992, RecordClass::Type2),
            labelled(3017, RecordClass::Type2),
        ];
        let classifier = IntervalClassifier::train(&training, 0).expect("train");
        for time_aware in [false, true] {
            let cfg = DecoderConfig { time_aware, ..DecoderConfig::scaled(1) };
            let decoded = ChoiceDecoder::new(&classifier, &graph, cfg).decode(&records);
            let picks: Vec<Choice> = decoded.iter().map(|d| d.choice).collect();
            prop_assert_eq!(&picks, &truth, "greedy time_aware={}", time_aware);
        }
        let decoded =
            BeamDecoder::new(&classifier, &graph, DecoderConfig::scaled(1), 8).decode(&records);
        let picks: Vec<Choice> = decoded.iter().map(|d| d.choice).collect();
        prop_assert_eq!(&picks, &truth, "beam");
    }
}
