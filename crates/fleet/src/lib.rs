//! # wm-fleet — supervised sharded attacker fleet
//!
//! `wm-online` decodes one victim's session from a live packet feed.
//! The paper's threat model, though, is an ISP- or IXP-level observer
//! watching *many* subscribers at once, for hours, on infrastructure
//! that fails: decoder processes get OOM-killed, taps hiccup, and
//! checkpoint writes get torn by the very crash they were meant to
//! survive. This crate turns the single-victim decoder into that
//! fleet:
//!
//! * **Demux** ([`ring`]): a seeded consistent-hash ring routes each
//!   victim flow (4-tuple minus the source port, so reconnects
//!   colocate) onto one of N decoder shards, stable under resize.
//! * **Shards** ([`shard`]): each shard owns per-victim
//!   [`wm_online::OnlineDecoder`]s and serializes them all into one
//!   byte-deterministic shard checkpoint via the shard-scoped
//!   `checkpoint_value` API.
//! * **Supervision** ([`supervisor`]): a deterministic control loop
//!   checkpoints every shard on a sim-time cadence, absorbs
//!   [`wm_chaos::ShardFaultPlan`] faults (kill, stall,
//!   checkpoint-corrupt, torn write), restarts dead shards from their
//!   last good checkpoint with capped exponential backoff — healthy
//!   shards keep draining throughout — and charges every at-risk
//!   interval to an explicit per-victim loss window.
//! * **Merge** ([`dedup`]): verdicts from all shards (and from
//!   overlapping taps) pass a dedup stage keyed on the
//!   `ChoiceProvenance` record indices, guaranteeing **zero
//!   duplicated** and **bounded lost** verdicts in the merged stream.
//!
//! Everything is byte-deterministic: the same seed, fault plan, and
//! packet stream produce the identical merged verdict stream and loss
//! report, regardless of restore-pool width, and — absent faults —
//! regardless of shard count.

pub mod dedup;
pub mod process;
pub mod resize;
pub mod ring;
pub mod shard;
pub mod supervisor;

pub use dedup::VerdictDedup;
pub use process::{
    decode_frame, encode_frame, shard_worker_main, FrameError, ProcessShard, RemoteError, Reply,
    Request, MAX_FRAME,
};
pub use resize::{MigrationWindow, ResizeSchedule, ResizeScheduleError, ResizeStep};
pub use ring::{victim_key, HashRing};
pub use shard::{
    ShardEnvelope, ShardRestoreError, ShardRestoreErrorKind, ShardState, WorkerFault,
    SHARD_CHECKPOINT_VERSION,
};
pub use supervisor::{
    Fleet, FleetReport, FleetStats, LossWindow, ObsReport, ObserverConfig, ShardRecovery,
};
// Health-plane vocabulary, re-exported so fleet consumers don't need a
// direct wm-obs dependency to read a `fleet_status` report.
pub use wm_obs::{FleetStatus, HealthState, HealthTransition, ShardVitals, SloThresholds};

use wm_capture::time::{Duration, SimTime};
use wm_online::{IngestLimitsError, OnlineConfig};

/// Why a [`FleetConfig`] is unusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConfigError {
    /// `shards` must be ≥ 1.
    ZeroShards,
    /// `checkpoint_every` must be a positive sim-time interval.
    ZeroCheckpointCadence,
    /// `backoff_base`/`backoff_cap` must be positive with base ≤ cap.
    BadBackoff,
    /// `stall_queue_packets` must be ≥ 1.
    ZeroStallQueue,
    /// `max_victims_per_shard` must be ≥ 1.
    ZeroVictims,
    /// The process backend was requested but no shard-worker binary
    /// could be resolved (config path, `WM_SHARD_WORKER`, or a
    /// `shard_worker` next to the current executable) or spawned.
    Worker,
    /// The embedded decoder config failed its own validation.
    Ingest(IngestLimitsError),
}

impl std::fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetConfigError::ZeroShards => write!(f, "fleet needs at least one shard"),
            FleetConfigError::ZeroCheckpointCadence => {
                write!(f, "checkpoint cadence must be a positive sim-time interval")
            }
            FleetConfigError::BadBackoff => {
                write!(f, "restart backoff must satisfy 0 < base <= cap")
            }
            FleetConfigError::ZeroStallQueue => {
                write!(f, "stall queue must hold at least one packet")
            }
            FleetConfigError::ZeroVictims => {
                write!(f, "each shard must admit at least one victim")
            }
            FleetConfigError::Worker => {
                write!(f, "process backend: no shard-worker binary available")
            }
            FleetConfigError::Ingest(e) => write!(f, "decoder config: {e}"),
        }
    }
}

impl std::error::Error for FleetConfigError {}

impl From<IngestLimitsError> for FleetConfigError {
    fn from(e: IngestLimitsError) -> Self {
        FleetConfigError::Ingest(e)
    }
}

/// Where each shard's decoders live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ShardBackend {
    /// Shards share the supervisor's address space (the default):
    /// fastest, fully deterministic, but a decoder panic is fatal to
    /// the whole fleet.
    #[default]
    InProcess,
    /// Each shard runs in a child OS process behind the
    /// [`process`] stdin/stdout protocol. A `kill -9`'d shard is
    /// respawned from its last good checkpoint without the supervisor
    /// ever exiting. `worker` names the shard-worker binary; `None`
    /// resolves via `WM_SHARD_WORKER` or a `shard_worker` binary next
    /// to the current executable.
    Process { worker: Option<std::path::PathBuf> },
}

/// Fleet-level configuration. All durations are **sim-time**.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of decoder shards.
    pub shards: usize,
    /// Seed for the consistent-hash ring and derived damage seeds.
    pub ring_seed: u64,
    /// Virtual nodes per shard on the ring.
    pub vnodes_per_shard: usize,
    /// Per-shard checkpoint cadence.
    pub checkpoint_every: Duration,
    /// Restart backoff: first retry after `backoff_base`, doubling per
    /// consecutive kill, capped at `backoff_cap`. Reset when the shard
    /// survives to a checkpoint.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    /// Packets a stalled shard may queue before dropping.
    pub stall_queue_packets: usize,
    /// Evict a victim idle for longer than this (checked at
    /// checkpoint boundaries).
    pub victim_idle: Duration,
    /// Hard cap on concurrently-live victims per shard.
    pub max_victims_per_shard: usize,
    /// Worker threads on the persistent restore pool (0 = per-core,
    /// 1 = inline). Never affects output bytes.
    pub restore_workers: usize,
    /// Where shard decoders live (in-process, or one child OS process
    /// per shard). Never affects output bytes on fault-free input.
    pub backend: ShardBackend,
    /// Per-victim decoder configuration.
    pub decode: OnlineConfig,
}

impl FleetConfig {
    /// A config whose sim-time knobs match a session generator running
    /// at `time_scale`× compression, mirroring
    /// [`OnlineConfig::scaled`].
    pub fn scaled(shards: usize, time_scale: u32) -> Self {
        let ts = time_scale.max(1) as f64;
        FleetConfig {
            shards,
            ring_seed: 0xF1EE7,
            vnodes_per_shard: 16,
            checkpoint_every: Duration::from_secs_f64(30.0 / ts),
            backoff_base: Duration::from_secs_f64(2.0 / ts),
            backoff_cap: Duration::from_secs_f64(60.0 / ts),
            stall_queue_packets: 4096,
            victim_idle: Duration::from_secs_f64(600.0 / ts),
            max_victims_per_shard: 64,
            restore_workers: 1,
            backend: ShardBackend::InProcess,
            decode: OnlineConfig::scaled(time_scale),
        }
    }

    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.shards == 0 {
            return Err(FleetConfigError::ZeroShards);
        }
        if self.checkpoint_every.micros() == 0 {
            return Err(FleetConfigError::ZeroCheckpointCadence);
        }
        if self.backoff_base.micros() == 0 || self.backoff_cap.micros() < self.backoff_base.micros()
        {
            return Err(FleetConfigError::BadBackoff);
        }
        if self.stall_queue_packets == 0 {
            return Err(FleetConfigError::ZeroStallQueue);
        }
        if self.max_victims_per_shard == 0 {
            return Err(FleetConfigError::ZeroVictims);
        }
        self.decode.validate()?;
        Ok(())
    }

    /// Upper bound on one shard's resident decoder state, derived from
    /// the same [`wm_online::IngestLimits`] arithmetic the decoder's
    /// own bound uses — the single source of truth for every memory
    /// assertion in the fleet tests, soak, and bench.
    pub fn per_shard_state_bound(&self) -> usize {
        self.max_victims_per_shard * self.decode.state_bound()
    }
}

/// One tap-attributed packet: `(arrival sim-time, victim id, frame)`.
pub type TapPacket = (SimTime, u32, Vec<u8>);

/// Merge the feeds of several taps with overlapping visibility into
/// one deterministic stream: ordered by `(time, victim)`, ties broken
/// by tap order then arrival order. Duplicate *packets* are absorbed
/// downstream by each decoder's ingest (earliest copy wins) and the
/// verdict dedup stage guarantees the merged *verdict* stream carries
/// no duplicates.
pub fn merge_taps(taps: &[Vec<TapPacket>]) -> Vec<TapPacket> {
    let mut merged: Vec<TapPacket> = Vec::with_capacity(taps.iter().map(Vec::len).sum());
    for tap in taps {
        merged.extend(tap.iter().cloned());
    }
    merged.sort_by_key(|(t, v, _)| (t.micros(), *v));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_catches_each_knob() {
        let good = FleetConfig::scaled(4, 20);
        assert!(good.validate().is_ok());
        let mut c = good.clone();
        c.shards = 0;
        assert_eq!(c.validate(), Err(FleetConfigError::ZeroShards));
        let mut c = good.clone();
        c.checkpoint_every = Duration::ZERO;
        assert_eq!(c.validate(), Err(FleetConfigError::ZeroCheckpointCadence));
        let mut c = good.clone();
        c.backoff_cap = Duration::from_micros(1);
        c.backoff_base = Duration::from_micros(2);
        assert_eq!(c.validate(), Err(FleetConfigError::BadBackoff));
        let mut c = good.clone();
        c.stall_queue_packets = 0;
        assert_eq!(c.validate(), Err(FleetConfigError::ZeroStallQueue));
        let mut c = good.clone();
        c.max_victims_per_shard = 0;
        assert_eq!(c.validate(), Err(FleetConfigError::ZeroVictims));
        let mut c = good;
        c.decode.ingest.max_carry_bytes = 0;
        assert!(matches!(c.validate(), Err(FleetConfigError::Ingest(_))));
    }

    #[test]
    fn shard_bound_scales_with_ingest_limits() {
        let small = FleetConfig::scaled(2, 20);
        let mut big = small.clone();
        big.decode.ingest.max_carry_bytes *= 4;
        assert!(
            big.per_shard_state_bound() > small.per_shard_state_bound(),
            "the shard bound must be derived from IngestLimits, not a constant"
        );
        assert_eq!(
            small.per_shard_state_bound(),
            small.max_victims_per_shard * small.decode.state_bound()
        );
    }

    #[test]
    fn merge_taps_is_deterministic_and_time_ordered() {
        let a = vec![(SimTime(30), 1u32, vec![1u8]), (SimTime(10), 2, vec![2])];
        let b = vec![(SimTime(20), 1, vec![3]), (SimTime(10), 2, vec![2])];
        let merged = merge_taps(&[a.clone(), b.clone()]);
        assert_eq!(merged, merge_taps(&[a, b]));
        let times: Vec<u64> = merged.iter().map(|(t, _, _)| t.micros()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(
            merged.len(),
            4,
            "merge keeps duplicates for ingest to absorb"
        );
    }
}
