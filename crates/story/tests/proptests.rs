//! Property-based tests for the story model.
//!
//! Hand-rolled: the offline build environment has no proptest, so each
//! property runs over a few hundred cases drawn from a local splitmix64
//! driver. Failures print the case number for replay.

use wm_story::bandersnatch::{bandersnatch, tiny_film};
use wm_story::path::{sample_path, walk};
use wm_story::{Choice, ChoiceSequence, SegmentEnd};

/// Minimal splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn choices(&mut self) -> ChoiceSequence {
        let len = self.below(20);
        ChoiceSequence(
            (0..len)
                .map(|_| {
                    if self.below(2) == 1 {
                        Choice::NonDefault
                    } else {
                        Choice::Default
                    }
                })
                .collect(),
        )
    }
}

/// Every choice sequence walks to an ending, consumes at most the
/// graph's maximum decision depth, and replays identically.
#[test]
fn walks_terminate_and_replay() {
    for case in 0..200u64 {
        let mut rng = Rng(0x57_0000 + case);
        let choices = rng.choices();
        for graph in [bandersnatch(), tiny_film()] {
            let w1 = walk(&graph, &choices);
            assert!(graph.segment(w1.ending).is_ending(), "case {case}");
            assert!(
                w1.choices.len() <= graph.max_choices_on_path(),
                "case {case}"
            );
            assert_eq!(w1.encountered.len(), w1.choices.len(), "case {case}");
            let w2 = walk(&graph, &choices);
            assert_eq!(w1, w2, "case {case}");
        }
    }
}

/// The applied prefix of a walk equals the provided choices (until
/// the sequence is exhausted, after which only defaults appear).
#[test]
fn applied_prefix_matches() {
    for case in 0..200u64 {
        let mut rng = Rng(0x57_1000 + case);
        let choices = rng.choices();
        let graph = bandersnatch();
        let w = walk(&graph, &choices);
        for (i, c) in w.choices.0.iter().enumerate() {
            if i < choices.0.len() {
                assert_eq!(*c, choices.0[i], "case {case}");
            } else {
                assert_eq!(*c, Choice::Default, "case {case}");
            }
        }
    }
}

/// Each step's decision is consistent with the graph: the next
/// step's segment is the chosen option's target (or the Continue
/// successor).
#[test]
fn steps_follow_graph_edges() {
    for case in 0..200u64 {
        let mut rng = Rng(0x57_2000 + case);
        let choices = rng.choices();
        let graph = bandersnatch();
        let w = walk(&graph, &choices);
        for pair in w.steps.windows(2) {
            let cur = graph.segment(pair[0].segment);
            let next = pair[1].segment;
            match (cur.end, pair[0].decision) {
                (SegmentEnd::Continue(n), None) => assert_eq!(next, n, "case {case}"),
                (SegmentEnd::Choice(cp), Some((dcp, choice))) => {
                    assert_eq!(cp, dcp, "case {case}");
                    assert_eq!(
                        graph.choice_point(cp).option(choice).target,
                        next,
                        "case {case}"
                    );
                }
                (end, dec) => panic!("case {case}: inconsistent step: {end:?} vs {dec:?}"),
            }
        }
    }
}

/// Compact encoding round-trips every sequence.
#[test]
fn compact_roundtrip() {
    for case in 0..300u64 {
        let mut rng = Rng(0x57_3000 + case);
        let choices = rng.choices();
        let s = choices.to_compact();
        assert_eq!(
            ChoiceSequence::from_compact(&s),
            Some(choices),
            "case {case}"
        );
    }
}

/// Sampled paths respect the default-probability extremes and are
/// seed-deterministic.
#[test]
fn sampling_properties() {
    for case in 0..100u64 {
        let mut rng = Rng(0x57_4000 + case);
        let seed = rng.next();
        let graph = bandersnatch();
        let all_d = sample_path(&graph, seed, 1.0);
        assert!(
            all_d.choices.0.iter().all(|c| *c == Choice::Default),
            "case {case}"
        );
        let all_n = sample_path(&graph, seed, 0.0);
        assert!(
            all_n.choices.0.iter().all(|c| *c == Choice::NonDefault),
            "case {case}"
        );
        assert_eq!(
            sample_path(&graph, seed, 0.5),
            sample_path(&graph, seed, 0.5),
            "case {case}"
        );
    }
}

/// Path durations are bounded by the sum of all segment durations.
#[test]
fn durations_bounded() {
    for case in 0..200u64 {
        let mut rng = Rng(0x57_5000 + case);
        let choices = rng.choices();
        let graph = bandersnatch();
        let w = walk(&graph, &choices);
        let total: u64 = graph
            .segments()
            .iter()
            .map(|s| s.duration_secs as u64)
            .sum();
        let d = w.duration_secs(&graph);
        assert!(d > 0 && d <= total, "case {case}");
    }
}
