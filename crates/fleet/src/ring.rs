//! Seeded consistent-hash ring: stable victim → shard demux.
//!
//! The fleet must answer one question deterministically and cheaply:
//! *which shard owns this victim?* A modulo over the shard count would
//! reshuffle almost every victim whenever the fleet is resized; the
//! classic consistent-hashing fix places `vnodes` seeded points per
//! shard on a `u64` ring and routes each key to the first point at or
//! after it (wrapping). Adding or removing one shard then moves only
//! the keys that fall into the arcs the new points claim —
//! approximately `1/shards` of them — which the ring test pins.
//!
//! Keys fold the seed with the tap's victim attribution and **nothing
//! from the flow 4-tuple**. This is deliberate: one victim's session
//! spans several flows — reconnects come back on a fresh source port,
//! the player rotates across CDN frontends (new destination), and
//! impaired captures yield runt frames with no parseable tuple at
//! all. The per-victim decoder stitches those flows internally, so
//! every one of them must land on the shard that owns the victim; any
//! flow-derived key component would scatter a victim across shards
//! and leave each decoder with a partial stream.

/// FNV-1a 64-bit, the workspace's standard structural hash.
fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Domain-separated seed for checkpoint-damage injection: the same
/// FNV folding as the demux keys, scoped by a label so damage seeds
/// never collide with ring points.
pub(crate) fn damage_seed(seed: u64, seq: u64) -> u64 {
    let mut h = fnv(FNV_OFFSET, b"fleet checkpoint damage");
    h = fnv(h, &seed.to_le_bytes());
    fnv(h, &seq.to_le_bytes())
}

/// Demux key for a victim: seed + victim attribution, no flow
/// identity (see the module docs for why).
pub fn victim_key(seed: u64, victim: u32) -> u64 {
    fnv(fnv(FNV_OFFSET, &seed.to_le_bytes()), &victim.to_le_bytes())
}

/// A seeded consistent-hash ring over `shards` shards.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard)` sorted by point; lookup is the first point at
    /// or after the key, wrapping to the front.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl HashRing {
    /// Build a ring with `vnodes` points per shard. Deterministic in
    /// `(seed, shards, vnodes)`.
    pub fn new(seed: u64, shards: usize, vnodes: usize) -> Self {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                let mut h = fnv(FNV_OFFSET, &seed.to_le_bytes());
                h = fnv(h, &(shard as u64).to_le_bytes());
                h = fnv(h, &(vnode as u64).to_le_bytes());
                points.push((h, shard as u32));
            }
        }
        // Sort by point; break ties by shard so equal points (FNV has
        // no collision guarantee) still order deterministically.
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards the ring routes to.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: first ring point at or after it,
    /// wrapping past `u64::MAX` to the smallest point.
    pub fn shard_of(&self, key: u64) -> usize {
        let idx = self.points.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.points[idx % self.points.len()];
        shard as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let a = HashRing::new(7, 8, 16);
        let b = HashRing::new(7, 8, 16);
        let mut hit = [false; 8];
        for key in 0..4096u64 {
            let k = victim_key(7, key as u32);
            assert_eq!(a.shard_of(k), b.shard_of(k));
            hit[a.shard_of(k)] = true;
        }
        assert!(hit.iter().all(|&h| h), "every shard owns some keys");
    }

    #[test]
    fn resizing_moves_roughly_one_in_n_keys() {
        let seed = 13u64;
        let before = HashRing::new(seed, 8, 32);
        let after = HashRing::new(seed, 9, 32);
        let total = 20_000u32;
        let moved = (0..total)
            .filter(|&v| {
                let k = victim_key(seed, v);
                before.shard_of(k) != after.shard_of(k)
            })
            .count();
        // Ideal is 1/9 ≈ 11%; virtual-node variance allows slack but
        // a modulo scheme would move ~89%.
        let frac = moved as f64 / total as f64;
        assert!(
            frac < 0.30,
            "adding one shard moved {:.0}% of keys — not a consistent ring",
            frac * 100.0
        );
        assert!(frac > 0.0, "a new shard must claim some keys");
    }

    #[test]
    fn victims_get_distinct_seed_scoped_keys() {
        assert_ne!(
            victim_key(3, 42),
            victim_key(3, 43),
            "victims must not collide trivially"
        );
        assert_ne!(
            victim_key(3, 42),
            victim_key(4, 42),
            "keys must be seed-scoped"
        );
    }
}
