//! Exhaustive-interleaving check of the pool's dispatch protocol.
//!
//! `run_indexed` keeps determinism through one invariant: every index
//! in `0..tasks` is claimed by **exactly one** worker, no matter how
//! the scheduler interleaves them. The real pool can't prove that — a
//! test run sees one schedule out of exponentially many. This harness
//! does what loom does, by hand: it models each worker as a small
//! state machine whose transitions are single atomic steps on the
//! shared counter, then DFS-enumerates *every* schedule of those
//! steps and checks the claim sets each one produces.
//!
//! Two models run through the same explorer:
//!
//! * the shipped protocol — claim is one `fetch_add` — which must
//!   merge to the identity permutation under every schedule; and
//! * a deliberately broken variant — claim split into `load` then
//!   `store(i + 1)` — whose check-then-act window the explorer must
//!   catch double-claiming. That second test is the harness testing
//!   itself: if it ever passes, the explorer stopped exploring.

/// Shared state: the dispatch counter, modeled as plain data because
/// the explorer serializes all access (that's the point — *it* owns
/// the interleaving, not the hardware).
#[derive(Clone)]
struct Shared {
    counter: usize,
}

/// One worker mid-protocol. Each variant's transition is exactly one
/// atomic step; the explorer may switch workers between any two steps.
#[derive(Clone)]
enum Worker {
    /// Shipped protocol: next step claims via one fetch_add.
    FetchAdd,
    /// Broken protocol, step 1 of 2: next step loads the counter.
    Load,
    /// Broken protocol, step 2 of 2: loaded `i`, next step stores
    /// `i + 1` and claims `i` — the racy window lives between these.
    Store(usize),
    Done,
}

impl Worker {
    /// Execute one atomic step; returns the index claimed, if any.
    fn step(&mut self, shared: &mut Shared, tasks: usize) -> Option<usize> {
        match *self {
            Worker::FetchAdd => {
                let i = shared.counter;
                shared.counter += 1;
                if i >= tasks {
                    *self = Worker::Done;
                    None
                } else {
                    Some(i)
                }
            }
            Worker::Load => {
                let i = shared.counter;
                if i >= tasks {
                    *self = Worker::Done;
                    None
                } else {
                    *self = Worker::Store(i);
                    None
                }
            }
            Worker::Store(i) => {
                shared.counter = i + 1;
                *self = Worker::Load;
                Some(i)
            }
            Worker::Done => None,
        }
    }

    fn done(&self) -> bool {
        matches!(self, Worker::Done)
    }
}

/// DFS over every schedule. At each point, any not-yet-done worker may
/// take the next atomic step; terminal states (all done) report how
/// many times each index was claimed. Returns the schedule count.
fn explore(
    shared: &Shared,
    workers: &[Worker],
    tasks: usize,
    claims: &mut Vec<usize>,
    on_terminal: &mut impl FnMut(&[usize]),
) -> u64 {
    let mut schedules = 0;
    let mut any_runnable = false;
    for w in 0..workers.len() {
        if workers[w].done() {
            continue;
        }
        any_runnable = true;
        let mut shared2 = shared.clone();
        let mut workers2 = workers.to_vec();
        let claimed = workers2[w].step(&mut shared2, tasks);
        if let Some(i) = claimed {
            claims[i] += 1;
        }
        schedules += explore(&shared2, &workers2, tasks, claims, on_terminal);
        if let Some(i) = claimed {
            claims[i] -= 1;
        }
    }
    if !any_runnable {
        on_terminal(claims);
        return 1;
    }
    schedules
}

fn run_model(proto: Worker, workers: usize, tasks: usize) -> (u64, u64, u64) {
    let shared = Shared { counter: 0 };
    let team: Vec<Worker> = (0..workers).map(|_| proto.clone()).collect();
    let mut claims = vec![0usize; tasks];
    let (mut terminals, mut violations) = (0u64, 0u64);
    let schedules = explore(&shared, &team, tasks, &mut claims, &mut |claims| {
        terminals += 1;
        if claims.iter().any(|&c| c != 1) {
            violations += 1;
        }
    });
    assert_eq!(schedules, terminals);
    (schedules, terminals, violations)
}

/// The shipped single-step protocol: under *every* interleaving of
/// 2 and 3 workers over small task sets, each index is claimed exactly
/// once — so the index-ordered merge is the identity permutation and
/// worker count can never show in the output.
#[test]
fn fetch_add_dispatch_has_no_double_claim_in_any_interleaving() {
    for (workers, tasks, min_schedules) in [(2, 3, 10), (3, 3, 100), (2, 5, 50)] {
        let (schedules, _, violations) = run_model(Worker::FetchAdd, workers, tasks);
        assert!(
            schedules >= min_schedules,
            "explorer degenerated: {schedules} schedules for {workers}w/{tasks}t"
        );
        assert_eq!(
            violations, 0,
            "double- or missed-claim among {schedules} schedules ({workers}w/{tasks}t)"
        );
    }
}

/// Harness self-test: split the claim into load-then-store and the
/// explorer MUST find schedules where two workers claim the same
/// index. If this stops failing for the broken protocol, the explorer
/// is no longer exhaustive and the green test above proves nothing.
#[test]
fn split_load_store_dispatch_is_caught_double_claiming() {
    let (schedules, _, violations) = run_model(Worker::Load, 2, 3);
    assert!(schedules >= 10, "explorer degenerated: {schedules}");
    assert!(
        violations > 0,
        "broken two-step protocol survived all {schedules} schedules — explorer is unsound"
    );
}

/// The merge step itself, run against the real pool API: claims from a
/// real threaded run always merge to the identity, and the tracked
/// per-worker counts partition the task set.
#[test]
fn real_pool_merge_is_identity_partition() {
    for workers in [2usize, 3, 4] {
        let (out, counts) = wm_pool::run_indexed_tracked(97, workers, |i| i);
        assert_eq!(out, (0..97).collect::<Vec<_>>(), "workers = {workers}");
        assert_eq!(counts.iter().sum::<usize>(), 97, "workers = {workers}");
    }
}
