//! Cross-crate call graph over the item view.
//!
//! Nodes are `fn` items from every workspace source file
//! ([`crate::items`]); edges are resolved call sites. Resolution is
//! deliberately an *over-approximation*: a method call `.name(..)`
//! edges to every method of that name visible from the calling crate
//! (its own items plus direct dependencies), because the lexer-level
//! view has no types. For the transitive rule families
//! ([`crate::rules_v2`]) this is the safe direction — reachability may
//! include a function the runtime never visits, but can only miss one
//! through a construct the parser does not model (macros generating
//! calls, function pointers stored in fields), which the token-level
//! v1 rules still cover.

use crate::items::{Annotation, Call, CallSite, FnItem, SourceItems};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One analyzed source file, as handed to the graph builder.
pub struct FileItems {
    /// Package name, e.g. `wm-tls`.
    pub crate_name: String,
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    pub items: SourceItems,
}

/// One function node.
pub struct FnNode {
    /// Package name (`wm-tls`).
    pub crate_name: String,
    /// Crate identifier as written in paths (`wm_tls`).
    pub crate_ident: String,
    /// `crate_ident::[Type::]name` — the display/lookup name.
    pub qualified: String,
    pub file: String,
    pub item: FnItem,
    /// Index of the owning [`FileItems`] in the builder's input.
    pub file_index: usize,
}

impl FnNode {
    pub fn has_annotation(&self, kind: Annotation) -> bool {
        self.item.has_annotation(kind)
    }
}

/// The workspace call graph.
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[caller]` is a sorted, deduplicated callee list.
    pub edges: Vec<Vec<usize>>,
}

/// Result of a reachability sweep.
pub struct Reachability {
    /// Reached node ids, in BFS order (roots first).
    pub order: Vec<usize>,
    /// `parent[id]` is the node `id` was reached from (`None` for roots
    /// and unreached nodes).
    parent: Vec<Option<usize>>,
    reached: Vec<bool>,
}

impl Reachability {
    pub fn contains(&self, id: usize) -> bool {
        self.reached[id]
    }

    /// Human-readable call chain `root -> … -> node`, for diagnostics.
    pub fn chain(&self, graph: &CallGraph, id: usize) -> String {
        let mut names = vec![graph.nodes[id].qualified.clone()];
        let mut cur = id;
        while let Some(p) = self.parent[cur] {
            names.push(graph.nodes[p].qualified.clone());
            cur = p;
        }
        names.reverse();
        names.join(" -> ")
    }
}

impl CallGraph {
    /// Build the graph. `deps` maps each crate name to its declared
    /// dependency names (all sections), scoping call resolution.
    pub fn build(files: &[FileItems], deps: &BTreeMap<String, Vec<String>>) -> CallGraph {
        let mut nodes = Vec::new();
        for (file_index, f) in files.iter().enumerate() {
            let crate_ident = f.crate_name.replace('-', "_");
            for item in &f.items.fns {
                let qualified = match &item.self_type {
                    Some(t) => format!("{crate_ident}::{t}::{}", item.name),
                    None => format!("{crate_ident}::{}", item.name),
                };
                nodes.push(FnNode {
                    crate_name: f.crate_name.clone(),
                    crate_ident: crate_ident.clone(),
                    qualified,
                    file: f.rel_path.clone(),
                    item: item.clone(),
                    file_index,
                });
            }
        }

        let index = NameIndex::build(&nodes);
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
        for (id, node) in nodes.iter().enumerate() {
            let file = &files[node.file_index];
            let visible = visible_crates(&node.crate_name, deps);
            let mut out = BTreeSet::new();
            for call in &node.item.calls {
                index.resolve(call, node, &file.items, &visible, &mut out);
            }
            out.remove(&id); // self-recursion adds nothing to reachability
            edges.push(out.into_iter().collect());
        }
        CallGraph { nodes, edges }
    }

    /// Node ids whose qualified name is exactly `qualified`.
    pub fn find(&self, qualified: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.qualified == qualified)
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS from `roots`; `barrier` nodes terminate traversal — they are
    /// not entered and not reported as reached (approved boundaries).
    pub fn reach(&self, roots: &[usize], barrier: impl Fn(&FnNode) -> bool) -> Reachability {
        let mut reached = vec![false; self.nodes.len()];
        let mut parent = vec![None; self.nodes.len()];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        for &r in roots {
            if !reached[r] && !barrier(&self.nodes[r]) {
                reached[r] = true;
                queue.push_back(r);
                order.push(r);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for &next in &self.edges[cur] {
                if reached[next] || barrier(&self.nodes[next]) {
                    continue;
                }
                reached[next] = true;
                parent[next] = Some(cur);
                order.push(next);
                queue.push_back(next);
            }
        }
        Reachability {
            order,
            parent,
            reached,
        }
    }

    /// Total edge count (for summaries).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// The calling crate plus its direct workspace dependencies.
fn visible_crates(crate_name: &str, deps: &BTreeMap<String, Vec<String>>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    out.insert(crate_name.to_string());
    if let Some(d) = deps.get(crate_name) {
        out.extend(d.iter().cloned());
    }
    out
}

/// Name indexes over the node list. Each entry carries the node's crate
/// name so resolution can scope candidates to the caller's view.
struct NameIndex {
    /// method name -> (crate name, id) of every `impl`/`trait` method
    methods: BTreeMap<String, Vec<(String, usize)>>,
    /// (crate_ident, fn name) -> ids of free fns
    free: BTreeMap<(String, String), Vec<usize>>,
    /// (crate_ident, type name, fn name) -> ids
    typed: BTreeMap<(String, String, String), Vec<usize>>,
    /// crate_name -> crate_ident for every crate with nodes
    idents: BTreeMap<String, String>,
}

impl NameIndex {
    fn build(nodes: &[FnNode]) -> NameIndex {
        let mut ix = NameIndex {
            methods: BTreeMap::new(),
            free: BTreeMap::new(),
            typed: BTreeMap::new(),
            idents: BTreeMap::new(),
        };
        for (id, n) in nodes.iter().enumerate() {
            ix.idents
                .insert(n.crate_name.clone(), n.crate_ident.clone());
            match &n.item.self_type {
                Some(t) => {
                    ix.methods
                        .entry(n.item.name.clone())
                        .or_default()
                        .push((n.crate_name.clone(), id));
                    ix.typed
                        .entry((n.crate_ident.clone(), t.clone(), n.item.name.clone()))
                        .or_default()
                        .push(id);
                }
                None => {
                    ix.free
                        .entry((n.crate_ident.clone(), n.item.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        ix
    }

    fn resolve(
        &self,
        call: &CallSite,
        caller: &FnNode,
        file: &SourceItems,
        visible: &BTreeSet<String>,
        out: &mut BTreeSet<usize>,
    ) {
        match &call.call {
            Call::Method(name) => {
                if let Some(entries) = self.methods.get(name) {
                    out.extend(
                        entries
                            .iter()
                            .filter(|(krate, _)| visible.contains(krate))
                            .map(|(_, id)| *id),
                    );
                }
            }
            Call::Path(segs) => self.resolve_path(segs, caller, file, visible, out, 0),
        }
    }

    /// Resolve a path call. Tried in order:
    /// 1. leading `crate`/`self`/`super` keywords strip to the caller's
    ///    own crate;
    /// 2. a `use` alias on the first segment expands to its full path;
    /// 3. a first segment naming a workspace crate ident scopes the
    ///    rest to that crate;
    /// 4. `Self::name` uses the enclosing type;
    /// 5. otherwise the path is local: `name(..)` is a free fn in the
    ///    caller's crate, `Type::name(..)` a typed fn in any visible
    ///    crate (types are imported cross-crate), `module::name(..)` a
    ///    free fn.
    fn resolve_path(
        &self,
        segs: &[String],
        caller: &FnNode,
        file: &SourceItems,
        visible: &BTreeSet<String>,
        out: &mut BTreeSet<usize>,
        depth: usize,
    ) {
        // Alias expansion can cycle (`use crate::foo;` expands `foo`
        // back to itself after keyword stripping); one extra hop is all
        // legitimate imports need.
        if depth > 2 {
            return;
        }
        let mut segs: Vec<String> = segs.to_vec();
        while segs
            .first()
            .is_some_and(|s| s == "crate" || s == "self" || s == "super")
        {
            segs.remove(0);
        }
        let Some(first) = segs.first().cloned() else {
            return;
        };

        // `use` alias expansion (only when it lengthens the path —
        // `use wm_tls::Connection` then `Connection::new` becomes
        // `wm_tls::Connection::new`).
        if segs.len() <= 2 {
            if let Some(u) = file.uses.iter().find(|u| u.alias == first) {
                let expanded: Vec<String> = u
                    .path
                    .iter()
                    .cloned()
                    .chain(segs.iter().skip(1).cloned())
                    .collect();
                if expanded.len() > segs.len() {
                    self.resolve_path(&expanded, caller, file, visible, out, depth + 1);
                    return;
                }
            }
        }

        // Crate-qualified path.
        if self.idents.values().any(|ident| *ident == first) {
            let crate_ident = first;
            match segs.len() {
                2 => self.add_free(&crate_ident, &segs[1], out),
                n if n >= 3 => {
                    // `krate::Type::name` or `krate::module::name` —
                    // the tail two segments decide.
                    self.add_typed(&crate_ident, &segs[n - 2], &segs[n - 1], out);
                    self.add_free(&crate_ident, &segs[n - 1], out);
                }
                _ => {}
            }
            return;
        }

        if first == "Self" {
            if let (Some(t), Some(name)) = (&caller.item.self_type, segs.get(1)) {
                self.add_typed(&caller.crate_ident, t, name, out);
            }
            return;
        }

        match segs.len() {
            1 => self.add_free(&caller.crate_ident, &segs[0], out),
            _ => {
                let (ty_or_mod, name) = (&segs[segs.len() - 2], &segs[segs.len() - 1]);
                // `Type::assoc(..)` — the type may live in any visible
                // crate (imported via `use`), so try them all.
                for krate in visible {
                    if let Some(ident) = self.idents.get(krate) {
                        self.add_typed(&ident.clone(), ty_or_mod, name, out);
                    }
                }
                // `module::free_fn(..)` within the caller's crate.
                self.add_free(&caller.crate_ident, name, out);
            }
        }
    }

    fn add_free(&self, crate_ident: &str, name: &str, out: &mut BTreeSet<usize>) {
        if let Some(ids) = self.free.get(&(crate_ident.to_string(), name.to_string())) {
            out.extend(ids);
        }
    }

    fn add_typed(&self, crate_ident: &str, ty: &str, name: &str, out: &mut BTreeSet<usize>) {
        if let Some(ids) =
            self.typed
                .get(&(crate_ident.to_string(), ty.to_string(), name.to_string()))
        {
            out.extend(ids);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn file(crate_name: &str, rel_path: &str, src: &str) -> FileItems {
        let lexed = lex(src);
        FileItems {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            items: parse_items(&lexed.tokens, &lexed.comments),
        }
    }

    fn deps(pairs: &[(&str, &[&str])]) -> BTreeMap<String, Vec<String>> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.iter().map(|s| s.to_string()).collect()))
            .collect()
    }

    fn edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let froms = g.find(from);
        let tos = g.find(to);
        froms
            .iter()
            .any(|f| g.edges[*f].iter().any(|t| tos.contains(t)))
    }

    #[test]
    fn free_fn_call_resolves_within_crate() {
        let g = CallGraph::build(
            &[file(
                "wm-a",
                "crates/a/src/lib.rs",
                "fn top() { helper(); } fn helper() {}",
            )],
            &deps(&[]),
        );
        assert!(edge(&g, "wm_a::top", "wm_a::helper"));
    }

    #[test]
    fn crate_qualified_call_crosses_crates() {
        let g = CallGraph::build(
            &[
                file(
                    "wm-a",
                    "crates/a/src/lib.rs",
                    "fn top() { wm_b::entry(1); }",
                ),
                file("wm-b", "crates/b/src/lib.rs", "pub fn entry(x: u8) {}"),
            ],
            &deps(&[("wm-a", &["wm-b"])]),
        );
        assert!(edge(&g, "wm_a::top", "wm_b::entry"));
    }

    #[test]
    fn method_call_resolves_in_visible_crates_only() {
        let srcs = "impl T { fn go(&self) {} }";
        let g = CallGraph::build(
            &[
                file("wm-a", "crates/a/src/lib.rs", "fn top(t: T) { t.go(); }"),
                file("wm-b", "crates/b/src/lib.rs", srcs),
                file("wm-c", "crates/c/src/lib.rs", srcs),
            ],
            &deps(&[("wm-a", &["wm-b"])]),
        );
        assert!(edge(&g, "wm_a::top", "wm_b::T::go"));
        assert!(!edge(&g, "wm_a::top", "wm_c::T::go"));
    }

    #[test]
    fn use_alias_expands_type_paths() {
        let g = CallGraph::build(
            &[
                file(
                    "wm-a",
                    "crates/a/src/lib.rs",
                    "use wm_b::Connection; fn top() { Connection::new(); }",
                ),
                file(
                    "wm-b",
                    "crates/b/src/lib.rs",
                    "impl Connection { pub fn new() -> Self {} }",
                ),
            ],
            &deps(&[("wm-a", &["wm-b"])]),
        );
        assert!(edge(&g, "wm_a::top", "wm_b::Connection::new"));
    }

    #[test]
    fn self_calls_resolve_to_enclosing_type() {
        let g = CallGraph::build(
            &[file(
                "wm-a",
                "crates/a/src/lib.rs",
                "impl W { fn a(&self) { Self::b(); self.c(); } fn b() {} fn c(&self) {} }",
            )],
            &deps(&[]),
        );
        assert!(edge(&g, "wm_a::W::a", "wm_a::W::b"));
        assert!(edge(&g, "wm_a::W::a", "wm_a::W::c"));
    }

    #[test]
    fn reachability_stops_at_barriers() {
        let g = CallGraph::build(
            &[file(
                "wm-a",
                "crates/a/src/lib.rs",
                "fn root() { mid(); }\n\
                 // wm-lint: alloc-ok(reason = \"amortized\")\n\
                 fn mid() { leaf(); }\n\
                 fn leaf() {}",
            )],
            &deps(&[]),
        );
        let roots = g.find("wm_a::root");
        let r = g.reach(&roots, |n| n.has_annotation(Annotation::AllocOk));
        assert!(r.contains(g.find("wm_a::root")[0]));
        assert!(!r.contains(g.find("wm_a::mid")[0]));
        assert!(!r.contains(g.find("wm_a::leaf")[0]));
    }

    #[test]
    fn chain_reports_the_call_path() {
        let g = CallGraph::build(
            &[file(
                "wm-a",
                "crates/a/src/lib.rs",
                "fn root() { mid(); } fn mid() { leaf(); } fn leaf() {}",
            )],
            &deps(&[]),
        );
        let r = g.reach(&g.find("wm_a::root"), |_| false);
        let leaf = g.find("wm_a::leaf")[0];
        assert!(r.contains(leaf));
        assert_eq!(r.chain(&g, leaf), "wm_a::root -> wm_a::mid -> wm_a::leaf");
    }

    #[test]
    fn closure_bodies_attribute_calls_to_enclosing_fn() {
        let g = CallGraph::build(
            &[file(
                "wm-a",
                "crates/a/src/lib.rs",
                "fn top() { run(|i| inner(i)); } fn inner(i: usize) {} fn run(f: impl Fn(usize)) {}",
            )],
            &deps(&[]),
        );
        assert!(edge(&g, "wm_a::top", "wm_a::inner"));
    }
}
