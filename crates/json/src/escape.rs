//! JSON string escaping.
//!
//! The escaping rules match what `JSON.stringify` produces in mainstream
//! browser engines (the players whose traffic the paper captures):
//!
//! * `"` and `\` are escaped with a backslash;
//! * the named control escapes `\b \t \n \f \r` are used where defined;
//! * remaining C0 controls use `\u00XX`;
//! * everything else — including non-ASCII — is emitted verbatim (UTF-8).

/// Number of bytes `s` occupies once escaped (excluding the surrounding
/// quotes).
pub fn escaped_len(s: &str) -> usize {
    s.bytes().map(escaped_byte_len).sum()
}

fn escaped_byte_len(b: u8) -> usize {
    match b {
        b'"' | b'\\' | 0x08 | 0x09 | 0x0a | 0x0c | 0x0d => 2,
        0x00..=0x1f => 6,
        _ => 1,
    }
}

/// Append the escaped form of `s` (no surrounding quotes) to `out`.
pub fn escape_into(s: &str, out: &mut Vec<u8>) {
    for &b in s.as_bytes() {
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            0x08 => out.extend_from_slice(b"\\b"),
            0x09 => out.extend_from_slice(b"\\t"),
            0x0a => out.extend_from_slice(b"\\n"),
            0x0c => out.extend_from_slice(b"\\f"),
            0x0d => out.extend_from_slice(b"\\r"),
            0x00..=0x1f => {
                out.extend_from_slice(b"\\u00");
                // wm-lint: allow(panic/index, reason = "nibble index is masked to 0..16")
                out.push(HEX[(b >> 4) as usize]);
                // wm-lint: allow(panic/index, reason = "nibble index is masked to 0..16")
                out.push(HEX[(b & 0xf) as usize]);
            }
            _ => out.push(b),
        }
    }
}

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Decode an escaped string body (the bytes between the quotes).
///
/// Returns `None` on malformed escapes. Surrogate-pair `\uXXXX` escapes
/// for non-BMP characters are supported because the parser must accept
/// anything the serializer — or a hand-written test vector — produces.
pub fn unescape(body: &[u8]) -> Option<String> {
    let mut out = String::with_capacity(body.len());
    let mut i = 0;
    while let Some(&b) = body.get(i) {
        if b != b'\\' {
            // Validate UTF-8 incrementally by slicing at char boundaries.
            let rest = std::str::from_utf8(body.get(i..)?).ok()?;
            let ch = rest.chars().next()?;
            out.push(ch);
            i += ch.len_utf8();
            continue;
        }
        i += 1;
        let esc = *body.get(i)?;
        i += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b't' => out.push('\t'),
            b'n' => out.push('\n'),
            b'f' => out.push('\u{c}'),
            b'r' => out.push('\r'),
            b'u' => {
                let hi = parse_hex4(body.get(i..i + 4)?)?;
                i += 4;
                if (0xd800..0xdc00).contains(&hi) {
                    // High surrogate: must be followed by \uXXXX low surrogate.
                    if body.get(i) != Some(&b'\\') || body.get(i + 1) != Some(&b'u') {
                        return None;
                    }
                    let lo = parse_hex4(body.get(i + 2..i + 6)?)?;
                    i += 6;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return None;
                    }
                    let cp = 0x10000 + (((hi - 0xd800) as u32) << 10) + (lo - 0xdc00) as u32;
                    out.push(char::from_u32(cp)?);
                } else if (0xdc00..0xe000).contains(&hi) {
                    return None; // lone low surrogate
                } else {
                    out.push(char::from_u32(hi as u32)?);
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

fn parse_hex4(bytes: &[u8]) -> Option<u16> {
    let mut v: u16 = 0;
    for &b in bytes {
        let d = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            b'A'..=b'F' => b - b'A' + 10,
            _ => return None,
        };
        v = v.checked_mul(16)?.checked_add(d as u16)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc(s: &str) -> Vec<u8> {
        let mut out = Vec::new();
        escape_into(s, &mut out);
        out
    }

    #[test]
    fn plain_ascii_passthrough() {
        assert_eq!(esc("hello world"), b"hello world");
        assert_eq!(escaped_len("hello world"), 11);
    }

    #[test]
    fn quotes_and_backslashes() {
        assert_eq!(esc(r#"a"b\c"#), br#"a\"b\\c"#);
        assert_eq!(escaped_len(r#"a"b\c"#), 7);
    }

    #[test]
    fn named_controls() {
        assert_eq!(esc("\u{8}\t\n\u{c}\r"), b"\\b\\t\\n\\f\\r");
        assert_eq!(escaped_len("\u{8}\t\n\u{c}\r"), 10);
    }

    #[test]
    fn other_controls_use_u00xx() {
        assert_eq!(esc("\u{1}"), b"\\u0001");
        assert_eq!(esc("\u{1f}"), b"\\u001f");
        assert_eq!(escaped_len("\u{0}"), 6);
    }

    #[test]
    fn non_ascii_verbatim() {
        assert_eq!(esc("héllo"), "héllo".as_bytes());
        assert_eq!(escaped_len("héllo"), "héllo".len());
    }

    #[test]
    fn unescape_roundtrip() {
        for s in [
            "",
            "plain",
            r#"q"uo\te"#,
            "tab\tnl\n",
            "\u{1}\u{1f}",
            "héllo 世界",
        ] {
            let escaped = esc(s);
            assert_eq!(unescape(&escaped).as_deref(), Some(s), "roundtrip {s:?}");
        }
    }

    #[test]
    fn unescape_surrogate_pair() {
        let escaped: &[u8] = b"\\ud83d\\ude00";
        assert_eq!(unescape(escaped).as_deref(), Some("\u{1f600}"));
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert!(unescape(br"\x").is_none());
        assert!(unescape(br"\u12").is_none());
        assert!(unescape(br"\ud83d").is_none()); // lone high surrogate
        assert!(unescape(br"\udc00").is_none()); // lone low surrogate
        assert!(unescape(b"\xff").is_none()); // invalid UTF-8
    }
}
