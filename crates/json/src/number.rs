//! JSON number representation and decimal formatting.

use std::fmt;

/// A JSON number.
///
/// The simulated Netflix player only ever emits two shapes of number:
/// signed integers (timestamps in milliseconds, segment indices, byte
/// offsets) and fixed-point values with exactly three fractional digits
/// (playback positions in seconds). Restricting [`Number`] to these two
/// shapes keeps serialization total: every representable number has
/// exactly one textual form, so `serialized_len` can be computed without
/// allocating.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Number {
    /// An integer, serialized as its decimal digits (`-?[0-9]+`).
    Int(i64),
    /// A fixed-point value with three fractional digits, stored as the
    /// value multiplied by 1000. `Fixed3(1234)` serializes as `1.234`.
    Fixed3(i64),
}

impl Number {
    /// Number of bytes this number occupies when serialized.
    pub fn serialized_len(&self) -> usize {
        match *self {
            Number::Int(v) => (v < 0) as usize + dec_len_u64(v.unsigned_abs()),
            Number::Fixed3(v) => {
                // sign + integral digits + '.' + exactly 3 fraction digits
                let neg = v < 0;
                let abs = v.unsigned_abs();
                let int_part = abs / 1000;
                (neg as usize) + dec_len_u64(int_part) + 1 + 3
            }
        }
    }

    /// Append the canonical textual form to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        match *self {
            Number::Int(v) => {
                let mut buf = [0u8; 20];
                let s = fmt_i64(v, &mut buf);
                out.extend_from_slice(s);
            }
            Number::Fixed3(v) => {
                if v < 0 {
                    out.push(b'-');
                }
                let abs = v.unsigned_abs();
                let mut buf = [0u8; 20];
                let s = fmt_u64(abs / 1000, &mut buf);
                out.extend_from_slice(s);
                out.push(b'.');
                let frac = (abs % 1000) as u32;
                out.push(b'0' + (frac / 100) as u8);
                out.push(b'0' + (frac / 10 % 10) as u8);
                out.push(b'0' + (frac % 10) as u8);
            }
        }
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = Vec::new();
        self.write_to(&mut buf);
        // `write_to` emits pure ASCII, so the lossy conversion never
        // actually substitutes anything.
        f.write_str(&String::from_utf8_lossy(&buf))
    }
}

/// Number of decimal digits in `v` (1 for 0).
pub(crate) fn dec_len_u64(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 10 {
        v /= 10;
        n += 1;
    }
    n
}

fn fmt_u64(mut v: u64, buf: &mut [u8; 20]) -> &[u8] {
    let mut start = buf.len();
    for slot in buf.iter_mut().rev() {
        *slot = b'0' + (v % 10) as u8;
        start -= 1;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf.get(start..).unwrap_or_default()
}

fn fmt_i64(v: i64, buf: &mut [u8; 20]) -> &[u8] {
    if v >= 0 {
        return fmt_u64(v as u64, buf);
    }
    let digits_len = fmt_u64(v.unsigned_abs(), buf).len();
    // An i64 magnitude has at most 19 digits, so the 20-byte buffer
    // always leaves a slot for the sign.
    let sign = (buf.len() - digits_len).saturating_sub(1);
    if let Some(slot) = buf.get_mut(sign) {
        *slot = b'-';
    }
    buf.get(sign..).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_lengths() {
        for v in [0i64, 1, 9, 10, 99, 100, -1, -10, i64::MAX, i64::MIN] {
            assert_eq!(
                Number::Int(v).serialized_len(),
                v.to_string().len(),
                "len mismatch for {v}"
            );
        }
    }

    #[test]
    fn int_text() {
        for v in [0i64, 7, 42, -42, 1000, i64::MAX, i64::MIN] {
            let mut out = Vec::new();
            Number::Int(v).write_to(&mut out);
            assert_eq!(out, v.to_string().into_bytes());
        }
    }

    #[test]
    fn fixed3_text() {
        let cases = [
            (0i64, "0.000"),
            (1, "0.001"),
            (999, "0.999"),
            (1000, "1.000"),
            (1234, "1.234"),
            (-1234, "-1.234"),
            (-5, "-0.005"),
            (123_456_789, "123456.789"),
        ];
        for (v, want) in cases {
            let mut out = Vec::new();
            Number::Fixed3(v).write_to(&mut out);
            assert_eq!(out, want.as_bytes(), "for {v}");
            assert_eq!(
                Number::Fixed3(v).serialized_len(),
                want.len(),
                "len for {v}"
            );
        }
    }

    #[test]
    fn debug_formats_like_text() {
        assert_eq!(format!("{:?}", Number::Int(-3)), "-3");
        assert_eq!(format!("{:?}", Number::Fixed3(1500)), "1.500");
    }
}
