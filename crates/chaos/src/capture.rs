//! Capture-side impairments: faults in the *attacker's* tap, not the
//! victim's network.
//!
//! [`FaultPlan`](crate::FaultPlan) perturbs the session itself; the
//! impairments here leave the session untouched and degrade only what
//! the eavesdropper records — the difference between a bad network day
//! and a bad monitoring rig. The taxonomy matches what commodity
//! capture hardware actually does wrong:
//!
//! - **Reorder**: timestamps jitter inside a bounded window (multi-queue
//!   NICs deliver out of order), so packets arrive shuffled.
//! - **Truncation**: a snaplen clips frame tails, losing record bytes
//!   while the headers survive.
//! - **Duplicate delivery**: span ports and port mirrors happily emit
//!   the same frame twice.
//! - **Mid-session attach**: the tap comes up after the movie started
//!   and the capture opens mid-record.
//! - **Attacker crash**: the capture process dies at a packet index and
//!   restarts from a checkpoint ([`kill_index`]).
//!
//! Everything is deterministic in `(seed, impairment, input)`; like
//! `FaultPlan::generate`, the RNG is labelled so impairing a capture
//! never perturbs any other subsystem's stream. The functions operate
//! on plain `(micros, frame-bytes)` pairs — wm-chaos sits below
//! wm-capture in the layering, so it never sees a `Trace` directly.

use wm_cipher::kdf::derive_seed;
use wm_net::rng::SimRng;

/// One captured packet as the tap hands it over: timestamp in
/// microseconds plus the raw frame bytes.
pub type TapPacket = (u64, Vec<u8>);

/// Capture impairment profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureImpairment {
    /// Probability each packet's timestamp is displaced.
    pub reorder_prob: f64,
    /// Maximum displacement (µs) of a reordered packet, either
    /// direction. Delivery order follows the displaced timestamps.
    pub reorder_jitter_us: u64,
    /// Probability a frame's tail is clipped to `snaplen`.
    pub truncate_prob: f64,
    /// Snaplen applied to clipped frames (bytes kept).
    pub snaplen: usize,
    /// Probability a packet is delivered twice.
    pub duplicate_prob: f64,
    /// Fraction of the capture the tap missed before attaching
    /// (0.0 = attached from the first packet).
    pub attach_fraction: f64,
}

impl CaptureImpairment {
    /// The identity impairment: output is byte-identical to the input.
    pub fn none() -> Self {
        CaptureImpairment {
            reorder_prob: 0.0,
            reorder_jitter_us: 0,
            truncate_prob: 0.0,
            snaplen: usize::MAX,
            duplicate_prob: 0.0,
            attach_fraction: 0.0,
        }
    }

    /// Severity-scaled profile for sweeps; `intensity` is clamped to
    /// `[0, 8]` and 0.0 yields [`CaptureImpairment::none`]. Matches the
    /// `FaultPlan::generate` convention so the two intensity axes read
    /// the same in bench reports.
    pub fn at_intensity(intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 8.0);
        if i == 0.0 {
            return CaptureImpairment::none();
        }
        CaptureImpairment {
            reorder_prob: (0.04 * i).min(0.6),
            reorder_jitter_us: (3_000.0 * i) as u64,
            truncate_prob: (0.01 * i).min(0.25),
            // Headers (66 bytes) plus a sliver of payload survive.
            snaplen: 96,
            duplicate_prob: (0.03 * i).min(0.5),
            attach_fraction: 0.0,
        }
    }

    /// True when applying this impairment is the identity.
    pub fn is_none(&self) -> bool {
        self.reorder_prob <= 0.0
            && self.truncate_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.attach_fraction <= 0.0
    }
}

/// What an impairment pass actually did, for reports and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpairStats {
    pub reordered: u64,
    pub truncated: u64,
    pub duplicated: u64,
    pub dropped_before_attach: u64,
}

/// Apply a capture impairment to a packet stream.
///
/// Returns the impaired stream (sorted by displaced timestamp; ties
/// keep source order, so the pass is fully deterministic) plus the
/// tally of what was done. The input is never mutated.
pub fn impair_capture(
    seed: u64,
    imp: &CaptureImpairment,
    packets: &[TapPacket],
) -> (Vec<TapPacket>, ImpairStats) {
    let mut stats = ImpairStats::default();
    if imp.is_none() {
        return (packets.to_vec(), stats);
    }
    let mut rng = SimRng::new(derive_seed(seed, "chaos capture"));
    let skip = ((packets.len() as f64) * imp.attach_fraction.clamp(0.0, 1.0)).floor() as usize;
    let mut out: Vec<TapPacket> = Vec::with_capacity(packets.len() + 8);
    for (i, (time, frame)) in packets.iter().enumerate() {
        if i < skip {
            stats.dropped_before_attach += 1;
            continue;
        }
        let mut frame = frame.clone();
        if rng.chance(imp.truncate_prob) && frame.len() > imp.snaplen {
            frame.truncate(imp.snaplen);
            stats.truncated += 1;
        }
        let mut time = *time;
        if rng.chance(imp.reorder_prob) && imp.reorder_jitter_us > 0 {
            let shift = rng.uniform_u64(1, imp.reorder_jitter_us);
            if rng.chance(0.5) {
                time = time.saturating_sub(shift);
            } else {
                time += shift;
            }
            stats.reordered += 1;
        }
        let dup = rng.chance(imp.duplicate_prob);
        out.push((time, frame.clone()));
        if dup {
            out.push((time, frame));
            stats.duplicated += 1;
        }
    }
    // Delivery follows the (displaced) timestamps; stable sort keeps
    // the duplicate right behind its original.
    out.sort_by_key(|p| p.0);
    (out, stats)
}

/// Seeded packet index at which the attacker process dies in
/// crash/restart drills: deterministic in `(seed, packets)` and always
/// inside the middle half of the capture so the kill lands while
/// decoding is underway.
pub fn kill_index(seed: u64, packets: usize) -> usize {
    if packets < 4 {
        return packets / 2;
    }
    let mut rng = SimRng::new(derive_seed(seed, "chaos kill"));
    rng.uniform_u64(packets as u64 / 4, packets as u64 * 3 / 4) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<TapPacket> {
        (0..n)
            .map(|i| (i as u64 * 10_000, vec![i as u8; 120]))
            .collect()
    }

    #[test]
    fn none_is_identity() {
        let pkts = sample(16);
        let (out, stats) = impair_capture(7, &CaptureImpairment::none(), &pkts);
        assert_eq!(out, pkts);
        assert_eq!(stats, ImpairStats::default());
        assert!(CaptureImpairment::at_intensity(0.0).is_none());
    }

    #[test]
    fn impair_is_deterministic() {
        let pkts = sample(64);
        let imp = CaptureImpairment::at_intensity(3.0);
        let (a, sa) = impair_capture(42, &imp, &pkts);
        let (b, sb) = impair_capture(42, &imp, &pkts);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = impair_capture(43, &imp, &pkts);
        assert_ne!(a, c, "seed must decorrelate impairments");
    }

    #[test]
    fn output_is_time_sorted_and_jitter_bounded() {
        let pkts = sample(128);
        let imp = CaptureImpairment::at_intensity(4.0);
        let (out, stats) = impair_capture(9, &imp, &pkts);
        for w in out.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(stats.reordered > 0, "intensity 4 should reorder something");
        // Every output timestamp stays within the jitter window of an
        // input timestamp.
        for (t, _) in &out {
            let near = pkts
                .iter()
                .any(|(ot, _)| t.abs_diff(*ot) <= imp.reorder_jitter_us);
            assert!(near, "timestamp {t} outside jitter window");
        }
    }

    #[test]
    fn truncation_clips_to_snaplen() {
        let pkts = sample(256);
        let imp = CaptureImpairment {
            truncate_prob: 1.0,
            snaplen: 80,
            ..CaptureImpairment::none()
        };
        let (out, stats) = impair_capture(5, &imp, &pkts);
        assert_eq!(stats.truncated, 256);
        assert!(out.iter().all(|(_, f)| f.len() == 80));
    }

    #[test]
    fn attach_drops_prefix_only() {
        let pkts = sample(100);
        let imp = CaptureImpairment {
            attach_fraction: 0.3,
            ..CaptureImpairment::none()
        };
        let (out, stats) = impair_capture(5, &imp, &pkts);
        assert_eq!(stats.dropped_before_attach, 30);
        assert_eq!(out.len(), 70);
        assert_eq!(out.first().map(|p| p.0), Some(30 * 10_000));
    }

    #[test]
    fn duplicates_are_adjacent() {
        let pkts = sample(40);
        let imp = CaptureImpairment {
            duplicate_prob: 1.0,
            ..CaptureImpairment::none()
        };
        let (out, stats) = impair_capture(11, &imp, &pkts);
        assert_eq!(stats.duplicated, 40);
        assert_eq!(out.len(), 80);
        for pair in out.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn kill_index_is_seeded_and_central() {
        for seed in 0..16u64 {
            let k = kill_index(seed, 1000);
            assert_eq!(k, kill_index(seed, 1000));
            assert!((250..=750).contains(&k), "kill index {k} not central");
        }
        assert_eq!(kill_index(1, 0), 0);
        assert_eq!(kill_index(1, 3), 1);
    }
}
