//! WM20: a ChaCha-style ARX stream cipher.
//!
//! State layout follows ChaCha20 (RFC 8439): four constant words, eight
//! key words, one 32-bit block counter and three nonce words. We run 8
//! ARX double-rounds (ChaCha20 runs 10); the structure — and therefore
//! the keystream/length behaviour the record layer depends on — is
//! identical.

use crate::{Key, Nonce};

const CONSTANTS: [u32; 4] = [0x7769_7465, 0x6d69_7272, 0x6f72_2d77, 0x6d32_3030];
const DOUBLE_ROUNDS: usize = 8;

/// Stream cipher instance bound to a key and nonce.
///
/// The cipher is symmetric: [`Wm20::apply`] both encrypts and decrypts.
#[derive(Clone)]
pub struct Wm20 {
    key_words: [u32; 8],
    nonce_words: [u32; 3],
}

impl Wm20 {
    /// Create a cipher instance for one (key, nonce) pair.
    pub fn new(key: &Key, nonce: &Nonce) -> Self {
        let mut key_words = [0u32; 8];
        for (i, w) in key_words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let mut nonce_words = [0u32; 3];
        for (i, w) in nonce_words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        Wm20 {
            key_words,
            nonce_words,
        }
    }

    /// Produce the 64-byte keystream block for `counter`.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce_words);

        let initial = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let w = state[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// XOR the keystream (starting at block `initial_counter`) into
    /// `data` in place. Encryption and decryption are the same operation.
    pub fn apply(&self, initial_counter: u32, data: &mut [u8]) {
        let mut counter = initial_counter;
        for chunk in data.chunks_mut(64) {
            let ks = self.block(counter);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    const NONCE: Nonce = [9; 12];

    #[test]
    fn apply_roundtrips() {
        let c = Wm20::new(&key(), &NONCE);
        let original = b"the quick brown fox jumps over the lazy dog, twice over".to_vec();
        let mut data = original.clone();
        c.apply(0, &mut data);
        assert_ne!(data, original, "ciphertext must differ from plaintext");
        c.apply(0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn keystream_depends_on_key_nonce_counter() {
        let c1 = Wm20::new(&key(), &NONCE);
        let mut k2 = key();
        k2[0] ^= 1;
        let c2 = Wm20::new(&k2, &NONCE);
        let mut n2 = NONCE;
        n2[0] ^= 1;
        let c3 = Wm20::new(&key(), &n2);
        assert_ne!(c1.block(0), c2.block(0));
        assert_ne!(c1.block(0), c3.block(0));
        assert_ne!(c1.block(0), c1.block(1));
    }

    #[test]
    fn multi_block_matches_blockwise() {
        let c = Wm20::new(&key(), &NONCE);
        let mut long = vec![0u8; 200];
        c.apply(5, &mut long);
        // Reconstruct from individual keystream blocks.
        let mut expect = Vec::new();
        for (i, chunk) in [0usize, 64, 128, 192]
            .iter()
            .zip([64usize, 64, 64, 8].iter())
        {
            let ks = c.block(5 + (*i as u32) / 64);
            expect.extend_from_slice(&ks[..*chunk]);
        }
        assert_eq!(long, expect);
    }

    #[test]
    fn keystream_has_no_obvious_bias() {
        let c = Wm20::new(&key(), &NONCE);
        let mut ones = 0u32;
        for counter in 0..64 {
            for b in c.block(counter) {
                ones += b.count_ones();
            }
        }
        let total_bits = 64 * 64 * 8;
        let ratio = ones as f64 / total_bits as f64;
        assert!((0.47..0.53).contains(&ratio), "bit bias {ratio}");
    }

    #[test]
    fn empty_input_is_noop() {
        let c = Wm20::new(&key(), &NONCE);
        let mut data: Vec<u8> = vec![];
        c.apply(0, &mut data);
        assert!(data.is_empty());
    }
}
