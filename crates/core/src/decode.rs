//! Choice-sequence decoding from classified record events.
//!
//! The insight from §III of the paper: "the number and type of JSON
//! files sent indicate the choice made by the viewer". Concretely, at
//! every choice point the client emits one type-1 report (question
//! shown), and — iff the pick was non-default — one type-2 report
//! within the ten-second window. The decoder walks the classified
//! event stream:
//!
//! * each type-1 event opens a choice;
//! * a type-2 event inside the window resolves it non-default;
//! * the window closing (the next type-1, or timeout) resolves default.
//!
//! The time-aware variant additionally predicts when the *next*
//! question should appear — the story graph's segment durations are
//! public, and the question always precedes a segment boundary by the
//! fixed window — and inserts a default decision when a type-1 report
//! was lost (tap loss or a flush split). Without it, one missed report
//! desynchronizes every later decision.

use crate::classify::RecordClassifier;
use wm_capture::labels::RecordClass;
use wm_capture::records::TimedRecord;
use wm_capture::time::{Duration, SimTime};
use wm_capture::ContentType;
use wm_story::{Choice, ChoicePointId, SegmentEnd, SegmentId, StoryGraph};

/// The film's choice window, content seconds (public knowledge).
pub const WINDOW_SECS: f64 = 10.0;

/// Decoder tunables.
#[derive(Debug, Clone)]
pub struct DecoderConfig {
    /// The (possibly time-scaled) choice window.
    pub window: Duration,
    /// Time-aware mode: use segment durations to detect missed
    /// questions (recommended; `false` gives the naive event decoder).
    pub time_aware: bool,
    /// The time scale the session was simulated at (1 for real time; an
    /// attacker reads it off the chunk cadence trivially).
    pub time_scale: u32,
}

impl DecoderConfig {
    /// Real-time configuration (10 s window).
    pub fn realtime() -> Self {
        Self::scaled(1)
    }

    /// Configuration for a session simulated at `time_scale`.
    pub fn scaled(time_scale: u32) -> Self {
        DecoderConfig {
            window: Duration::from_secs_f64(WINDOW_SECS / time_scale.max(1) as f64),
            time_aware: true,
            time_scale: time_scale.max(1),
        }
    }
}

/// One decoded decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedChoice {
    pub cp: ChoicePointId,
    pub choice: Choice,
    /// Time of the type-1 event (or the predicted question time if the
    /// report was missed).
    pub time: SimTime,
    /// Whether the question's type-1 report was actually observed.
    pub observed: bool,
    /// How much the evidence supports this decision, in `[0, 1]`.
    /// Observed reports decode at full confidence; inferred decisions
    /// start lower, and capture gaps overlapping the choice window
    /// downgrade it further (see `WhiteMirror::decode_trace`).
    pub confidence: f64,
}

/// Confidence of a decision whose type-1 report was directly observed.
pub const CONFIDENCE_OBSERVED: f64 = 1.0;
/// Confidence of a decision inferred from timing alone (report lost).
pub const CONFIDENCE_INFERRED: f64 = 0.55;
/// Confidence when the event stream ran out entirely (blind fill).
pub const CONFIDENCE_BLIND: f64 = 0.2;

/// Collapse duplicate report events: a browser retry or an injected
/// duplicate POST puts the *same* state JSON on the wire twice, which
/// would otherwise open a phantom choice (naive decoder) or mask a
/// type-2 behind a repeated type-1 (window scan stops at the next
/// type-1). Events of the same class within `window` of the previous
/// kept event of that class are dropped. Panic-free by construction.
pub(crate) fn dedup_report_events(
    events: &[(SimTime, RecordClass)],
    window: Duration,
) -> Vec<(SimTime, RecordClass)> {
    let mut out: Vec<(SimTime, RecordClass)> = Vec::with_capacity(events.len());
    for &(t, class) in events {
        let dup = out
            .iter()
            .rev()
            .find(|(_, c)| *c == class)
            .is_some_and(|&(prev, _)| t.since(prev) <= window);
        if !dup {
            out.push((t, class));
        }
    }
    out
}

/// The graph-walking decoder.
pub struct ChoiceDecoder<'a, C: RecordClassifier + ?Sized> {
    classifier: &'a C,
    graph: &'a StoryGraph,
    cfg: DecoderConfig,
}

impl<'a, C: RecordClassifier + ?Sized> ChoiceDecoder<'a, C> {
    pub fn new(classifier: &'a C, graph: &'a StoryGraph, cfg: DecoderConfig) -> Self {
        ChoiceDecoder {
            classifier,
            graph,
            cfg,
        }
    }

    /// Decode the choice sequence from client application records.
    pub fn decode(&self, records: &[TimedRecord]) -> Vec<DecodedChoice> {
        // Classify once, keep only report events.
        let events: Vec<(SimTime, RecordClass)> = records
            .iter()
            .filter(|r| r.record.content_type == ContentType::ApplicationData)
            .map(|r| (r.time, self.classifier.classify(r.record.length)))
            .filter(|(_, c)| *c != RecordClass::Other)
            .collect();
        // Duplicate suppression: retried/duplicated state POSTs repeat
        // a report class well inside the question-to-question gap.
        let scale = self.cfg.time_scale.max(1) as f64;
        let dedup = Duration::from_secs_f64((self.min_gap_secs() / 3.0).clamp(0.5, 2.0) / scale);
        let events = dedup_report_events(&events, dedup);
        if self.cfg.time_aware {
            let anchor = self.initial_question_time(records, &events);
            self.decode_time_aware(&events, anchor)
        } else {
            self.decode_naive(&events)
        }
    }

    /// Absolute prior for the first question's time: playback starts at
    /// the client's first application record (the manifest fetch), and
    /// the opening segment chain is public knowledge. Falls back to the
    /// first observed type-1 when the capture has no app records at all.
    pub(crate) fn initial_question_time(
        &self,
        records: &[TimedRecord],
        events: &[(SimTime, RecordClass)],
    ) -> SimTime {
        // Playback begins when the manifest *response* lands, which is
        // when the player issues its first chunk request — the second
        // upstream application record (the first is the manifest GET).
        let app_records: Vec<SimTime> = records
            .iter()
            .filter(|r| r.record.content_type == ContentType::ApplicationData)
            .take(2)
            .map(|r| r.time)
            .collect();
        let playback_start = app_records.get(1).or_else(|| app_records.first()).copied();
        match playback_start {
            Some(t) => {
                t + Duration::from_secs_f64(
                    initial_gap_secs(self.graph) / self.cfg.time_scale.max(1) as f64,
                )
            }
            None => events
                .iter()
                .find(|(_, c)| *c == RecordClass::Type1)
                .map(|(t, _)| *t)
                .unwrap_or(SimTime::ZERO),
        }
    }

    /// Naive decoding: consume type-1 events strictly in order.
    fn decode_naive(&self, events: &[(SimTime, RecordClass)]) -> Vec<DecodedChoice> {
        let mut out = Vec::new();
        let mut cursor = 0usize;
        self.walk(|_seg, cp| {
            while events
                .get(cursor)
                .is_some_and(|e| e.1 != RecordClass::Type1)
            {
                cursor += 1;
            }
            let Some(&(t1_time, _)) = events.get(cursor) else {
                out.push(DecodedChoice {
                    cp,
                    choice: Choice::Default,
                    time: SimTime::ZERO,
                    observed: false,
                    confidence: CONFIDENCE_BLIND,
                });
                return Choice::Default;
            };
            cursor += 1;
            let mut choice = Choice::Default;
            let mut probe = cursor;
            while let Some(&(t, class)) = events.get(probe) {
                if t.since(t1_time) > self.cfg.window {
                    break;
                }
                match class {
                    RecordClass::Type2 => {
                        choice = Choice::NonDefault;
                        cursor = probe + 1;
                        break;
                    }
                    RecordClass::Type1 => break,
                    RecordClass::Other => {}
                }
                probe += 1;
            }
            out.push(DecodedChoice {
                cp,
                choice,
                time: t1_time,
                observed: true,
                confidence: CONFIDENCE_OBSERVED,
            });
            choice
        });
        out
    }

    /// Time-aware decoding: predict each question time from the graph.
    fn decode_time_aware(
        &self,
        events: &[(SimTime, RecordClass)],
        anchor: SimTime,
    ) -> Vec<DecodedChoice> {
        let mut out = Vec::new();
        let mut cursor = 0usize;
        let scale = self.cfg.time_scale as f64;
        // Match tolerance: question times are tightly determined by the
        // public segment durations (sub-second residuals in practice),
        // so a tight window both rejects neighbouring questions and
        // lets timing distinguish branches whose next-question gaps
        // differ. Capped by half the shortest gap for short films.
        let slack = Duration::from_secs_f64((self.min_gap_secs() / 2.0).clamp(1.0, 5.0) / scale);
        // The anchor estimate carries the manifest RTT's uncertainty, so
        // the first question gets a wider window; later predictions
        // re-anchor on observed report times.
        let first_slack = Duration(slack.micros() * 3);
        let mut predicted: Option<SimTime> = None;

        self.walk(|seg, cp| {
            let slack = if predicted.is_none() {
                first_slack
            } else {
                slack
            };
            let expect = predicted.unwrap_or(anchor);
            // Look for a type-1 near the expected time.
            let mut found: Option<SimTime> = None;
            let mut probe = cursor;
            while let Some(&(t, class)) = events.get(probe) {
                if t > expect + slack {
                    break;
                }
                if class == RecordClass::Type1 && t + slack >= expect {
                    found = Some(t);
                    cursor = probe + 1;
                    break;
                }
                probe += 1;
            }
            let (t1_time, observed) = match found {
                Some(t) => (t, true),
                None => (expect, false),
            };
            // Scan this question's own window for a type-2. The window
            // is the question lead: min(10, segment duration / 2).
            let dur = self.graph.segment(seg).duration_secs as f64;
            let window = Duration::from_secs_f64(WINDOW_SECS.min(dur / 2.0) / scale);
            let mut choice = Choice::Default;
            let mut probe = cursor;
            while let Some(&(t, class)) = events.get(probe) {
                if t > t1_time + window {
                    break;
                }
                if t >= t1_time {
                    match class {
                        RecordClass::Type2 => {
                            choice = Choice::NonDefault;
                            cursor = probe + 1;
                            break;
                        }
                        RecordClass::Type1 => break,
                        RecordClass::Other => {}
                    }
                }
                probe += 1;
            }
            out.push(DecodedChoice {
                cp,
                choice,
                time: t1_time,
                observed,
                confidence: if observed {
                    CONFIDENCE_OBSERVED
                } else {
                    CONFIDENCE_INFERRED
                },
            });

            let gap = self.question_gap_secs(seg, cp, choice);
            predicted = Some(t1_time + Duration::from_secs_f64(gap / scale));
            choice
        });
        out
    }

    /// Content seconds from the question at `cp` (shown while `seg`
    /// plays) to the next question, assuming `choice` is picked.
    fn question_gap_secs(&self, seg: SegmentId, cp: ChoicePointId, choice: Choice) -> f64 {
        question_gap_secs(self.graph, seg, cp, choice)
    }

    /// Shortest question-to-question gap anywhere in the film (content
    /// seconds) — bounds the prediction tolerance.
    fn min_gap_secs(&self) -> f64 {
        min_question_gap_secs(self.graph)
    }

    /// Walk the graph, calling `decide` at each choice point with the
    /// segment being played and the choice point id.
    fn walk(&self, mut decide: impl FnMut(SegmentId, ChoicePointId) -> Choice) {
        let mut current = self.graph.start();
        loop {
            match self.graph.segment(current).end {
                SegmentEnd::Ending => return,
                SegmentEnd::Continue(next) => current = next,
                SegmentEnd::Choice(cp) => {
                    let choice = decide(current, cp);
                    current = self.graph.choice_point(cp).option(choice).target;
                }
            }
        }
    }
}

/// Content seconds from the question at `cp` (shown while `seg` plays)
/// to the next question, assuming `choice` is picked. Pure graph
/// arithmetic on public knowledge; exposed so streaming decoders
/// (`wm-online`) share the exact timing model this decoder uses.
pub fn question_gap_secs(
    graph: &StoryGraph,
    seg: SegmentId,
    cp: ChoicePointId,
    choice: Choice,
) -> f64 {
    let cur = graph.segment(seg);
    // The question leads the boundary by min(10, dur/2).
    let mut gap = WINDOW_SECS.min(cur.duration_secs as f64 / 2.0);
    let mut current = graph.choice_point(cp).option(choice).target;
    loop {
        let s = graph.segment(current);
        let dur = s.duration_secs as f64;
        match s.end {
            SegmentEnd::Choice(_) => {
                let lead = WINDOW_SECS.min(dur / 2.0);
                return gap + dur - lead;
            }
            SegmentEnd::Continue(next) => {
                gap += dur;
                current = next;
            }
            SegmentEnd::Ending => return gap + dur,
        }
    }
}

/// Shortest question-to-question gap anywhere in the film (content
/// seconds) — bounds the prediction tolerance.
pub fn min_question_gap_secs(graph: &StoryGraph) -> f64 {
    let mut min_gap = f64::MAX;
    for seg in graph.segments() {
        if let SegmentEnd::Choice(cp) = seg.end {
            for choice in [Choice::Default, Choice::NonDefault] {
                min_gap = min_gap.min(question_gap_secs(graph, seg.id, cp, choice));
            }
        }
    }
    if min_gap == f64::MAX {
        WINDOW_SECS
    } else {
        min_gap
    }
}

/// Content seconds from playback start to the first question: the
/// opening Continue-chain plus the first choice segment's body minus
/// its question lead.
pub fn initial_gap_secs(graph: &StoryGraph) -> f64 {
    let mut gap = 0.0;
    let mut current = graph.start();
    loop {
        let s = graph.segment(current);
        let dur = s.duration_secs as f64;
        match s.end {
            SegmentEnd::Choice(_) => {
                return gap + dur - WINDOW_SECS.min(dur / 2.0);
            }
            SegmentEnd::Continue(next) => {
                gap += dur;
                current = next;
            }
            SegmentEnd::Ending => return gap + dur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::IntervalClassifier;
    use wm_capture::labels::LabeledRecord;
    use wm_capture::ObservedRecord;
    use wm_story::bandersnatch::tiny_film;

    fn classifier() -> IntervalClassifier {
        let training = vec![
            LabeledRecord {
                time: SimTime::ZERO,
                length: 2211,
                class: RecordClass::Type1,
            },
            LabeledRecord {
                time: SimTime::ZERO,
                length: 2213,
                class: RecordClass::Type1,
            },
            LabeledRecord {
                time: SimTime::ZERO,
                length: 2992,
                class: RecordClass::Type2,
            },
            LabeledRecord {
                time: SimTime::ZERO,
                length: 3017,
                class: RecordClass::Type2,
            },
            LabeledRecord {
                time: SimTime::ZERO,
                length: 540,
                class: RecordClass::Other,
            },
        ];
        IntervalClassifier::train(&training, 0).unwrap()
    }

    fn rec(time_ms: u64, length: u16) -> TimedRecord {
        TimedRecord {
            time: SimTime(time_ms * 1000),
            record: ObservedRecord {
                stream_offset: 0,
                content_type: ContentType::ApplicationData,
                version: (3, 3),
                length,
            },
        }
    }

    fn naive_cfg() -> DecoderConfig {
        DecoderConfig {
            window: Duration::from_secs(10),
            time_aware: false,
            time_scale: 1,
        }
    }

    // tiny_film timeline (content == real time here):
    //   q0 at 4 s (intro 8 s, lead 4); boundary 8 s;
    //   branch segment 4 s, lead 2 → q1 at 10 s; boundary 12 s;
    //   next segment 4 s, lead 2 → q2 at 14 s.
    #[test]
    fn naive_decodes_clean_stream() {
        let c = classifier();
        let g = tiny_film();
        let records = vec![
            rec(0, 540),       // manifest fetch: playback-start marker
            rec(4_000, 2212),  // q0 type-1 (default)
            rec(10_000, 2212), // q1 type-1
            rec(11_500, 3001), // q1 type-2 → non-default
            rec(14_000, 2212), // q2 type-1 (default)
            rec(15_000, 540),  // chunk GET noise
        ];
        let decoder = ChoiceDecoder::new(&c, &g, naive_cfg());
        let decoded = decoder.decode(&records);
        let picks: Vec<Choice> = decoded.iter().map(|d| d.choice).collect();
        assert_eq!(
            picks,
            vec![Choice::Default, Choice::NonDefault, Choice::Default]
        );
        assert!(decoded.iter().all(|d| d.observed));
    }

    #[test]
    fn naive_type2_outside_window_ignored() {
        let c = classifier();
        let g = tiny_film();
        let records = vec![
            rec(0, 540), // manifest fetch: playback-start marker
            rec(4_000, 2212),
            rec(15_500, 3001), // 11.5 s after q0: outside its window
            rec(20_000, 2212),
            rec(30_000, 2212),
        ];
        let decoder = ChoiceDecoder::new(&c, &g, naive_cfg());
        let picks: Vec<Choice> = decoder.decode(&records).iter().map(|d| d.choice).collect();
        assert_eq!(picks[0], Choice::Default);
    }

    #[test]
    fn naive_missing_reports_default_fill() {
        let c = classifier();
        let g = tiny_film();
        let records = vec![rec(0, 540), rec(4_000, 2212)];
        let decoder = ChoiceDecoder::new(&c, &g, naive_cfg());
        let decoded = decoder.decode(&records);
        assert_eq!(decoded.len(), 3);
        assert!(decoded[0].observed);
        assert!(!decoded[1].observed);
        assert!(!decoded[2].observed);
    }

    #[test]
    fn time_aware_survives_missing_type1() {
        let c = classifier();
        let g = tiny_film();
        // q1's type-1 is LOST; its type-2 arrives at 11.5 s. The naive
        // decoder would bind q2's type-1 (14 s) to q1 and desync.
        let records = vec![
            rec(0, 540),       // manifest fetch: playback-start marker
            rec(4_000, 2212),  // q0 (default)
            rec(11_500, 3001), // q1 type-2, question report lost
            rec(14_000, 2212), // q2 (default)
        ];
        let cfg = DecoderConfig {
            time_aware: true,
            ..naive_cfg()
        };
        let decoder = ChoiceDecoder::new(&c, &g, cfg);
        let decoded = decoder.decode(&records);
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].choice, Choice::Default);
        assert_eq!(decoded[1].choice, Choice::NonDefault);
        assert!(
            !decoded[1].observed,
            "q1's report was lost but decoded anyway"
        );
        assert_eq!(decoded[2].choice, Choice::Default);
        assert!(decoded[2].observed);
    }

    #[test]
    fn time_aware_clean_stream_matches_naive() {
        let c = classifier();
        let g = tiny_film();
        let records = vec![
            rec(0, 540), // manifest fetch: playback-start marker
            rec(4_000, 2212),
            rec(10_000, 2212),
            rec(11_500, 3001),
            rec(14_000, 2212),
        ];
        let naive = ChoiceDecoder::new(&c, &g, naive_cfg()).decode(&records);
        let cfg = DecoderConfig {
            time_aware: true,
            ..naive_cfg()
        };
        let aware = ChoiceDecoder::new(&c, &g, cfg).decode(&records);
        let n: Vec<Choice> = naive.iter().map(|d| d.choice).collect();
        let a: Vec<Choice> = aware.iter().map(|d| d.choice).collect();
        assert_eq!(n, a);
    }

    #[test]
    fn duplicate_reports_are_collapsed() {
        let c = classifier();
        let g = tiny_film();
        // q1's type-1 hits the wire twice (browser retry / injected
        // duplicate). Without dedup the repeated type-1 stops the
        // type-2 window scan and q1 decodes default.
        let records = vec![
            rec(0, 540),       // manifest fetch: playback-start marker
            rec(4_000, 2212),  // q0 (default)
            rec(10_000, 2212), // q1 type-1
            rec(10_050, 2212), // ... duplicated 50 ms later
            rec(11_500, 3001), // q1 type-2 → non-default
            rec(14_000, 2212), // q2 (default)
        ];
        for time_aware in [false, true] {
            let cfg = DecoderConfig {
                time_aware,
                ..naive_cfg()
            };
            let decoded = ChoiceDecoder::new(&c, &g, cfg).decode(&records);
            let picks: Vec<Choice> = decoded.iter().map(|d| d.choice).collect();
            assert_eq!(
                picks,
                vec![Choice::Default, Choice::NonDefault, Choice::Default],
                "time_aware={time_aware}"
            );
        }
    }

    #[test]
    fn dedup_keeps_distinct_questions() {
        // Two genuine type-1s separated by a real question gap must both
        // survive the dedup pass.
        let events = vec![
            (SimTime(4_000_000), RecordClass::Type1),
            (SimTime(10_000_000), RecordClass::Type1),
        ];
        let kept = dedup_report_events(&events, Duration::from_secs(2));
        assert_eq!(kept.len(), 2);
        // But a copy inside the window is dropped.
        let events = vec![
            (SimTime(4_000_000), RecordClass::Type1),
            (SimTime(4_100_000), RecordClass::Type1),
            (SimTime(5_000_000), RecordClass::Type2),
        ];
        let kept = dedup_report_events(&events, Duration::from_secs(2));
        assert_eq!(kept.len(), 2, "duplicate type-1 dropped, type-2 kept");
    }

    #[test]
    fn confidence_reflects_observation() {
        let c = classifier();
        let g = tiny_film();
        // q1's type-1 lost: the inferred decision must carry lower
        // confidence than the observed ones.
        let records = vec![
            rec(0, 540),
            rec(4_000, 2212),
            rec(11_500, 3001),
            rec(14_000, 2212),
        ];
        let cfg = DecoderConfig {
            time_aware: true,
            ..naive_cfg()
        };
        let decoded = ChoiceDecoder::new(&c, &g, cfg).decode(&records);
        assert_eq!(decoded[0].confidence, CONFIDENCE_OBSERVED);
        assert_eq!(decoded[1].confidence, CONFIDENCE_INFERRED);
        assert!(decoded[1].confidence < decoded[0].confidence);
        assert_eq!(decoded[2].confidence, CONFIDENCE_OBSERVED);
    }

    #[test]
    fn empty_stream_decodes_all_default() {
        let c = classifier();
        let g = tiny_film();
        let decoder = ChoiceDecoder::new(&c, &g, naive_cfg());
        let decoded = decoder.decode(&[]);
        assert_eq!(decoded.len(), 3);
        assert!(decoded
            .iter()
            .all(|d| d.choice == Choice::Default && !d.observed));
    }

    #[test]
    fn gap_prediction_matches_timeline() {
        let c = classifier();
        let g = tiny_film();
        let cfg = DecoderConfig {
            time_aware: true,
            ..naive_cfg()
        };
        let decoder = ChoiceDecoder::new(&c, &g, cfg);
        // q0 on segment 0 → default branch: question gap 4 + (4-2) = 6 s.
        assert_eq!(
            decoder.question_gap_secs(SegmentId(0), ChoicePointId(0), Choice::Default),
            6.0
        );
        // q2 is shown on segment 3; its non-default branch is a 6 s
        // segment then the 5 s ending: gap = 2 + 6 + 5 = 13 (no further
        // question).
        assert_eq!(
            decoder.question_gap_secs(SegmentId(3), ChoicePointId(2), Choice::NonDefault),
            13.0
        );
    }
}
