//! The request handler.

use crate::manifest::Manifest;
use std::sync::Arc;
use wm_http::{Request, Response};
use wm_json::{parse, Value};
use wm_story::{ChoicePointId, SegmentId, StoryGraph};
use wm_telemetry::{Counter, Registry};
use wm_trace::{SpanId, TraceHandle};

/// Ids in state-report bodies are offset by this constant so they
/// always serialize as two digits (a width-discipline convention shared
/// with the player's report builder).
pub const STATE_ID_OFFSET: i64 = 10;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Divides media chunk byte sizes (see [`Manifest`]).
    pub media_scale: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { media_scale: 1 }
    }
}

/// Which state report a POST carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateEventKind {
    /// Question displayed.
    Type1,
    /// Non-default selection (prefetch cancelled).
    Type2,
}

/// Server-side record of one state report (ground truth for tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateLogEntry {
    pub kind: StateEventKind,
    pub choice_point: ChoicePointId,
    pub segment: SegmentId,
    /// Serialized size of the JSON body received.
    pub body_len: usize,
}

/// Server-side telemetry handles (see `wm-telemetry`).
pub struct ServerTelemetry {
    requests: Arc<Counter>,
    chunks_served: Arc<Counter>,
    chunk_bytes: Arc<Counter>,
    state_type1: Arc<Counter>,
    state_type2: Arc<Counter>,
    dummy_posts: Arc<Counter>,
    background_posts: Arc<Counter>,
    rejected: Arc<Counter>,
    duplicate_posts: Arc<Counter>,
    deferred_posts: Arc<Counter>,
}

impl ServerTelemetry {
    /// Register the server's metrics under `netflix.*`.
    pub fn register(registry: &Registry) -> Self {
        ServerTelemetry {
            requests: registry.counter("netflix.requests"),
            chunks_served: registry.counter("netflix.chunks_served"),
            chunk_bytes: registry.counter("netflix.chunk_bytes"),
            state_type1: registry.counter("netflix.state_posts.type1"),
            state_type2: registry.counter("netflix.state_posts.type2"),
            dummy_posts: registry.counter("netflix.state_posts.dummy"),
            background_posts: registry.counter("netflix.background_posts"),
            rejected: registry.counter("netflix.rejected"),
            duplicate_posts: registry.counter("netflix.state_posts.duplicate"),
            deferred_posts: registry.counter("netflix.state_posts.deferred"),
        }
    }
}

/// The interactive streaming origin.
pub struct NetflixServer {
    graph: Arc<StoryGraph>,
    manifest: Manifest,
    state_log: Vec<StateLogEntry>,
    requests_served: u64,
    telemetry: Option<ServerTelemetry>,
    /// `seq` numbers of state reports already persisted (sorted).
    /// Retried/duplicated POSTs carry the same `seq`; persisting them
    /// once keeps the log idempotent no matter how many copies the
    /// player's retry machinery delivers.
    seen_seqs: Vec<i64>,
    /// Remaining state POSTs to answer `503 Service Unavailable`
    /// (fault injection), with the advertised Retry-After seconds.
    error_burst: u32,
    retry_after_secs: u32,
    /// Causal trace sink (state-API hits and dedup outcomes land
    /// under the attached span, stamped from the shared sim clock).
    trace: Option<(TraceHandle, SpanId)>,
}

impl NetflixServer {
    pub fn new(graph: Arc<StoryGraph>, config: ServerConfig) -> Self {
        let manifest = Manifest::for_title(&graph, config.media_scale);
        NetflixServer {
            graph,
            manifest,
            state_log: Vec::new(),
            requests_served: 0,
            telemetry: None,
            seen_seqs: Vec::new(),
            error_burst: 0,
            retry_after_secs: 1,
            trace: None,
        }
    }

    /// Fault mode: answer the next `burst` state POSTs with
    /// `503 Service Unavailable` and a `Retry-After` hint, without
    /// persisting them. The player's retry machinery must re-deliver.
    pub fn arm_state_errors(&mut self, burst: u32, retry_after_secs: u32) {
        self.error_burst = self.error_burst.saturating_add(burst);
        self.retry_after_secs = retry_after_secs.max(1);
    }

    /// Attach telemetry handles (observation only; responses are
    /// unchanged).
    pub fn set_telemetry(&mut self, telemetry: ServerTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Attach a trace sink; state-API events are emitted under `span`.
    /// Observation only, like telemetry.
    pub fn set_trace(&mut self, handle: TraceHandle, span: SpanId) {
        self.trace = Some((handle, span));
    }

    fn trace_instant(&self, name: &'static str, a: u64, b: u64) {
        if let Some((h, span)) = &self.trace {
            h.instant(*span, name, a, b);
        }
    }

    /// The manifest this server serves.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// All state reports received, in order.
    pub fn state_log(&self) -> &[StateLogEntry] {
        &self.state_log
    }

    /// Total requests handled.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Handle one request.
    // wm-lint: response-path
    pub fn handle(&mut self, req: &Request) -> Response {
        self.requests_served += 1;
        if let Some(t) = &self.telemetry {
            t.requests.inc();
        }
        let path = req.path.clone();
        let (route, _query) = path.split_once('?').unwrap_or((path.as_str(), ""));
        match (req.method.as_str(), route) {
            ("GET", "/manifest") => self.serve_manifest(),
            ("GET", p) if p.starts_with("/media/") => {
                let resp = self.serve_chunk(&path);
                if let Some(t) = &self.telemetry {
                    if resp.status == 200 {
                        t.chunks_served.inc();
                        // wm-lint: allow(defense/length-taint, reason = "server-side byte counter over an already-built chunk body; feeds telemetry, never a wire field")
                        t.chunk_bytes.add(resp.body.len() as u64);
                    } else {
                        t.rejected.inc();
                    }
                }
                resp
            }
            ("POST", "/interact/state") => self.handle_state(req),
            ("POST", "/interact/state-echo") => {
                // Defense-injected dummy post: acknowledged, not logged.
                if let Some(t) = &self.telemetry {
                    t.dummy_posts.inc();
                }
                Response::ok().body(b"{\"persisted\":true}".to_vec())
            }
            ("POST", "/log" | "/hb" | "/diag") => {
                if let Some(t) = &self.telemetry {
                    t.background_posts.inc();
                }
                Response::ok().body(b"{\"logged\":true}".to_vec())
            }
            _ => {
                if let Some(t) = &self.telemetry {
                    t.rejected.inc();
                }
                Response::new(404, "Not Found").body(b"{}".to_vec())
            }
        }
    }

    fn serve_manifest(&self) -> Response {
        Response::ok()
            .header("Content-Type", "application/json")
            .body(wm_json::to_bytes(&self.manifest.to_json()))
    }

    /// `/media/<segment>/<chunk>?br=<bps>`
    fn serve_chunk(&self, path: &str) -> Response {
        let Some(parsed) = parse_chunk_path(path) else {
            return Response::new(400, "Bad Request").body(b"{}".to_vec());
        };
        let (seg_id, chunk_idx, bitrate) = parsed;
        if seg_id as usize >= self.graph.segments().len() {
            return Response::new(404, "Not Found").body(b"{}".to_vec());
        }
        let seg = self.graph.segment(SegmentId(seg_id));
        let count = self.manifest.chunk_count(seg.duration_secs);
        if chunk_idx >= count || !self.manifest.ladder.contains(&bitrate) {
            return Response::new(404, "Not Found").body(b"{}".to_vec());
        }
        let size = self
            .manifest
            .chunk_bytes(seg.duration_secs, chunk_idx, bitrate);
        Response::ok()
            .header("Content-Type", "video/mp4")
            .body(chunk_body(seg_id, chunk_idx, size))
    }

    fn handle_state(&mut self, req: &Request) -> Response {
        if self.error_burst > 0 {
            self.error_burst -= 1;
            if let Some(t) = &self.telemetry {
                t.deferred_posts.inc();
            }
            self.trace_instant(
                "netflix.state.deferred",
                self.retry_after_secs as u64,
                // wm-lint: allow(defense/length-taint, reason = "inbound request length into the ground-truth trace; the client already put it on the wire")
                req.body.len() as u64,
            );
            return Response::new(503, "Service Unavailable")
                .header("Retry-After", &self.retry_after_secs.to_string())
                .body(b"{\"error\":\"overloaded\"}".to_vec());
        }
        let Ok(doc) = parse(&req.body) else {
            if let Some(t) = &self.telemetry {
                t.rejected.inc();
            }
            // wm-lint: allow(defense/length-taint, reason = "inbound request length into the ground-truth trace; the client already put it on the wire")
            self.trace_instant("netflix.state.rejected", 400, req.body.len() as u64);
            return Response::new(400, "Bad Request").body(b"{\"error\":\"json\"}".to_vec());
        };
        // wm-lint: allow(defense/length-taint, reason = "schema validation of the inbound body length; decides accept/reject, not a response size")
        let Some(entry) = self.validate_state(&doc, req.body.len()) else {
            if let Some(t) = &self.telemetry {
                t.rejected.inc();
            }
            // wm-lint: allow(defense/length-taint, reason = "inbound request length into the ground-truth trace; the client already put it on the wire")
            self.trace_instant("netflix.state.rejected", 422, req.body.len() as u64);
            return Response::new(422, "Unprocessable").body(b"{\"error\":\"schema\"}".to_vec());
        };
        // Idempotent persistence: a report's `seq` is its identity, so
        // retried or duplicated deliveries are acknowledged (the client
        // must stop retrying) but persisted exactly once.
        if let Some(seq) = doc.get("seq").and_then(|v| v.as_i64()) {
            match self.seen_seqs.binary_search(&seq) {
                Ok(_) => {
                    if let Some(t) = &self.telemetry {
                        t.duplicate_posts.inc();
                    }
                    // wm-lint: allow(defense/length-taint, reason = "inbound request length into the ground-truth trace; the client already put it on the wire")
                    self.trace_instant("netflix.state.dup", seq as u64, req.body.len() as u64);
                    return Response::ok()
                        .header("Content-Type", "application/json")
                        .body(b"{\"persisted\":true,\"dup\":true}".to_vec());
                }
                Err(pos) => self.seen_seqs.insert(pos, seq),
            }
        }
        if let Some(t) = &self.telemetry {
            match entry.kind {
                StateEventKind::Type1 => t.state_type1.inc(),
                StateEventKind::Type2 => t.state_type2.inc(),
            }
        }
        // a = report kind (1/2) + choice point packed, b = body length
        // — the body length is exactly what the eavesdropper sees
        // (padded by TLS), so the trace links server truth to wire.
        self.trace_instant(
            "netflix.state.hit",
            match entry.kind {
                StateEventKind::Type1 => 1,
                StateEventKind::Type2 => 2,
            } << 16
                | entry.choice_point.0 as u64,
            entry.body_len as u64,
        );
        self.state_log.push(entry);
        Response::ok()
            .header("Content-Type", "application/json")
            .body(b"{\"persisted\":true}".to_vec())
    }

    /// Check the fields the real API would require and classify the
    /// report. Type-2 is distinguished by its `interactionDiff` block.
    fn validate_state(&self, doc: &Value, body_len: usize) -> Option<StateLogEntry> {
        doc.get("esn")?.as_str()?;
        doc.get("event")?.as_str()?;
        let cp = doc.get("choicePointId")?.as_i64()? - STATE_ID_OFFSET;
        let seg = doc.get("segmentId")?.as_i64()? - STATE_ID_OFFSET;
        if cp < 0 || cp as usize >= self.graph.choice_points().len() {
            return None;
        }
        if seg < 0 || seg as usize >= self.graph.segments().len() {
            return None;
        }
        let kind = if let Some(diff) = doc.get("interactionDiff") {
            // A type-2 must carry the cancelled-prefetch accounting.
            diff.get("cancelledPrefetch")?.get("chunks")?.as_i64()?;
            diff.get("selection")?.get("label")?.as_str()?;
            StateEventKind::Type2
        } else {
            StateEventKind::Type1
        };
        Some(StateLogEntry {
            kind,
            choice_point: ChoicePointId(cp as u16),
            segment: SegmentId(seg as u16),
            body_len,
        })
    }
}

/// Deterministic, cheap chunk payload (not all-zero so compression-style
/// countermeasures cannot trivially collapse it).
fn chunk_body(seg: u16, idx: u32, size: usize) -> Vec<u8> {
    let seed = (seg as u32) << 16 | (idx & 0xffff);
    (0..size)
        .map(|i| {
            let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            (x >> 24) as u8
        })
        .collect()
}

/// Parse `/media/<seg>/<chunk>?br=<bps>`.
fn parse_chunk_path(path: &str) -> Option<(u16, u32, u32)> {
    let (route, query) = path.split_once('?')?;
    let mut parts = route.strip_prefix("/media/")?.split('/');
    let seg: u16 = parts.next()?.parse().ok()?;
    let chunk: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    let bitrate: u32 = query.strip_prefix("br=")?.parse().ok()?;
    Some((seg, chunk, bitrate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_story::bandersnatch::{bandersnatch, tiny_film};

    fn server() -> NetflixServer {
        NetflixServer::new(Arc::new(bandersnatch()), ServerConfig { media_scale: 1000 })
    }

    fn state_body(cp: i64, seg: i64, type2: bool) -> Vec<u8> {
        let mut members = vec![
            ("esn".to_string(), Value::from("NFCDIE-02-TEST")),
            ("event".to_string(), Value::from("interactiveStateSnapshot")),
            (
                "choicePointId".to_string(),
                Value::from(cp + STATE_ID_OFFSET),
            ),
            ("segmentId".to_string(), Value::from(seg + STATE_ID_OFFSET)),
        ];
        if type2 {
            members.push((
                "interactionDiff".to_string(),
                Value::object(vec![
                    (
                        "cancelledPrefetch".to_string(),
                        Value::object(vec![("chunks".to_string(), Value::from(3i64))]),
                    ),
                    (
                        "selection".to_string(),
                        Value::object(vec![("label".to_string(), Value::from("Refuse"))]),
                    ),
                ]),
            ));
        }
        wm_json::to_bytes(&Value::object(members))
    }

    #[test]
    fn serves_manifest() {
        let mut s = server();
        let resp = s.handle(&Request::new("GET", "/manifest"));
        assert_eq!(resp.status, 200);
        let m = Manifest::from_json(&parse(&resp.body).unwrap()).unwrap();
        assert_eq!(m.media_scale, 1000);
        assert_eq!(m.ladder, crate::manifest::BITRATE_LADDER.to_vec());
    }

    #[test]
    fn serves_chunks_with_correct_sizes() {
        let mut s = server();
        let resp = s.handle(&Request::new("GET", "/media/0/0?br=3000000"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), 750); // 750 kB / 1000
    }

    #[test]
    fn rejects_bad_chunk_requests() {
        let mut s = server();
        for path in [
            "/media/999/0?br=3000000",  // no such segment
            "/media/0/9999?br=3000000", // no such chunk
            "/media/0/0?br=1234",       // not on the ladder
            "/media/0/0",               // missing query
            "/media/x/y?br=3000000",    // junk ids
        ] {
            let resp = s.handle(&Request::new("GET", path));
            assert_ne!(resp.status, 200, "{path}");
        }
    }

    #[test]
    fn logs_type1_and_type2() {
        let mut s = server();
        let r1 = s.handle(&Request::new("POST", "/interact/state").body(state_body(2, 6, false)));
        assert_eq!(r1.status, 200);
        let r2 = s.handle(&Request::new("POST", "/interact/state").body(state_body(2, 6, true)));
        assert_eq!(r2.status, 200);
        assert_eq!(s.state_log().len(), 2);
        assert_eq!(s.state_log()[0].kind, StateEventKind::Type1);
        assert_eq!(s.state_log()[1].kind, StateEventKind::Type2);
        assert_eq!(s.state_log()[0].choice_point, ChoicePointId(2));
    }

    #[test]
    fn rejects_malformed_state() {
        let mut s = server();
        // Broken JSON.
        let r = s.handle(&Request::new("POST", "/interact/state").body(b"{oops".to_vec()));
        assert_eq!(r.status, 400);
        // Valid JSON, missing fields.
        let r =
            s.handle(&Request::new("POST", "/interact/state").body(b"{\"esn\":\"x\"}".to_vec()));
        assert_eq!(r.status, 422);
        // Out-of-range choice point.
        let r = s.handle(&Request::new("POST", "/interact/state").body(state_body(99, 0, false)));
        assert_eq!(r.status, 422);
        // Type-2 without the prefetch accounting.
        let mut doc = parse(&state_body(1, 3, false)).unwrap();
        if let Value::Object(members) = &mut doc {
            members.push(("interactionDiff".into(), Value::object(vec![])));
        }
        let r = s.handle(&Request::new("POST", "/interact/state").body(wm_json::to_bytes(&doc)));
        assert_eq!(r.status, 422);
        assert!(s.state_log().is_empty());
    }

    fn state_body_with_seq(cp: i64, seg: i64, seq: i64) -> Vec<u8> {
        let mut doc = parse(&state_body(cp, seg, false)).unwrap();
        if let Value::Object(members) = &mut doc {
            members.push(("seq".into(), Value::from(seq)));
        }
        wm_json::to_bytes(&doc)
    }

    #[test]
    fn duplicate_seq_is_acknowledged_but_logged_once() {
        let mut s = server();
        let body = state_body_with_seq(2, 6, 5);
        let r1 = s.handle(&Request::new("POST", "/interact/state").body(body.clone()));
        assert_eq!(r1.status, 200);
        let r2 = s.handle(&Request::new("POST", "/interact/state").body(body));
        assert_eq!(r2.status, 200, "duplicates must still be acknowledged");
        assert_eq!(s.state_log().len(), 1, "persisted exactly once");
        // A different seq is a different report.
        let r3 =
            s.handle(&Request::new("POST", "/interact/state").body(state_body_with_seq(2, 6, 6)));
        assert_eq!(r3.status, 200);
        assert_eq!(s.state_log().len(), 2);
    }

    #[test]
    fn armed_errors_defer_state_posts() {
        let mut s = server();
        s.arm_state_errors(2, 3);
        let body = state_body_with_seq(2, 6, 1);
        let r1 = s.handle(&Request::new("POST", "/interact/state").body(body.clone()));
        assert_eq!(r1.status, 503);
        assert_eq!(r1.header_value("Retry-After"), Some("3"));
        let r2 = s.handle(&Request::new("POST", "/interact/state").body(body.clone()));
        assert_eq!(r2.status, 503);
        assert!(s.state_log().is_empty(), "503'd posts are not persisted");
        // Burst exhausted: the retry now lands.
        let r3 = s.handle(&Request::new("POST", "/interact/state").body(body));
        assert_eq!(r3.status, 200);
        assert_eq!(s.state_log().len(), 1);
    }

    #[test]
    fn telemetry_endpoints_accept_anything() {
        let mut s = server();
        for path in ["/log", "/hb", "/diag"] {
            let r = s.handle(&Request::new("POST", path).body(vec![0xab; 100]));
            assert_eq!(r.status, 200, "{path}");
        }
    }

    #[test]
    fn unknown_route_is_404() {
        let mut s = server();
        assert_eq!(s.handle(&Request::new("GET", "/nope")).status, 404);
        assert_eq!(s.handle(&Request::new("PUT", "/manifest")).status, 404);
    }

    #[test]
    fn chunk_bodies_deterministic_and_nontrivial() {
        let mut s = NetflixServer::new(Arc::new(tiny_film()), ServerConfig { media_scale: 100 });
        let a = s.handle(&Request::new("GET", "/media/0/0?br=235000")).body;
        let b = s.handle(&Request::new("GET", "/media/0/0?br=235000")).body;
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<u8> = a.iter().copied().collect();
        assert!(distinct.len() > 16, "chunk bytes should not be constant");
    }
}
