//! Property tests for checkpoint/resume determinism (hand-rolled
//! deterministic sweeps — the harness carries no external property-test
//! dependency, so the "any boundary" quantifier is made exhaustive
//! instead of sampled).
//!
//! The property under test: for *every* packet boundary `i`, feeding
//! packets `0..i`, checkpointing, resuming from the blob, and feeding
//! packets `i..` yields the exact verdict stream (byte-equal choices
//! *and* provenance) of an uninterrupted decode of the same capture.

use std::sync::Arc;

use wm_capture::time::{Duration, SimTime};
use wm_chaos::{impair_capture, CaptureImpairment, TapPacket};
use wm_core::{IntervalClassifier, WhiteMirrorConfig};
use wm_online::{OnlineConfig, OnlineDecoder, OnlineVerdict};
use wm_sim::{run_session, SessionConfig, SessionOutput};
use wm_story::bandersnatch::tiny_film;
use wm_story::{Choice, ViewerScript};

const TS: u32 = 20;

fn session(seed: u64, choices: &[Choice]) -> SessionOutput {
    let graph = Arc::new(tiny_film());
    let script = ViewerScript::from_choices(choices, Duration::from_millis(900));
    run_session(&SessionConfig::fast(graph, seed, script)).unwrap()
}

fn trained_classifier() -> IntervalClassifier {
    let train = session(
        100,
        &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
    );
    IntervalClassifier::train(&train.labels, WhiteMirrorConfig::DEFAULT_SLACK).unwrap()
}

fn tap_packets(out: &SessionOutput) -> Vec<TapPacket> {
    out.trace
        .packets
        .iter()
        .map(|p| (p.time.micros(), p.frame.clone()))
        .collect()
}

fn feed(dec: &mut OnlineDecoder, packets: &[TapPacket]) -> Vec<OnlineVerdict> {
    let mut out = Vec::new();
    for (t, frame) in packets {
        out.extend(dec.push_packet(SimTime(*t), frame));
    }
    out
}

fn uninterrupted(
    clf: &IntervalClassifier,
    graph: &Arc<wm_story::StoryGraph>,
    cfg: &OnlineConfig,
    packets: &[TapPacket],
) -> Vec<OnlineVerdict> {
    let mut dec = OnlineDecoder::new(clf.clone(), graph.clone(), cfg.clone());
    let mut out = feed(&mut dec, packets);
    out.extend(dec.finish());
    out
}

/// Cut the stream at packet boundary `cut`, checkpoint, resume, feed
/// the rest; returns the concatenated verdict stream.
fn cut_and_resume(
    clf: &IntervalClassifier,
    graph: &Arc<wm_story::StoryGraph>,
    cfg: &OnlineConfig,
    packets: &[TapPacket],
    cut: usize,
) -> Vec<OnlineVerdict> {
    let mut first = OnlineDecoder::new(clf.clone(), graph.clone(), cfg.clone());
    let mut out = feed(&mut first, &packets[..cut]);
    let blob = first.checkpoint();
    drop(first);
    let mut second =
        OnlineDecoder::resume_from_checkpoint(&blob, graph.clone()).expect("resume at {cut}");
    out.extend(feed(&mut second, &packets[cut..]));
    out.extend(second.finish());
    out
}

#[test]
fn resume_at_every_record_boundary_matches_uninterrupted_decode() {
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let cfg = OnlineConfig::scaled(TS);
    for (seed, picks) in [
        (
            900u64,
            [Choice::Default, Choice::NonDefault, Choice::Default],
        ),
        (
            901,
            [Choice::NonDefault, Choice::Default, Choice::NonDefault],
        ),
        (902, [Choice::Default, Choice::Default, Choice::NonDefault]),
    ] {
        let out = session(seed, &picks);
        let packets = tap_packets(&out);
        let baseline = uninterrupted(&clf, &graph, &cfg, &packets);
        assert!(!baseline.is_empty(), "seed {seed} decoded nothing");

        // Every packet boundary where at least one new TLS record was
        // finalized is a record boundary; sweep them all (plus the
        // trivial boundaries 1 and n-1).
        let mut probe = OnlineDecoder::new(clf.clone(), graph.clone(), cfg.clone());
        let mut boundaries = vec![1, packets.len().saturating_sub(1)];
        let mut seen_records = 0;
        for (i, (t, frame)) in packets.iter().enumerate() {
            probe.push_packet(SimTime(*t), frame);
            let now = probe.stats().records;
            if now > seen_records {
                seen_records = now;
                boundaries.push(i + 1);
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        boundaries.retain(|&b| b > 0 && b < packets.len());

        for &cut in &boundaries {
            let got = cut_and_resume(&clf, &graph, &cfg, &packets, cut);
            assert_eq!(
                got, baseline,
                "seed {seed}: resume at packet boundary {cut} diverged"
            );
        }
    }
}

#[test]
fn restored_state_checkpoints_byte_identically() {
    // Determinism of the snapshot itself: checkpoint the original
    // decoder twice, resume a copy from the first blob and checkpoint
    // it — the resumed decoder's blob must be byte-identical to the
    // original's second blob (the `resumes` counter is deliberately
    // not serialized).
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let cfg = OnlineConfig::scaled(TS);
    let out = session(
        910,
        &[Choice::NonDefault, Choice::NonDefault, Choice::Default],
    );
    let packets = tap_packets(&out);

    for cut in (1..packets.len()).step_by(7) {
        let mut original = OnlineDecoder::new(clf.clone(), graph.clone(), cfg.clone());
        feed(&mut original, &packets[..cut]);
        let blob = original.checkpoint();
        let blob_again = original.checkpoint();

        let mut resumed = OnlineDecoder::resume_from_checkpoint(&blob, graph.clone()).unwrap();
        let blob_resumed = resumed.checkpoint();
        assert_eq!(
            blob_again, blob_resumed,
            "restored state at boundary {cut} re-checkpoints differently"
        );
    }
}

#[test]
fn resume_under_capture_impairment_is_still_lossless() {
    // The full-replay resume property holds for *impaired* captures
    // too: whatever the tap mangled, cutting and resuming must not add
    // divergence beyond it.
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let cfg = OnlineConfig::scaled(TS);
    let out = session(
        920,
        &[Choice::Default, Choice::NonDefault, Choice::NonDefault],
    );
    let clean = tap_packets(&out);
    for (seed, intensity) in [(11u64, 0.5), (12, 1.0), (13, 2.0)] {
        let imp = CaptureImpairment::at_intensity(intensity);
        let (packets, _) = impair_capture(seed, &imp, &clean);
        let baseline = uninterrupted(&clf, &graph, &cfg, &packets);
        for cut in (1..packets.len()).step_by(11) {
            let got = cut_and_resume(&clf, &graph, &cfg, &packets, cut);
            assert_eq!(
                got, baseline,
                "impairment {intensity} seed {seed}: cut {cut} diverged"
            );
        }
    }
}
