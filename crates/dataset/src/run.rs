//! Session execution over a dataset spec.

use crate::spec::{DatasetSpec, ViewerSpec};
use std::sync::Arc;
use wm_behavior::script_for;
use wm_chaos::FaultPlan;
use wm_defense::Defense;
use wm_net::conditions::{ConnectionType, TimeOfDay};
use wm_net::time::Duration;
use wm_player::PlayerConfig;
use wm_sim::{run_session, SessionConfig, SessionError, SessionOutput};
use wm_story::StoryGraph;
use wm_telemetry::Snapshot;
use wm_tls::CipherSuite;

/// Knobs shared by every session of a dataset run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Media byte divisor (fidelity vs speed; see DESIGN.md).
    pub media_scale: u32,
    /// Playback compression (timing structure preserved).
    pub time_scale: u32,
    pub suite: CipherSuite,
    pub defense: Defense,
    /// Collect per-session telemetry (merged run-wide by
    /// [`aggregate_telemetry`]). Observation only — traces are
    /// byte-identical either way.
    pub telemetry: bool,
    /// Record a causal event trace per session (see `wm-trace`).
    /// Observation only — captures are byte-identical either way.
    pub trace: bool,
    /// Fault-injection intensity (0.0 = clean sessions). Each viewer
    /// gets its own deterministic [`FaultPlan`] derived from its seed,
    /// so faulted runs replay byte-identically too.
    pub chaos_intensity: f64,
    /// Horizon for generated fault plans; should roughly match the
    /// scaled wall of a session so faults land mid-stream.
    pub chaos_horizon: Duration,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            media_scale: 256,
            time_scale: 20,
            suite: CipherSuite::Aead,
            defense: Defense::None,
            telemetry: false,
            trace: false,
            chaos_intensity: 0.0,
            chaos_horizon: Duration::from_secs(8),
        }
    }
}

/// One executed data point: `{spec, encrypted trace + ground truth}`.
pub struct SessionRecord {
    pub spec: ViewerSpec,
    pub output: SessionOutput,
}

/// Build the per-viewer session configuration.
///
/// Network conditions couple into client noise: busy links raise both
/// the flush-split probability and the telemetry heavy tail, which is
/// what drags the worst-case condition toward the paper's 96%.
pub fn session_config(
    graph: Arc<StoryGraph>,
    viewer: &ViewerSpec,
    opts: &SimOptions,
) -> SessionConfig {
    let link = viewer.operational.link;
    let mut player = PlayerConfig {
        time_scale: opts.time_scale,
        ..PlayerConfig::default()
    };
    player.split_flush_extra = match (link.connection, link.time_of_day) {
        (ConnectionType::Wireless, TimeOfDay::Night) => 0.03,
        (ConnectionType::Wireless, _) => 0.012,
        (_, TimeOfDay::Night) => 0.01,
        _ => 0.0,
    };
    player.telemetry_tail_prob = match link.time_of_day {
        TimeOfDay::Morning => 0.005,
        TimeOfDay::Noon => 0.012,
        TimeOfDay::Night => 0.025,
    };
    SessionConfig {
        seed: viewer.seed,
        profile: viewer.operational.profile,
        conditions: link,
        suite: opts.suite,
        player,
        media_scale: opts.media_scale,
        script: script_for(&graph, &viewer.behavior, viewer.seed),
        graph,
        defense: opts.defense,
        telemetry: opts.telemetry,
        trace: opts.trace,
        chaos: if opts.chaos_intensity > 0.0 {
            FaultPlan::generate(viewer.seed, opts.chaos_intensity, opts.chaos_horizon)
        } else {
            FaultPlan::none()
        },
    }
}

/// Merge every session's snapshot into one run-level report.
///
/// Each worker thread fills its sessions' snapshots independently;
/// because [`Snapshot::merge`] is exact, commutative and associative,
/// the aggregate is identical regardless of worker count or completion
/// order.
pub fn aggregate_telemetry(records: &[SessionRecord]) -> Snapshot {
    Snapshot::merged(records.iter().map(|r| &r.output.telemetry))
}

/// A session that could not run to completion, with its viewer spec
/// so callers can re-run, skip or report it.
#[derive(Debug)]
pub struct SessionFailure {
    pub spec: ViewerSpec,
    pub error: SessionError,
}

/// Outcome of a fault-tolerant dataset run: every viewer lands in
/// exactly one of the two vectors, each in encounter order.
pub struct DatasetRun {
    pub records: Vec<SessionRecord>,
    pub failures: Vec<SessionFailure>,
}

/// Run every viewer's session across a work-stealing pool of `workers`
/// threads (`0` = one per available core). Sessions that fail
/// (possible under heavy [`SimOptions::chaos_intensity`]) are
/// collected as typed [`SessionFailure`]s instead of aborting the run —
/// the rest of the dataset is still produced.
///
/// Each session is a pure function of its viewer's seed, and results
/// merge in viewer-index order, so the output is byte-identical for
/// every worker count (the determinism suite pins this). Workers pull
/// the next viewer index dynamically from a shared counter, so one
/// long-chaos session no longer serializes a fixed contiguous chunk
/// behind it — the old uneven-shard tail.
pub fn try_run_dataset_with_workers(
    graph: &Arc<StoryGraph>,
    spec: &DatasetSpec,
    opts: &SimOptions,
    workers: usize,
) -> DatasetRun {
    let outcomes = wm_pool::run_indexed(spec.viewers.len(), workers, |i| {
        let viewer = &spec.viewers[i];
        let cfg = session_config(graph.clone(), viewer, opts);
        match run_session(&cfg) {
            Ok(output) => Ok(SessionRecord {
                spec: *viewer,
                output,
            }),
            Err(error) => Err(SessionFailure {
                spec: *viewer,
                error,
            }),
        }
    });
    let mut run = DatasetRun {
        records: Vec::new(),
        failures: Vec::new(),
    };
    for outcome in outcomes {
        match outcome {
            Ok(record) => run.records.push(record),
            Err(failure) => run.failures.push(failure),
        }
    }
    run
}

/// [`try_run_dataset_with_workers`] with the auto worker count (one
/// per available core).
pub fn try_run_dataset(
    graph: &Arc<StoryGraph>,
    spec: &DatasetSpec,
    opts: &SimOptions,
) -> DatasetRun {
    try_run_dataset_with_workers(graph, spec, opts, 0)
}

/// Run every viewer's session, panicking on the first failure. Clean
/// (no-chaos) runs never fail; use [`try_run_dataset`] when injecting
/// faults.
pub fn run_dataset(
    graph: &Arc<StoryGraph>,
    spec: &DatasetSpec,
    opts: &SimOptions,
) -> Vec<SessionRecord> {
    let run = try_run_dataset(graph, spec, opts);
    if let Some(f) = run.failures.first() {
        panic!("viewer {} session failed: {}", f.spec.id, f.error);
    }
    run.records
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_story::bandersnatch::tiny_film;

    fn fast_opts() -> SimOptions {
        SimOptions {
            media_scale: 2048,
            time_scale: 20,
            ..SimOptions::default()
        }
    }

    #[test]
    fn runs_small_dataset_in_parallel() {
        let graph = Arc::new(tiny_film());
        let spec = DatasetSpec::generate("mini", 8, 77);
        let records = run_dataset(&graph, &spec, &fast_opts());
        assert_eq!(records.len(), 8);
        // Order preserved and ids aligned.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.spec.id, i as u32);
            assert!(!r.output.decisions.is_empty());
            assert!(r.output.stats.packets_captured > 10);
        }
    }

    #[test]
    fn rerun_is_identical() {
        let graph = Arc::new(tiny_film());
        let spec = DatasetSpec::generate("mini", 4, 99);
        let a = run_dataset(&graph, &spec, &fast_opts());
        let b = run_dataset(&graph, &spec, &fast_opts());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(
                x.output.trace.to_pcap_bytes(),
                y.output.trace.to_pcap_bytes(),
                "viewer {}",
                x.spec.id
            );
        }
    }

    #[test]
    fn telemetry_aggregates_across_workers() {
        let graph = Arc::new(tiny_film());
        let spec = DatasetSpec::generate("mini", 6, 55);
        let opts = SimOptions {
            telemetry: true,
            ..fast_opts()
        };
        let records = run_dataset(&graph, &spec, &opts);
        let total = aggregate_telemetry(&records);
        // The merged counters equal the per-session sums exactly.
        let per_session: u64 = records
            .iter()
            .map(|r| r.output.telemetry.counters["sim.events"])
            .sum();
        assert_eq!(total.counters["sim.events"], per_session);
        assert_eq!(
            total.counters["capture.frames_tapped"],
            records
                .iter()
                .map(|r| r.output.stats.packets_captured as u64)
                .sum::<u64>()
        );
        // Aggregation is order-independent: reversing gives the same report.
        let reversed = Snapshot::merged(records.iter().rev().map(|r| &r.output.telemetry));
        assert_eq!(total, reversed);
        // A second run reproduces every seed-deterministic counter.
        let again = aggregate_telemetry(&run_dataset(&graph, &spec, &opts));
        assert_eq!(total.counters, again.counters);
    }

    #[test]
    fn chaotic_dataset_is_fault_tolerant_and_reproducible() {
        let graph = Arc::new(tiny_film());
        let spec = DatasetSpec::generate("mini", 8, 123);
        let opts = SimOptions {
            chaos_intensity: 1.0,
            chaos_horizon: Duration::from_secs(4),
            ..fast_opts()
        };
        let a = try_run_dataset(&graph, &spec, &opts);
        // Every viewer is accounted for, exactly once.
        assert_eq!(a.records.len() + a.failures.len(), 8);
        assert!(
            !a.records.is_empty(),
            "most faulted sessions still complete"
        );
        // Chaos actually happened somewhere in the batch.
        let faults: u64 = a
            .records
            .iter()
            .map(|r| r.output.stats.faults_applied)
            .sum();
        assert!(faults > 0, "intensity 1.0 must inject faults");
        // The faulted run replays byte-identically.
        let b = try_run_dataset(&graph, &spec, &opts);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(x.spec.id, y.spec.id);
            assert_eq!(
                x.output.trace.to_pcap_bytes(),
                y.output.trace.to_pcap_bytes()
            );
        }
        for (x, y) in a.failures.iter().zip(b.failures.iter()) {
            assert_eq!(x.spec.id, y.spec.id);
            assert_eq!(x.error, y.error);
        }
    }

    /// Worker-count invariance under a pathologically skewed workload:
    /// heavy chaos makes session lengths wildly uneven (some sessions
    /// retry and stall, some die early, some run clean), which is
    /// exactly the distribution that serialized the old contiguous
    /// chunking. Every worker count must produce byte-identical
    /// records *and* the identical failure list. (The scheduling-level
    /// half of this regression — a long task no longer blocks the
    /// tasks behind it — is pinned deterministically in `wm-pool`.)
    #[test]
    fn skewed_session_lengths_replay_identically_across_worker_counts() {
        let graph = Arc::new(tiny_film());
        let spec = DatasetSpec::generate("skew", 10, 404);
        let opts = SimOptions {
            chaos_intensity: 2.0,
            chaos_horizon: Duration::from_secs(4),
            ..fast_opts()
        };
        let base = try_run_dataset_with_workers(&graph, &spec, &opts, 1);
        assert_eq!(base.records.len() + base.failures.len(), 10);
        for workers in [2usize, 5, 8] {
            let run = try_run_dataset_with_workers(&graph, &spec, &opts, workers);
            assert_eq!(base.records.len(), run.records.len(), "workers {workers}");
            assert_eq!(base.failures.len(), run.failures.len(), "workers {workers}");
            for (x, y) in base.records.iter().zip(run.records.iter()) {
                assert_eq!(x.spec.id, y.spec.id);
                assert_eq!(
                    x.output.trace.to_pcap_bytes(),
                    y.output.trace.to_pcap_bytes(),
                    "workers {workers}, viewer {}",
                    x.spec.id
                );
            }
            for (x, y) in base.failures.iter().zip(run.failures.iter()) {
                assert_eq!(x.spec.id, y.spec.id);
                assert_eq!(x.error, y.error);
            }
        }
    }

    #[test]
    fn conditions_shape_noise_knobs() {
        let graph = Arc::new(tiny_film());
        let spec = DatasetSpec::generate("mini", 72, 3);
        let night_wireless = spec
            .viewers
            .iter()
            .find(|v| {
                v.operational.link.connection == ConnectionType::Wireless
                    && v.operational.link.time_of_day == TimeOfDay::Night
            })
            .expect("grid covers the cell");
        let cfg = session_config(graph, night_wireless, &fast_opts());
        assert!(cfg.player.split_flush_extra > 0.02);
        assert!(cfg.player.telemetry_tail_prob > 0.02);
    }
}
