//! The fleet supervisor: a deterministic single-threaded control loop
//! that routes victim packets onto shards, checkpoints each shard on a
//! sim-time cadence, injects/absorbs shard faults from a
//! [`ShardFaultPlan`], restarts dead shards from their last good
//! checkpoint with capped exponential backoff, applies live
//! [`ResizeSchedule`] steps (draining and migrating victims across a
//! recomputed consistent-hash ring), and merges every shard's verdicts
//! through the [`VerdictDedup`] stage into one stream.
//!
//! # Determinism
//!
//! The loop is driven purely by the packet stream's sim-times, the
//! fault plan, and the resize schedule — no wall clocks, no OS threads
//! in the decision path. The only parallelism is rehydration: when
//! several shards come due for restart (or several victims migrate) at
//! the same instant their checkpoint documents are rehydrated on the
//! long-lived [`wm_pool::Pool`], whose results are merged back in
//! deterministic order, so the outcome is byte-identical to a serial
//! restore. Same seed + same plan + same packets ⇒ identical merged
//! verdict stream and identical loss-window report, for any worker
//! count — and, on fault-free input, for any resize schedule.
//!
//! # Backends
//!
//! Shards run in-process by default ([`ShardBackend::InProcess`]).
//! With [`ShardBackend::Process`] each shard lives in a child OS
//! process behind the [`crate::process`] protocol: a crashed child
//! (real `kill -9`, or the chaos plan's `ProcessAbort`) surfaces as a
//! [`WorkerFault`] on the next exchange and is absorbed exactly like a
//! kill fault — loss window opened at the last checkpoint, respawn
//! with backoff, supervisor never exits.
//!
//! # Loss accounting
//!
//! Every packet the fleet fails to deliver to a live decoder is
//! charged to an explicit per-victim loss window: opened at the kill
//! (or at the first packet dropped on a dead/stall-saturated shard)
//! and closed when the shard is restored. Resize migrations get the
//! same arithmetic: a live drain moves full decoder state (zero-width
//! window), while migrating out of a dead shard's stored blob rolls
//! the victim back to that checkpoint and reports the identical
//! kill-style window. The acceptance contract is *zero duplicated,
//! bounded lost*: the dedup stage guarantees the first half
//! unconditionally; the loss report bounds the second so tests can
//! check that every divergence from a fault-free run lies inside a
//! reported window.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use wm_capture::time::{Duration, SimTime};
use wm_chaos::{corrupt_blob, tear_blob, ShardFault, ShardFaultKind, ShardFaultPlan};
use wm_core::IntervalClassifier;
use wm_json::Value;
use wm_obs::{FleetStatus, SeriesPoint, SeriesRing, ShardVitals, SloThresholds, Watchdog};
use wm_online::{CheckpointError, OnlineDecoder, OnlineVerdict};
use wm_pool::Pool;
use wm_story::StoryGraph;
use wm_telemetry::{Counter, DeltaTracker, Registry, Snapshot};
use wm_trace::{SpanId, TraceHandle};

use crate::dedup::VerdictDedup;
use crate::process::{resolve_worker, ProcessShard};
use crate::resize::{MigrationWindow, ResizeSchedule, ResizeStep};
use crate::ring::{victim_key, HashRing};
use crate::shard::{
    parse_envelope, ShardEnvelope, ShardRestoreError, ShardRestoreErrorKind, ShardState,
    WorkerFault,
};
use crate::{FleetConfig, FleetConfigError, ShardBackend};

/// One victim-scoped interval during which the fleet may have lost
/// verdicts: from the instant the shard stopped consuming packets to
/// the instant it resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LossWindow {
    pub shard: u32,
    pub victim: u32,
    pub from: SimTime,
    pub to: SimTime,
}

/// Supervisor counters, mirrored into telemetry when attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Packets routed into the fleet.
    pub packets: u64,
    /// Verdicts delivered after dedup.
    pub verdicts: u64,
    /// Verdicts dropped by the dedup stage.
    pub dedup_dropped: u64,
    /// Shard kill faults absorbed (including crashed process shards).
    pub kills: u64,
    /// Shard stall faults absorbed.
    pub stalls: u64,
    /// Restores from a checkpoint (latest or previous).
    pub restarts: u64,
    /// Restarts that found no usable checkpoint and started cold.
    pub cold_starts: u64,
    /// Shard checkpoints written.
    pub checkpoints: u64,
    /// Checkpoint blobs rejected at restore (corrupt/torn).
    pub checkpoints_rejected: u64,
    /// Packets dropped while a shard was dead or its stall queue full.
    pub packets_lost: u64,
    /// Victims evicted for idleness or shard-capacity pressure.
    pub victims_evicted: u64,
    /// Sim-time between each kill and the matching restore, summed
    /// (µs). Mean recovery latency = this / `restarts`.
    pub recovery_latency_us: u64,
    /// Peak resident decoder state observed on any one shard, bytes.
    pub shard_state_peak: u64,
    /// Resize steps applied.
    pub resizes: u64,
    /// Victims migrated across shards by resize steps.
    pub victims_migrated: u64,
    /// Migrations whose state document was rejected on delivery — the
    /// victim restarted cold on its new owner.
    pub migrate_failures: u64,
    /// Process-shard children spawned to replace a dead shard
    /// (process backend only).
    pub process_respawns: u64,
}

/// Per-shard recovery attribution, for `fleet_status` consumers and
/// the recovery bench: which shard restarted, how often its stored
/// blobs were rejected, and how much sim-time its outages cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecovery {
    pub shard: u32,
    pub restarts: u64,
    /// Restore attempts rejected (blob damage or worker fault), each
    /// attributed to this shard by [`ShardRestoreError::shard`].
    pub restore_failures: u64,
    /// Child processes spawned for this shard after a crash.
    pub respawns: u64,
    /// Sim-time between each kill and the matching restore, summed.
    pub recovery_latency_us: u64,
}

/// The merged output of a fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Deduplicated verdicts in canonical order: `(victim,
    /// verdict.index, time)`. Canonical ordering — rather than raw
    /// emission order — is what makes the stream comparable across
    /// shard counts, restart schedules, and resize schedules.
    pub verdicts: Vec<(u32, OnlineVerdict)>,
    /// Every interval in which verdicts may have been lost.
    pub loss_windows: Vec<LossWindow>,
    /// Every victim migration performed by resize steps, with its
    /// at-risk window (zero-width for lossless live drains).
    pub migrations: Vec<MigrationWindow>,
    /// Per-shard recovery attribution: shards retired by shrink steps
    /// first (in retirement order), then the final fleet by slot.
    pub recovery: Vec<ShardRecovery>,
    pub stats: FleetStats,
    /// Observability-plane output, when an observer was attached.
    pub obs: Option<ObsReport>,
}

/// How the observability plane watches a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserverConfig {
    /// Sim-time observation cadence, µs. 0 ⇒ the checkpoint cadence.
    pub cadence_us: u64,
    /// Time-series points retained (bounded ring).
    pub series_capacity: usize,
    /// Health transitions retained in the alert stream.
    pub transition_capacity: usize,
    /// SLO thresholds for the watchdog.
    pub slo: SloThresholds,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            cadence_us: 0,
            series_capacity: 4_096,
            transition_capacity: 4_096,
            slo: SloThresholds::default(),
        }
    }
}

/// What the observer hands back in the final [`FleetReport`].
#[derive(Debug)]
pub struct ObsReport {
    /// The final `fleet_status`: per-shard health and the retained
    /// alert stream.
    pub status: FleetStatus,
    /// The retained time-series window as JSONL, one tick per line.
    pub series_jsonl: String,
    /// Time-series points shed by the bounded ring.
    pub series_dropped: u64,
    /// Cumulative fleet-wide metrics (all per-shard registries merged,
    /// including shards retired by shrink steps).
    pub snapshot: Snapshot,
}

/// Live observability state: per-shard registries with delta
/// watermarks, the bounded time-series ring, and the SLO watchdog.
struct Observer {
    registries: Vec<Arc<Registry>>,
    trackers: Vec<DeltaTracker>,
    /// Registries of shards retired by shrink steps: still
    /// delta-tracked every tick and merged into the final snapshot, so
    /// cumulative metrics never go backwards across a resize.
    retired: Vec<(Arc<Registry>, DeltaTracker)>,
    series: SeriesRing,
    watchdog: Watchdog,
    next_tick: SimTime,
    every: Duration,
}

struct Counters {
    packets: Arc<Counter>,
    verdicts: Arc<Counter>,
    dedup_dropped: Arc<Counter>,
    kills: Arc<Counter>,
    stalls: Arc<Counter>,
    restarts: Arc<Counter>,
    cold_starts: Arc<Counter>,
    checkpoints: Arc<Counter>,
    checkpoints_rejected: Arc<Counter>,
    packets_lost: Arc<Counter>,
    victims_evicted: Arc<Counter>,
}

impl Counters {
    fn new(reg: &Registry) -> Self {
        Counters {
            packets: reg.counter("fleet.packets"),
            verdicts: reg.counter("fleet.verdicts"),
            dedup_dropped: reg.counter("fleet.dedup_dropped"),
            kills: reg.counter("fleet.kills"),
            stalls: reg.counter("fleet.stalls"),
            restarts: reg.counter("fleet.restarts"),
            cold_starts: reg.counter("fleet.cold_starts"),
            checkpoints: reg.counter("fleet.checkpoints"),
            checkpoints_rejected: reg.counter("fleet.checkpoints_rejected"),
            packets_lost: reg.counter("fleet.packets_lost"),
            victims_evicted: reg.counter("fleet.victims_evicted"),
        }
    }
}

/// Where one slot's decoders actually live: in this address space, or
/// behind a child process speaking the [`crate::process`] protocol.
/// Every in-process operation is infallible; every process operation
/// can surface a [`WorkerFault`], which the supervisor absorbs as a
/// crash.
enum ShardRunner {
    InProcess(ShardState),
    Process(ProcessShard),
}

impl ShardRunner {
    fn set_registry(&mut self, registry: Arc<Registry>) {
        // Process workers keep decoder metrics child-side; the
        // observer still sees supervisor-level vitals for them.
        if let ShardRunner::InProcess(state) = self {
            state.set_registry(registry);
        }
    }

    fn flush_telemetry(&mut self) {
        if let ShardRunner::InProcess(state) = self {
            state.flush_telemetry();
        }
    }

    /// Live victims (for a process shard: as of the last reply, which
    /// survives the child's death — exactly what loss accounting
    /// needs).
    fn live_victims(&self) -> Vec<u32> {
        match self {
            ShardRunner::InProcess(s) => s.live_victims().collect(),
            ShardRunner::Process(p) => p.live_victims().collect(),
        }
    }

    fn state_bytes(&self) -> usize {
        match self {
            ShardRunner::InProcess(s) => s.state_bytes(),
            ShardRunner::Process(p) => p.state_bytes(),
        }
    }

    fn feed(
        &mut self,
        victim: u32,
        time: SimTime,
        frame: &[u8],
        max_victims: usize,
        out: &mut Vec<(u32, OnlineVerdict)>,
    ) -> Result<(), WorkerFault> {
        match self {
            ShardRunner::InProcess(s) => {
                s.feed(victim, time, frame, max_victims, out);
                Ok(())
            }
            ShardRunner::Process(p) => {
                out.extend(p.feed(victim, time, frame, max_victims)?);
                Ok(())
            }
        }
    }

    fn evict_idle(
        &mut self,
        now: SimTime,
        idle: Duration,
        out: &mut Vec<(u32, OnlineVerdict)>,
    ) -> Result<u64, WorkerFault> {
        match self {
            ShardRunner::InProcess(s) => Ok(s.evict_idle(now, idle, out).len() as u64),
            ShardRunner::Process(p) => {
                let before = p.live_victim_count();
                out.extend(p.evict_idle(now, idle)?);
                Ok(before.saturating_sub(p.live_victim_count()) as u64)
            }
        }
    }

    fn finish_all(&mut self, out: &mut Vec<(u32, OnlineVerdict)>) -> Result<u64, WorkerFault> {
        match self {
            ShardRunner::InProcess(s) => Ok(s.finish_all(out).len() as u64),
            ShardRunner::Process(p) => {
                let before = p.live_victim_count();
                out.extend(p.finish_all()?);
                Ok(before.saturating_sub(p.live_victim_count()) as u64)
            }
        }
    }

    fn checkpoint(&mut self, taken: SimTime) -> Result<Vec<u8>, WorkerFault> {
        match self {
            ShardRunner::InProcess(s) => Ok(s.checkpoint(taken)),
            ShardRunner::Process(p) => p.checkpoint(taken),
        }
    }

    fn drain_victims(
        &mut self,
        victims: &[u32],
    ) -> Result<Vec<(u32, SimTime, Value)>, WorkerFault> {
        match self {
            ShardRunner::InProcess(s) => Ok(s.drain_victims(victims)),
            ShardRunner::Process(p) => p.drain_victims(victims),
        }
    }

    /// Hard-kill a process child (no-op in-process): the supervisor
    /// side of a `ProcessAbort` fault.
    fn kill_process(&mut self) {
        if let ShardRunner::Process(p) = self {
            p.kill();
        }
    }
}

/// Supervisor-side bookkeeping for one shard.
struct ShardSlot {
    /// Live runner; `None` while the shard is dead awaiting restart.
    state: Option<ShardRunner>,
    /// Last checkpoint written (possibly damaged by a fault).
    latest: Option<Vec<u8>>,
    /// The checkpoint before that — the fallback when `latest` is
    /// rejected at restore. Depth two is deliberate: a single
    /// corrupt-write fault can poison at most one blob.
    prev: Option<Vec<u8>>,
    /// Sim-time when the next checkpoint is due.
    next_checkpoint: SimTime,
    /// When the last checkpoint was written (ZERO if never): the true
    /// start of any loss window, since a restore rolls back to it.
    last_checkpoint_at: SimTime,
    /// When the shard was last killed (meaningful only while dead).
    killed_at: SimTime,
    /// Scheduled restart time while dead.
    restart_at: Option<SimTime>,
    /// Exponent for the capped exponential restart backoff.
    backoff_exp: u32,
    /// Shard ignores (queues) packets until this instant.
    stalled_until: SimTime,
    /// Packets queued during a stall, in arrival order.
    stall_queue: Vec<(SimTime, u32, Vec<u8>)>,
    /// Fault kind to apply to the next checkpoint write.
    damage: Option<ShardFaultKind>,
    /// Open per-victim loss windows: victim → window start.
    open_loss: BTreeMap<u32, SimTime>,
    /// Open `fleet.restart` trace span while dead.
    span: SpanId,
    /// Restores completed on this shard (vitals for the watchdog).
    restarts: u64,
    /// Restore attempts rejected, attributed here by
    /// [`ShardRestoreError::shard`].
    restore_failures: u64,
    /// Child processes spawned for this shard after a crash.
    respawns: u64,
    /// Sim-time this shard spent dead before each restore, summed.
    recovery_latency_us: u64,
}

impl ShardSlot {
    fn new(first_checkpoint: SimTime) -> Self {
        ShardSlot {
            state: None,
            latest: None,
            prev: None,
            next_checkpoint: first_checkpoint,
            last_checkpoint_at: SimTime::ZERO,
            killed_at: SimTime::ZERO,
            restart_at: None,
            backoff_exp: 0,
            stalled_until: SimTime::ZERO,
            stall_queue: Vec::new(),
            damage: None,
            open_loss: BTreeMap::new(),
            span: SpanId::NONE,
            restarts: 0,
            restore_failures: 0,
            respawns: 0,
            recovery_latency_us: 0,
        }
    }

    fn recovery(&self, shard: u32) -> ShardRecovery {
        ShardRecovery {
            shard,
            restarts: self.restarts,
            restore_failures: self.restore_failures,
            respawns: self.respawns,
            recovery_latency_us: self.recovery_latency_us,
        }
    }
}

/// One victim in flight between shards during a resize step.
struct Migration {
    victim: u32,
    from_shard: u32,
    seen: SimTime,
    value: Value,
    /// At-risk window (from == to for a lossless live drain).
    from: SimTime,
    to: SimTime,
}

/// The supervised fleet. Construct with [`Fleet::new`], optionally
/// attach telemetry/tracing, a fault plan, and a resize schedule, feed
/// packets with [`Fleet::push`], then collect the merged
/// [`FleetReport`] with [`Fleet::finish`].
pub struct Fleet {
    cfg: FleetConfig,
    classifier: IntervalClassifier,
    graph: Arc<StoryGraph>,
    ring: HashRing,
    slots: Vec<ShardSlot>,
    dedup: VerdictDedup,
    verdicts: Vec<(u32, OnlineVerdict)>,
    losses: Vec<LossWindow>,
    plan: Vec<ShardFault>,
    cursor: usize,
    resize_steps: Vec<ResizeStep>,
    resize_cursor: usize,
    migrations: Vec<MigrationWindow>,
    retired_recovery: Vec<ShardRecovery>,
    damage_seq: u64,
    now: SimTime,
    stats: FleetStats,
    counters: Option<Counters>,
    trace: Option<(TraceHandle, SpanId)>,
    observer: Option<Observer>,
    pool: Pool,
    scratch: Vec<(u32, OnlineVerdict)>,
    /// Resolved shard-worker binary (process backend only).
    worker: Option<PathBuf>,
}

impl Fleet {
    pub fn new(
        cfg: FleetConfig,
        classifier: IntervalClassifier,
        graph: Arc<StoryGraph>,
    ) -> Result<Self, FleetConfigError> {
        cfg.validate()?;
        let worker = match &cfg.backend {
            ShardBackend::InProcess => None,
            ShardBackend::Process { worker } => {
                Some(resolve_worker(worker.as_deref()).ok_or(FleetConfigError::Worker)?)
            }
        };
        let ring = HashRing::new(cfg.ring_seed, cfg.shards, cfg.vnodes_per_shard);
        let first = SimTime(cfg.checkpoint_every.micros());
        let mut slots = Vec::with_capacity(cfg.shards);
        for k in 0..cfg.shards {
            let mut slot = ShardSlot::new(first);
            slot.state = Some(match &worker {
                None => ShardRunner::InProcess(ShardState::new(
                    k as u32,
                    classifier.clone(),
                    graph.clone(),
                    cfg.decode.clone(),
                )),
                Some(path) => ShardRunner::Process(
                    ProcessShard::spawn(path, k as u32, &classifier, &graph, &cfg.decode)
                        .map_err(|_| FleetConfigError::Worker)?,
                ),
            });
            slots.push(slot);
        }
        let pool = Pool::new(cfg.restore_workers);
        Ok(Fleet {
            cfg,
            classifier,
            graph,
            ring,
            slots,
            dedup: VerdictDedup::new(),
            verdicts: Vec::new(),
            losses: Vec::new(),
            plan: Vec::new(),
            cursor: 0,
            resize_steps: Vec::new(),
            resize_cursor: 0,
            migrations: Vec::new(),
            retired_recovery: Vec::new(),
            damage_seq: 0,
            now: SimTime::ZERO,
            stats: FleetStats::default(),
            counters: None,
            trace: None,
            observer: None,
            pool,
            scratch: Vec::new(),
            worker,
        })
    }

    /// Arm a fault plan. Must be called before the first packet.
    pub fn inject(&mut self, plan: &ShardFaultPlan) {
        self.plan = plan.events().to_vec();
        self.cursor = 0;
    }

    /// Arm a resize schedule. Must be called before the first packet.
    /// Steps dated after the end of the stream never fire.
    pub fn schedule_resize(&mut self, schedule: &ResizeSchedule) {
        self.resize_steps = schedule.steps().to_vec();
        self.resize_cursor = 0;
    }

    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.counters = Some(Counters::new(registry));
    }

    pub fn attach_trace(&mut self, handle: TraceHandle, parent: SpanId) {
        self.trace = Some((handle, parent));
    }

    /// Attach the observability plane: one registry per shard (every
    /// decoder's `online.*` metrics, surviving kill/restore), a
    /// bounded time-series ring fed on the observation cadence, and
    /// the SLO watchdog scoring per-shard vitals into health states.
    /// Health transitions are mirrored as `obs.health.*` trace
    /// instants when a trace is attached.
    pub fn attach_observer(&mut self, cfg: ObserverConfig) {
        let shards = self.slots.len();
        let registries: Vec<Arc<Registry>> =
            (0..shards).map(|_| Arc::new(Registry::new())).collect();
        for (slot, reg) in self.slots.iter_mut().zip(&registries) {
            if let Some(state) = slot.state.as_mut() {
                state.set_registry(reg.clone());
            }
        }
        let every = if cfg.cadence_us == 0 {
            self.cfg.checkpoint_every
        } else {
            Duration::from_micros(cfg.cadence_us)
        };
        self.observer = Some(Observer {
            registries,
            trackers: (0..shards).map(|_| DeltaTracker::new()).collect(),
            retired: Vec::new(),
            series: SeriesRing::new(cfg.series_capacity),
            watchdog: Watchdog::new(shards, cfg.slo, cfg.transition_capacity),
            next_tick: SimTime(every.micros().max(1)),
            every,
        });
    }

    /// The current `fleet_status` report: per-shard health as of the
    /// last observation tick, plus the retained alert stream. `None`
    /// until an observer is attached.
    pub fn fleet_status(&self) -> Option<FleetStatus> {
        self.observer.as_ref().map(|o| o.watchdog.status())
    }

    /// Cumulative fleet-wide metrics: every per-shard observer
    /// registry merged (including shards retired by shrink steps).
    /// `None` until an observer is attached. Decoders publish their
    /// counts at observation ticks, so values are exact as of the last
    /// tick (the finalized [`ObsReport`] snapshot is exact as of end
    /// of stream).
    pub fn observer_snapshot(&self) -> Option<Snapshot> {
        self.observer.as_ref().map(|o| {
            let parts: Vec<Snapshot> = o
                .registries
                .iter()
                .chain(o.retired.iter().map(|(r, _)| r))
                .map(|r| r.snapshot())
                .collect();
            Snapshot::merged(parts.iter())
        })
    }

    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Current shard count (changes as resize steps fire).
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Every victim migration performed so far by resize steps.
    pub fn migrations(&self) -> &[MigrationWindow] {
        &self.migrations
    }

    /// Per-shard recovery attribution: shards retired by shrink steps
    /// first (in retirement order), then the current fleet by slot.
    pub fn shard_recovery(&self) -> Vec<ShardRecovery> {
        let mut out = self.retired_recovery.clone();
        out.extend(
            self.slots
                .iter()
                .enumerate()
                .map(|(k, slot)| slot.recovery(k as u32)),
        );
        out
    }

    /// OS pids of live process-backed shard children, indexed by shard
    /// (empty for the in-process backend) — lets chaos tests and
    /// operators aim a real `kill -9` at one shard.
    pub fn worker_pids(&self) -> Vec<(u32, u32)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(k, s)| match s.state.as_ref() {
                Some(ShardRunner::Process(p)) => Some((k as u32, p.pid())),
                _ => None,
            })
            .collect()
    }

    /// Total resident decoder state across live shards, bytes. For
    /// process shards this is the child's figure as of its last reply.
    pub fn state_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| s.state.as_ref())
            .map(ShardRunner::state_bytes)
            .sum()
    }

    /// Victims tracked by the dedup stage (live + tombstoned).
    pub fn dedup_victims(&self) -> usize {
        self.dedup.live_victims()
    }

    /// Take every verdict delivered so far, in emission order —
    /// streaming consumption for long-haul runs, so delivered verdicts
    /// don't accumulate in the supervisor. The final report then
    /// carries only verdicts delivered after the last drain.
    pub fn drain_verdicts(&mut self) -> Vec<(u32, OnlineVerdict)> {
        std::mem::take(&mut self.verdicts)
    }

    /// Route one packet attributed to `victim` into the fleet.
    pub fn push(&mut self, time: SimTime, victim: u32, frame: &[u8]) {
        self.now = SimTime(self.now.micros().max(time.micros()));
        self.stats.packets += 1;
        if let Some(c) = &self.counters {
            c.packets.inc();
        }
        self.apply_due_faults();
        self.apply_due_restarts();
        self.drain_elapsed_stalls();
        self.apply_due_resizes();
        let shard = self.shard_for(victim);
        self.route(shard, time, victim, frame);
        self.checkpoint_tick();
        self.observer_tick();
    }

    /// End of input: drain stall queues, resurrect dead shards so
    /// their checkpointed tails still decode, finish every decoder,
    /// and produce the merged report.
    pub fn finish(mut self) -> FleetReport {
        // Any shard still dead gets one final restore attempt so the
        // verdicts sealed inside its last good checkpoint are not
        // silently discarded with it.
        let due: Vec<usize> = (0..self.slots.len())
            .filter(|&k| self.slots[k].state.is_none() && self.slots[k].restart_at.is_some())
            .collect();
        self.restore_shards(&due);
        for k in 0..self.slots.len() {
            let slot = &mut self.slots[k];
            slot.stalled_until = SimTime::ZERO;
            let queued = std::mem::take(&mut slot.stall_queue);
            for (t, v, frame) in queued {
                self.feed_shard(k, t, v, &frame);
            }
            let mut out = Vec::new();
            let finished = match self.slots[k].state.as_mut() {
                Some(state) => state.finish_all(&mut out),
                None => Ok(0),
            };
            let evicted = match finished {
                Ok(n) => n,
                Err(fault) => {
                    // The child died at the finish line: absorb the
                    // crash, respawn from the last good blob, and give
                    // the sealed tail one more chance to decode.
                    self.emit(&out);
                    out.clear();
                    self.absorb_worker_fault(k, fault);
                    self.restore_shards(&[k]);
                    match self.slots[k].state.as_mut() {
                        Some(state) => state.finish_all(&mut out).unwrap_or(0),
                        None => 0,
                    }
                }
            };
            self.stats.victims_evicted += evicted;
            if let Some(c) = &self.counters {
                c.victims_evicted.add(evicted);
            }
            self.emit(&out);
            let end = self.now;
            let slot = &mut self.slots[k];
            let opened: Vec<(u32, SimTime)> =
                std::mem::take(&mut slot.open_loss).into_iter().collect();
            for (victim, from) in opened {
                self.close_loss(k, victim, from, end);
            }
        }
        let obs = self.observer_finalize();
        let mut verdicts = std::mem::take(&mut self.verdicts);
        verdicts.sort_by_key(|(victim, v)| (*victim, v.index, v.choice.time.micros()));
        let mut loss_windows = std::mem::take(&mut self.losses);
        loss_windows.sort_by_key(|w| (w.from.micros(), w.shard, w.victim));
        let mut migrations = std::mem::take(&mut self.migrations);
        migrations.sort_by_key(|m| (m.at.micros(), m.victim, m.from_shard));
        let recovery = self.shard_recovery();
        FleetReport {
            verdicts,
            loss_windows,
            migrations,
            recovery,
            stats: self.stats,
            obs,
        }
    }

    // -- routing -------------------------------------------------------

    fn shard_for(&self, victim: u32) -> usize {
        // Route by victim attribution only: one victim's session spans
        // reconnect flows, rotated CDN frontends, and (under capture
        // impairment) runt frames with no parseable tuple, and its
        // decoder needs all of them on one shard.
        self.ring.shard_of(victim_key(self.cfg.ring_seed, victim))
    }

    fn route(&mut self, shard: usize, time: SimTime, victim: u32, frame: &[u8]) {
        let slot = &mut self.slots[shard];
        if slot.state.is_none() {
            // Dead shard: the packet is gone. Charge it to a loss
            // window so the report bounds the damage.
            slot.open_loss.entry(victim).or_insert(time);
            self.lose_packet();
            return;
        }
        if self.now.micros() < slot.stalled_until.micros() {
            if slot.stall_queue.len() < self.cfg.stall_queue_packets {
                slot.stall_queue.push((time, victim, frame.to_vec()));
            } else {
                slot.open_loss.entry(victim).or_insert(time);
                self.lose_packet();
            }
            return;
        }
        self.feed_shard(shard, time, victim, frame);
    }

    fn feed_shard(&mut self, shard: usize, time: SimTime, victim: u32, frame: &[u8]) {
        let max_victims = self.cfg.max_victims_per_shard;
        let mut out = std::mem::take(&mut self.scratch);
        let result = match self.slots[shard].state.as_mut() {
            Some(state) => state.feed(victim, time, frame, max_victims, &mut out),
            None => Ok(()),
        };
        self.emit(&out);
        out.clear();
        self.scratch = out;
        if let Err(fault) = result {
            // The shard's process died under this packet: absorb the
            // crash and charge the packet to a loss window.
            self.absorb_worker_fault(shard, fault);
            self.slots[shard].open_loss.entry(victim).or_insert(time);
            self.lose_packet();
        }
    }

    fn emit(&mut self, out: &[(u32, OnlineVerdict)]) {
        for (victim, verdict) in out {
            if self.dedup.admit(*victim, verdict) {
                self.stats.verdicts += 1;
                if let Some(c) = &self.counters {
                    c.verdicts.inc();
                }
                self.verdicts.push((*victim, verdict.clone()));
            } else {
                self.stats.dedup_dropped += 1;
                if let Some(c) = &self.counters {
                    c.dedup_dropped.inc();
                }
            }
        }
    }

    fn lose_packet(&mut self) {
        self.stats.packets_lost += 1;
        if let Some(c) = &self.counters {
            c.packets_lost.inc();
        }
    }

    fn close_loss(&mut self, shard: usize, victim: u32, from: SimTime, to: SimTime) {
        self.losses.push(LossWindow {
            shard: shard as u32,
            victim,
            from,
            to,
        });
    }

    // -- fault injection ----------------------------------------------

    fn apply_due_faults(&mut self) {
        while self.cursor < self.plan.len()
            && self.plan[self.cursor].at.micros() <= self.now.micros()
        {
            let fault = self.plan[self.cursor];
            self.cursor += 1;
            let shard = (fault.shard).min(self.slots.len().saturating_sub(1));
            match fault.kind {
                ShardFaultKind::Kill => self.kill_shard(shard, fault.at),
                ShardFaultKind::ProcessAbort => self.abort_shard(shard, fault.at),
                ShardFaultKind::Stall { stall } => self.stall_shard(shard, fault.at, stall),
                ShardFaultKind::CheckpointCorrupt | ShardFaultKind::CheckpointTorn => {
                    self.slots[shard].damage = Some(fault.kind);
                    self.trace_instant(fault.at, fault.kind.trace_name(), shard as u64, 0);
                }
            }
        }
    }

    fn kill_shard(&mut self, shard: usize, at: SimTime) {
        let cfg_base = self.cfg.backoff_base.micros().max(1);
        let cfg_cap = self.cfg.backoff_cap.micros().max(cfg_base);
        let slot = &mut self.slots[shard];
        let Some(state) = slot.state.take() else {
            return; // already dead: the fault is a no-op
        };
        // A restore rolls the shard back to its last checkpoint, so
        // verdicts in flight since then are at risk — the window
        // starts there, not at the kill.
        let window_from = slot.last_checkpoint_at;
        for victim in state.live_victims() {
            slot.open_loss.entry(victim).or_insert(window_from);
        }
        drop(state); // a process runner's child is SIGKILLed here
        slot.killed_at = at;
        let exp = slot.backoff_exp.min(20);
        let delay = cfg_base.saturating_mul(1u64 << exp).min(cfg_cap);
        slot.backoff_exp = slot.backoff_exp.saturating_add(1);
        slot.restart_at = Some(SimTime(at.micros() + delay));
        slot.stall_queue.clear();
        slot.stalled_until = SimTime::ZERO;
        self.stats.kills += 1;
        if let Some(c) = &self.counters {
            c.kills.inc();
        }
        if let Some((handle, parent)) = &self.trace {
            let span = handle.span_start_at(at.micros(), "fleet.restart", *parent);
            handle.instant_at(
                at.micros(),
                span,
                ShardFaultKind::Kill.trace_name(),
                shard as u64,
                delay,
            );
            self.slots[shard].span = span;
        }
    }

    /// A `ProcessAbort` fault: `kill -9` the shard's child process (a
    /// real SIGKILL when the shard is process-backed; in-process
    /// fleets degrade it to a plain kill) and absorb the crash.
    fn abort_shard(&mut self, shard: usize, at: SimTime) {
        if let Some(state) = self.slots[shard].state.as_mut() {
            state.kill_process();
        } else {
            return; // already dead: the fault is a no-op
        }
        self.trace_instant(
            at,
            ShardFaultKind::ProcessAbort.trace_name(),
            shard as u64,
            0,
        );
        self.kill_shard(shard, at);
    }

    /// A live exchange with a shard's worker failed — the child died
    /// (`kill -9`, OOM) or answered garbage. Absorb it exactly like a
    /// kill fault: the supervisor never exits, the restart path
    /// respawns from the last good checkpoint.
    fn absorb_worker_fault(&mut self, shard: usize, fault: WorkerFault) {
        self.trace_instant(self.now, "fleet.worker_fault", shard as u64, fault.code());
        self.kill_shard(shard, self.now);
    }

    fn stall_shard(&mut self, shard: usize, at: SimTime, stall: Duration) {
        let slot = &mut self.slots[shard];
        if slot.state.is_none() {
            return; // stalling a dead shard changes nothing
        }
        let until = at.micros() + stall.micros();
        slot.stalled_until = SimTime(slot.stalled_until.micros().max(until));
        self.stats.stalls += 1;
        if let Some(c) = &self.counters {
            c.stalls.inc();
        }
        self.trace_instant(
            at,
            ShardFaultKind::Stall { stall }.trace_name(),
            shard as u64,
            stall.micros(),
        );
    }

    fn drain_elapsed_stalls(&mut self) {
        for k in 0..self.slots.len() {
            let slot = &mut self.slots[k];
            if slot.state.is_none()
                || slot.stall_queue.is_empty()
                || self.now.micros() < slot.stalled_until.micros()
            {
                continue;
            }
            let queued = std::mem::take(&mut slot.stall_queue);
            for (t, v, frame) in queued {
                self.feed_shard(k, t, v, &frame);
            }
            // Stall-overflow loss ends when the queue drains: the
            // shard is consuming live input again.
            let end = self.now;
            let opened: Vec<(u32, SimTime)> = std::mem::take(&mut self.slots[k].open_loss)
                .into_iter()
                .collect();
            for (victim, from) in opened {
                self.close_loss(k, victim, from, end);
            }
        }
    }

    // -- restart / restore --------------------------------------------

    fn apply_due_restarts(&mut self) {
        let due: Vec<usize> = (0..self.slots.len())
            .filter(|&k| {
                self.slots[k].state.is_none()
                    && self.slots[k]
                        .restart_at
                        .is_some_and(|t| t.micros() <= self.now.micros())
            })
            .collect();
        self.restore_shards(&due);
    }

    /// A fresh, empty runner for slot `k` (cold start / grown shard).
    fn cold_runner(&self, k: usize) -> Result<ShardRunner, WorkerFault> {
        match &self.worker {
            None => Ok(ShardRunner::InProcess(ShardState::new(
                k as u32,
                self.classifier.clone(),
                self.graph.clone(),
                self.cfg.decode.clone(),
            ))),
            Some(path) => Ok(ShardRunner::Process(ProcessShard::spawn(
                path,
                k as u32,
                &self.classifier,
                &self.graph,
                &self.cfg.decode,
            )?)),
        }
    }

    /// Restore slot `k` from a checkpoint blob on the configured
    /// backend (in-process resume, or spawn-a-child-and-Restore).
    fn restore_runner(&self, k: usize, blob: &[u8]) -> Result<ShardRunner, ShardRestoreError> {
        match &self.worker {
            None => ShardState::restore(
                k as u32,
                blob,
                self.classifier.clone(),
                self.graph.clone(),
                self.cfg.decode.clone(),
            )
            .map(ShardRunner::InProcess),
            Some(path) => {
                let worker_err = |w: WorkerFault| ShardRestoreError {
                    shard: k as u32,
                    kind: ShardRestoreErrorKind::Worker(w),
                };
                let mut p = ProcessShard::spawn(
                    path,
                    k as u32,
                    &self.classifier,
                    &self.graph,
                    &self.cfg.decode,
                )
                .map_err(worker_err)?;
                p.restore(k as u32, blob)?;
                Ok(ShardRunner::Process(p))
            }
        }
    }

    /// Restore the given dead shards from their stored checkpoints.
    /// Two or more simultaneous in-process restores rehydrate in
    /// parallel on the persistent pool; results merge back in shard
    /// order, so the outcome is identical to a serial restore. Process
    /// restores are one IPC exchange each — the heavy rehydration
    /// happens inside the children, which are their own OS-level
    /// parallelism.
    fn restore_shards(&mut self, due: &[usize]) {
        if due.is_empty() {
            return;
        }
        let mut primary: Vec<Option<Result<ShardRunner, ShardRestoreError>>> =
            Vec::with_capacity(due.len());
        if self.worker.is_none() && due.len() >= 2 {
            let jobs: Vec<(u32, Option<Vec<u8>>)> = due
                .iter()
                .map(|&k| (k as u32, self.slots[k].latest.clone()))
                .collect();
            let classifier = self.classifier.clone();
            let graph = self.graph.clone();
            let decode = self.cfg.decode.clone();
            let jobs = Arc::new(jobs);
            primary = self.pool.run(due.len(), move |i| {
                let (slot, blob) = &jobs[i];
                blob.as_ref().map(|blob| {
                    ShardState::restore(
                        *slot,
                        blob,
                        classifier.clone(),
                        graph.clone(),
                        decode.clone(),
                    )
                    .map(ShardRunner::InProcess)
                })
            });
        } else {
            for &k in due {
                let blob = self.slots[k].latest.clone();
                primary.push(blob.map(|blob| self.restore_runner(k, &blob)));
            }
        }
        for (slot_idx, outcome) in due.iter().zip(primary) {
            self.finish_restore(*slot_idx, outcome);
        }
    }

    fn finish_restore(
        &mut self,
        k: usize,
        primary: Option<Result<ShardRunner, ShardRestoreError>>,
    ) {
        let now = self.now;
        let mut cold = false;
        let state = match primary {
            Some(Ok(state)) => Some(state),
            Some(Err(e)) => {
                // Latest blob is damaged (the error names this slot:
                // e.shard == k): count it against the shard, fall back
                // to the previous good checkpoint, else start cold.
                debug_assert_eq!(e.shard, k as u32);
                self.stats.checkpoints_rejected += 1;
                self.slots[k].restore_failures += 1;
                if let Some(c) = &self.counters {
                    c.checkpoints_rejected.inc();
                }
                let prev = self.slots[k].prev.clone();
                let fallback = match prev {
                    Some(blob) => match self.restore_runner(k, &blob) {
                        Ok(state) => Some(state),
                        Err(_) => {
                            self.slots[k].restore_failures += 1;
                            None
                        }
                    },
                    None => None,
                };
                match fallback {
                    Some(state) => Some(state),
                    None => {
                        cold = true;
                        None
                    }
                }
            }
            None => {
                cold = true;
                None
            }
        };
        let mut state = match state {
            Some(state) => state,
            None => match self.cold_runner(k) {
                Ok(state) => state,
                Err(_) => {
                    // Even the replacement worker failed to spawn:
                    // leave the slot dead and retry on the next
                    // backoff step. The restart span stays open.
                    let base = self.cfg.backoff_base.micros().max(1);
                    let cap = self.cfg.backoff_cap.micros().max(base);
                    let slot = &mut self.slots[k];
                    slot.restore_failures += 1;
                    let exp = slot.backoff_exp.min(20);
                    let delay = base.saturating_mul(1u64 << exp).min(cap);
                    slot.backoff_exp = slot.backoff_exp.saturating_add(1);
                    slot.restart_at = Some(SimTime(now.micros() + delay));
                    return;
                }
            },
        };
        if let Some(obs) = &self.observer {
            // Restored decoders come back without telemetry; point
            // them at this shard's observer registry again.
            state.set_registry(obs.registries[k].clone());
        }
        let respawned = matches!(state, ShardRunner::Process(_));
        let slot = &mut self.slots[k];
        slot.state = Some(state);
        slot.restart_at = None;
        slot.restarts += 1;
        if respawned {
            slot.respawns += 1;
            self.stats.process_respawns += 1;
        }
        slot.next_checkpoint = SimTime(now.micros() + self.cfg.checkpoint_every.micros());
        self.stats.restarts += 1;
        let latency = now
            .micros()
            .saturating_sub(self.slots[k].killed_at.micros());
        self.stats.recovery_latency_us += latency;
        self.slots[k].recovery_latency_us += latency;
        if cold {
            self.stats.cold_starts += 1;
        }
        if let Some(c) = &self.counters {
            c.restarts.inc();
            if cold {
                c.cold_starts.inc();
            }
        }
        // The restored decoder re-numbers evidence records starting
        // from the checkpoint, so for roughly the span of traffic
        // consumed between that checkpoint and the kill its fresh
        // verdicts collide with the dedup high-water and are dropped
        // (the bounded-loss half of the contract). Extend the window
        // past the restore by that replay span so every such drop is
        // covered by the report.
        let killed_at = self.slots[k].killed_at;
        let opened: Vec<(u32, SimTime)> = std::mem::take(&mut self.slots[k].open_loss)
            .into_iter()
            .collect();
        for (victim, from) in opened {
            let replay = killed_at.micros().saturating_sub(from.micros());
            self.close_loss(k, victim, from, SimTime(now.micros() + replay));
        }
        let span = self.slots[k].span;
        if span != SpanId::NONE {
            if let Some((handle, _)) = &self.trace {
                handle.span_end_at(now.micros(), span, "fleet.restart");
            }
            self.slots[k].span = SpanId::NONE;
        }
    }

    // -- live resharding ----------------------------------------------

    fn apply_due_resizes(&mut self) {
        while self.resize_cursor < self.resize_steps.len()
            && self.resize_steps[self.resize_cursor].at.micros() <= self.now.micros()
        {
            let step = self.resize_steps[self.resize_cursor];
            self.resize_cursor += 1;
            self.resize_to(step.at, step.shards);
        }
    }

    /// One resize step: grow fresh slots, drain/split every migrating
    /// victim off its old owner, swap the ring, retire shrunk slots,
    /// then rehydrate the migrants on their new owners. See
    /// [`crate::resize`] for the protocol contract.
    fn resize_to(&mut self, at: SimTime, new_count: usize) {
        let old_count = self.slots.len();
        self.stats.resizes += 1;
        self.trace_instant(
            at,
            "obs.fleet.resize.step",
            new_count as u64,
            old_count as u64,
        );
        if new_count == old_count {
            return;
        }
        // Grow first, so migrations can land on live runners. A failed
        // worker spawn leaves the new slot dead with a scheduled
        // restart, like any other crash.
        for k in old_count..new_count {
            let mut slot =
                ShardSlot::new(SimTime(at.micros() + self.cfg.checkpoint_every.micros()));
            match self.cold_runner(k) {
                Ok(runner) => slot.state = Some(runner),
                Err(_) => {
                    slot.restore_failures += 1;
                    slot.killed_at = at;
                    slot.backoff_exp = 1;
                    slot.restart_at =
                        Some(SimTime(at.micros() + self.cfg.backoff_base.micros().max(1)));
                }
            }
            self.slots.push(slot);
            if let Some(obs) = self.observer.as_mut() {
                let reg = Arc::new(Registry::new());
                obs.registries.push(reg.clone());
                obs.trackers.push(DeltaTracker::new());
                if let Some(state) = self.slots[k].state.as_mut() {
                    state.set_registry(reg);
                }
            }
        }
        // Collect every migration: victims whose new-ring owner is not
        // their current shard (all victims of a removed shard, by
        // construction — the ring no longer has its arcs).
        let new_ring = HashRing::new(self.cfg.ring_seed, new_count, self.cfg.vnodes_per_shard);
        let mut moves: Vec<Migration> = Vec::new();
        let mut requeue: Vec<(SimTime, u32, Vec<u8>)> = Vec::new();
        {
            let seed = self.cfg.ring_seed;
            let owns = |victim: u32| new_ring.shard_of(victim_key(seed, victim));
            for k in 0..old_count {
                let removed = k >= new_count;
                // Live source: lossless drain of full decoder state.
                let candidates: Vec<u32> = match self.slots[k].state.as_ref() {
                    Some(runner) => runner
                        .live_victims()
                        .into_iter()
                        .filter(|&v| removed || owns(v) != k)
                        .collect(),
                    None => Vec::new(),
                };
                if !candidates.is_empty() {
                    let drained = {
                        let runner = self.slots[k].state.as_mut().expect("live checked above");
                        // Buffered event counts belong to the shard
                        // the events happened on.
                        runner.flush_telemetry();
                        runner.drain_victims(&candidates)
                    };
                    match drained {
                        Ok(entries) => {
                            for (victim, seen, value) in entries {
                                // Any stall-overflow loss this victim
                                // accrued here ends with the move.
                                if let Some(from) = self.slots[k].open_loss.remove(&victim) {
                                    self.close_loss(k, victim, from, at);
                                }
                                moves.push(Migration {
                                    victim,
                                    from_shard: k as u32,
                                    seen,
                                    value,
                                    from: at,
                                    to: at,
                                });
                            }
                        }
                        Err(fault) => self.absorb_worker_fault(k, fault),
                    }
                }
                // Dead source (possibly absorbed just above): split
                // the stored blob; migrants roll back to it, exactly a
                // kill's loss semantics.
                if self.slots[k].state.is_none() {
                    self.split_dead_source(k, removed, at, &owns, &mut moves);
                }
                // Packets queued for migrating victims chase them to
                // the new owner once the ring swaps.
                let slot = &mut self.slots[k];
                if removed {
                    requeue.append(&mut slot.stall_queue);
                } else {
                    let mut kept = Vec::new();
                    for pkt in slot.stall_queue.drain(..) {
                        if owns(pkt.1) != k {
                            requeue.push(pkt);
                        } else {
                            kept.push(pkt);
                        }
                    }
                    slot.stall_queue = kept;
                }
            }
        }
        self.ring = new_ring;
        // Shrink: retire the removed slots, preserving their recovery
        // attribution and observer registries.
        if new_count < old_count {
            for k in new_count..old_count {
                self.retired_recovery.push(self.slots[k].recovery(k as u32));
                let span = self.slots[k].span;
                if span != SpanId::NONE {
                    if let Some((handle, _)) = &self.trace {
                        handle.span_end_at(at.micros(), span, "fleet.restart");
                    }
                }
            }
            // Dropping a process-backed slot SIGKILLs its child.
            self.slots.truncate(new_count);
            if let Some(obs) = self.observer.as_mut() {
                let regs = obs.registries.split_off(new_count);
                let trackers = obs.trackers.split_off(new_count);
                obs.retired.extend(regs.into_iter().zip(trackers));
            }
        }
        if let Some(obs) = self.observer.as_mut() {
            obs.watchdog.resize(new_count);
        }
        // Rehydrate every migrant on its new owner, in deterministic
        // (victim, source) order.
        moves.sort_by_key(|m| (m.victim, m.from_shard));
        self.deliver_migrations(at, moves);
        for (t, v, frame) in requeue {
            let shard = self.shard_for(v);
            self.route(shard, t, v, &frame);
        }
    }

    /// Migrate victims out of a *dead* shard: split its last parseable
    /// checkpoint blob (the same one its restart would use), lift the
    /// migrants' sub-documents out as moves, and re-seal the remainder
    /// so the shard's own restart cannot resurrect a victim it no
    /// longer owns.
    fn split_dead_source(
        &mut self,
        k: usize,
        removed: bool,
        at: SimTime,
        owns: &dyn Fn(u32) -> usize,
        moves: &mut Vec<Migration>,
    ) {
        let mut to_close: Vec<(u32, SimTime, SimTime)> = Vec::new();
        {
            let slot = &mut self.slots[k];
            let killed_at = slot.killed_at;
            let last_ckpt = slot.last_checkpoint_at;
            let parsed_latest = slot
                .latest
                .as_ref()
                .and_then(|b| parse_envelope(k as u32, b).ok());
            let parsed_prev = slot
                .prev
                .as_ref()
                .and_then(|b| parse_envelope(k as u32, b).ok());
            let mut migrated: Vec<u32> = Vec::new();
            {
                // Moves come from the blob the restore path would
                // pick: latest if parseable, else prev.
                let source = parsed_latest.as_ref().or(parsed_prev.as_ref());
                if let Some(env) = source {
                    for (victim, seen, value) in &env.victims {
                        if !(removed || owns(*victim) != k) {
                            continue;
                        }
                        migrated.push(*victim);
                        let from = slot.open_loss.remove(victim).unwrap_or(last_ckpt);
                        let replay = killed_at.micros().saturating_sub(from.micros());
                        moves.push(Migration {
                            victim: *victim,
                            from_shard: k as u32,
                            seen: *seen,
                            value: value.clone(),
                            from,
                            to: SimTime(at.micros() + replay),
                        });
                    }
                }
            }
            // Scrub the migrants out of BOTH stored blobs: after the
            // ring swap this shard no longer owns them, and restoring
            // them here would make two shards emit for one victim.
            if !migrated.is_empty() {
                if let Some(mut env) = parsed_latest {
                    env.victims.retain(|(v, _, _)| !migrated.contains(v));
                    slot.latest = Some(env.to_bytes());
                }
                if let Some(mut env) = parsed_prev {
                    env.victims.retain(|(v, _, _)| !migrated.contains(v));
                    slot.prev = Some(env.to_bytes());
                }
            }
            // A removed dead shard takes any unparseable remainder
            // with it: close the leftover windows with the kill-style
            // replay bound, because that state is now gone for good.
            if removed {
                let opened: Vec<(u32, SimTime)> =
                    std::mem::take(&mut slot.open_loss).into_iter().collect();
                for (victim, from) in opened {
                    let replay = killed_at.micros().saturating_sub(from.micros());
                    to_close.push((victim, from, SimTime(at.micros() + replay)));
                }
            }
        }
        for (victim, from, to) in to_close {
            self.close_loss(k, victim, from, to);
        }
    }

    /// Deliver collected migrations to their new owners. In-process
    /// targets rehydrate on the pool when there are several; results
    /// merge back in the sorted move order, so the outcome is
    /// byte-identical to a serial resume.
    fn deliver_migrations(&mut self, at: SimTime, moves: Vec<Migration>) {
        if moves.is_empty() {
            return;
        }
        let mut prebuilt: Vec<Option<Result<OnlineDecoder, CheckpointError>>> =
            (0..moves.len()).map(|_| None).collect();
        if self.worker.is_none() && moves.len() >= 2 {
            let graph = self.graph.clone();
            let values: Vec<Value> = moves.iter().map(|m| m.value.clone()).collect();
            let values = Arc::new(values);
            prebuilt = self.pool.run(moves.len(), move |i| {
                Some(OnlineDecoder::resume_from_value(&values[i], graph.clone()))
            });
        }
        for (m, pre) in moves.into_iter().zip(prebuilt) {
            let target = self.shard_for(m.victim);
            let adopted = self.deliver_one(target, &m, pre);
            self.stats.victims_migrated += 1;
            if !adopted {
                self.stats.migrate_failures += 1;
            }
            self.trace_instant(
                at,
                "obs.fleet.resize.migrate",
                m.victim as u64,
                target as u64,
            );
            self.migrations.push(MigrationWindow {
                victim: m.victim,
                from_shard: m.from_shard,
                to_shard: target as u32,
                at,
                from: m.from,
                to: m.to,
            });
            if m.from != m.to {
                // Rollback loss is loss no matter which subsystem
                // caused it: mirror the lossy window into the loss
                // report under the source shard.
                self.close_loss(m.from_shard as usize, m.victim, m.from, m.to);
            }
        }
    }

    /// Install one migrant on shard `target`. Returns false when the
    /// state document could not be carried over (the victim restarts
    /// cold on its next packet).
    fn deliver_one(
        &mut self,
        target: usize,
        m: &Migration,
        prebuilt: Option<Result<OnlineDecoder, CheckpointError>>,
    ) -> bool {
        if self.slots[target].state.is_some() {
            let result: Result<bool, WorkerFault> =
                match self.slots[target].state.as_mut().expect("checked live") {
                    ShardRunner::InProcess(state) => Ok(match prebuilt {
                        Some(Ok(dec)) => {
                            state.adopt_decoder(m.victim, m.seen, dec);
                            true
                        }
                        Some(Err(_)) => false,
                        None => state.adopt_victim(m.victim, m.seen, &m.value).is_ok(),
                    }),
                    ShardRunner::Process(p) => p.adopt(m.victim, m.seen, &m.value),
                };
            match result {
                Ok(adopted) => return adopted,
                // The target's child died under the adopt: absorb the
                // crash and fall through to the dead-target path so
                // the migrant's state still survives in a blob.
                Err(fault) => self.absorb_worker_fault(target, fault),
            }
        }
        // Dead target: splice the migrant's document into the blob(s)
        // its restart will restore from, so the migrated state
        // survives the outage instead of being dropped on the floor.
        let slot = &mut self.slots[target];
        let mut placed = false;
        match &mut slot.latest {
            Some(bytes) => {
                if let Ok(mut env) = parse_envelope(target as u32, bytes) {
                    splice_victim(&mut env, m);
                    *bytes = env.to_bytes();
                    placed = true;
                }
            }
            None => {
                let env = ShardEnvelope {
                    shard: target as u32,
                    taken: slot.last_checkpoint_at,
                    victims: vec![(m.victim, m.seen, m.value.clone())],
                };
                slot.latest = Some(env.to_bytes());
                placed = true;
            }
        }
        if let Some(bytes) = &mut slot.prev {
            if let Ok(mut env) = parse_envelope(target as u32, bytes) {
                splice_victim(&mut env, m);
                *bytes = env.to_bytes();
                placed = true;
            }
        }
        placed
    }

    // -- checkpoint cadence -------------------------------------------

    fn checkpoint_tick(&mut self) {
        for k in 0..self.slots.len() {
            if self.slots[k].state.is_none()
                || self.now.micros() < self.slots[k].next_checkpoint.micros()
            {
                continue;
            }
            // Evict idle victims at checkpoint boundaries so the blob
            // (and resident state) stays bounded by concurrency.
            let idle = self.cfg.victim_idle;
            let now = self.now;
            let mut out = Vec::new();
            let evicted = {
                let runner = self.slots[k].state.as_mut().expect("checked live above");
                runner.evict_idle(now, idle, &mut out)
            };
            self.emit(&out);
            let evicted = match evicted {
                Ok(n) => n,
                Err(fault) => {
                    self.absorb_worker_fault(k, fault);
                    continue;
                }
            };
            self.stats.victims_evicted += evicted;
            if let Some(c) = &self.counters {
                c.victims_evicted.add(evicted);
            }
            let ckpt = {
                let runner = self.slots[k].state.as_mut().expect("checked live above");
                runner
                    .checkpoint(now)
                    .map(|blob| (blob, runner.state_bytes()))
            };
            let (blob, state_bytes) = match ckpt {
                Ok(pair) => pair,
                Err(fault) => {
                    self.absorb_worker_fault(k, fault);
                    continue;
                }
            };
            self.stats.shard_state_peak = self.stats.shard_state_peak.max(state_bytes as u64);
            let blob = match self.slots[k].damage.take() {
                Some(ShardFaultKind::CheckpointCorrupt) => {
                    let seed = self.next_damage_seed();
                    corrupt_blob(seed, &blob)
                }
                Some(ShardFaultKind::CheckpointTorn) => {
                    let seed = self.next_damage_seed();
                    tear_blob(seed, &blob)
                }
                _ => blob,
            };
            let slot = &mut self.slots[k];
            slot.prev = slot.latest.take();
            slot.latest = Some(blob);
            slot.last_checkpoint_at = now;
            // Surviving to a checkpoint proves the shard healthy:
            // reset the restart backoff.
            slot.backoff_exp = 0;
            while slot.next_checkpoint.micros() <= self.now.micros() {
                slot.next_checkpoint = SimTime(
                    slot.next_checkpoint.micros() + self.cfg.checkpoint_every.micros().max(1),
                );
            }
            self.stats.checkpoints += 1;
            if let Some(c) = &self.counters {
                c.checkpoints.inc();
            }
            self.trace_instant(now, "fleet.checkpoint", k as u64, state_bytes as u64);
        }
    }

    // -- observation cadence ------------------------------------------

    /// Run every observation tick the stream time has passed. Ticks
    /// are aligned sim-time multiples of the cadence, so the series is
    /// a function of the packet stream — never of arrival batching —
    /// and each point merges the per-shard registry deltas, which is
    /// partition-invariant across shard and worker counts.
    fn observer_tick(&mut self) {
        let Some(mut obs) = self.observer.take() else {
            return;
        };
        let every = obs.every.micros().max(1);
        while obs.next_tick.micros() <= self.now.micros() {
            let t = obs.next_tick;
            self.observe_point(&mut obs, t);
            obs.next_tick = SimTime(t.micros() + every);
        }
        self.observer = Some(obs);
    }

    /// One observation: score health, emit alert instants, take and
    /// merge the per-shard metric deltas into a series point.
    fn observe_point(&mut self, obs: &mut Observer, at: SimTime) {
        let vitals = self.shard_vitals(at);
        for tr in obs.watchdog.observe(at.micros(), &vitals) {
            self.trace_instant(at, tr.to.trace_name(), tr.shard as u64, tr.from.code());
        }
        // Decoders buffer their event counts; publish them so this
        // tick's deltas are exact.
        for slot in self.slots.iter_mut() {
            if let Some(state) = slot.state.as_mut() {
                state.flush_telemetry();
            }
        }
        let mut delta = Snapshot::default();
        for (reg, tracker) in obs.registries.iter().zip(obs.trackers.iter_mut()) {
            delta.merge(&tracker.take(reg));
        }
        for entry in obs.retired.iter_mut() {
            delta.merge(&entry.1.take(&entry.0));
        }
        obs.series.push(SeriesPoint {
            t_us: at.micros(),
            delta,
        });
    }

    /// Per-shard vitals at `at`, indexed by shard.
    fn shard_vitals(&self, at: SimTime) -> Vec<ShardVitals> {
        let state_bound = self.cfg.per_shard_state_bound() as u64;
        let cadence_us = self.cfg.checkpoint_every.micros();
        self.slots
            .iter()
            .enumerate()
            .map(|(k, slot)| ShardVitals {
                shard: k as u32,
                alive: slot.state.is_some(),
                stalled: at.micros() < slot.stalled_until.micros(),
                backoff_exp: slot.backoff_exp,
                restarts: slot.restarts,
                open_loss_windows: slot.open_loss.len() as u64,
                checkpoint_age_us: at.micros().saturating_sub(slot.last_checkpoint_at.micros()),
                checkpoint_cadence_us: cadence_us,
                state_bytes: slot
                    .state
                    .as_ref()
                    .map(|s| s.state_bytes() as u64)
                    .unwrap_or(0),
                state_bound,
                queued_packets: slot.stall_queue.len() as u64,
                restore_failures: slot.restore_failures,
                respawns: slot.respawns,
            })
            .collect()
    }

    /// End of run: catch up any pending ticks, take one final point at
    /// the stream's end so the tail (drained stalls, final decoder
    /// flushes) is on the series, and freeze the observer into its
    /// report.
    fn observer_finalize(&mut self) -> Option<ObsReport> {
        self.observer_tick();
        let mut obs = self.observer.take()?;
        self.observe_point(&mut obs, self.now);
        let parts: Vec<Snapshot> = obs
            .registries
            .iter()
            .chain(obs.retired.iter().map(|(r, _)| r))
            .map(|r| r.snapshot())
            .collect();
        Some(ObsReport {
            status: obs.watchdog.status(),
            series_jsonl: obs.series.to_jsonl(),
            series_dropped: obs.series.dropped(),
            snapshot: Snapshot::merged(parts.iter()),
        })
    }

    fn next_damage_seed(&mut self) -> u64 {
        self.damage_seq += 1;
        crate::ring::damage_seed(self.cfg.ring_seed, self.damage_seq)
    }

    fn trace_instant(&self, at: SimTime, name: &'static str, a: u64, b: u64) {
        if let Some((handle, parent)) = &self.trace {
            handle.instant_at(at.micros(), *parent, name, a, b);
        }
    }
}

/// Insert (or replace) one victim's sub-document in an envelope,
/// keeping victim-id order so the re-sealed bytes stay canonical.
fn splice_victim(env: &mut ShardEnvelope, m: &Migration) {
    env.victims.retain(|(v, _, _)| *v != m.victim);
    env.victims.push((m.victim, m.seen, m.value.clone()));
    env.victims.sort_by_key(|(v, _, _)| *v);
}
