//! A 128-bit ARX block cipher with CBC chaining and TLS 1.2 padding.
//!
//! The CBC cipher-suite family matters to the reproduction because CBC
//! *quantizes* record lengths to block multiples, widening the length
//! clusters the attack bins into (DESIGN.md, ablation 3). The block
//! cipher is a 4×u32 ARX permutation keyed by a splitmix-expanded key
//! schedule; chaining and padding follow TLS 1.2 §6.2.3.2:
//!
//! * plaintext is extended with `pad_len` bytes, each holding the value
//!   `pad_len - 1`, so the total is a block multiple (pad is 1..=16);
//! * a fresh explicit IV is prepended to every record.

use crate::kdf::splitmix64;
use crate::Key;

/// Cipher block size in bytes.
pub const BLOCK: usize = 16;

const ROUNDS: usize = 12;

/// Key-scheduled block cipher instance.
#[derive(Clone)]
pub struct BlockCipher {
    round_keys: [[u32; 4]; ROUNDS],
}

impl BlockCipher {
    /// Expand a 256-bit key into per-round subkeys.
    pub fn new(key: &Key) -> Self {
        let mut state = 0u64;
        for chunk in key.chunks(8) {
            state ^= u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            state = crate::kdf::mix(state);
        }
        let mut round_keys = [[0u32; 4]; ROUNDS];
        for rk in round_keys.iter_mut() {
            for w in rk.iter_mut() {
                *w = splitmix64(&mut state) as u32;
            }
        }
        BlockCipher { round_keys }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK]) {
        let mut w = load(block);
        for rk in &self.round_keys {
            for i in 0..4 {
                w[i] ^= rk[i];
            }
            // Speck-like ARX mixing across the four lanes.
            w[0] = w[0].rotate_right(8).wrapping_add(w[1]) ^ rk[0];
            w[1] = w[1].rotate_left(3) ^ w[0];
            w[2] = w[2].rotate_right(8).wrapping_add(w[3]) ^ rk[2];
            w[3] = w[3].rotate_left(3) ^ w[2];
            w.swap(1, 2);
        }
        store(&w, block);
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK]) {
        let mut w = load(block);
        for rk in self.round_keys.iter().rev() {
            w.swap(1, 2);
            w[3] = (w[3] ^ w[2]).rotate_right(3);
            w[2] = ((w[2] ^ rk[2]).wrapping_sub(w[3])).rotate_left(8);
            w[1] = (w[1] ^ w[0]).rotate_right(3);
            w[0] = ((w[0] ^ rk[0]).wrapping_sub(w[1])).rotate_left(8);
            for i in 0..4 {
                w[i] ^= rk[i];
            }
        }
        store(&w, block);
    }

    /// CBC-encrypt `plaintext` with TLS 1.2 padding.
    ///
    /// Output layout: `IV (16) || ciphertext blocks`. The IV must be
    /// unique per record; the record layer derives it from the sequence
    /// number.
    pub fn cbc_encrypt(&self, iv: &[u8; BLOCK], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 * BLOCK + plaintext.len());
        self.cbc_encrypt_into(iv, plaintext, &mut out);
        out
    }

    /// [`BlockCipher::cbc_encrypt`] appending to `out` — no padding
    /// scratch, no output allocation; the record layer reuses one wire
    /// buffer across records.
    pub fn cbc_encrypt_into(&self, iv: &[u8; BLOCK], plaintext: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(iv);
        let mut prev = *iv;
        let mut chain = |block: &mut [u8; BLOCK], out: &mut Vec<u8>| {
            for i in 0..BLOCK {
                block[i] ^= prev[i];
            }
            self.encrypt_block(block);
            out.extend_from_slice(block);
            prev = *block;
        };
        // Full plaintext blocks straight from the input…
        let full = plaintext.len() - plaintext.len() % BLOCK;
        for chunk in plaintext[..full].chunks_exact(BLOCK) {
            let mut block: [u8; BLOCK] = chunk.try_into().expect("block multiple");
            chain(&mut block, out);
        }
        // …then exactly one tail block carrying the TLS 1.2 padding
        // (a whole pad block when the plaintext is block-aligned).
        let rest = &plaintext[full..];
        let pad_len = BLOCK - rest.len();
        let mut block = [(pad_len - 1) as u8; BLOCK];
        block[..rest.len()].copy_from_slice(rest);
        chain(&mut block, out);
    }

    /// CBC-decrypt a record produced by [`BlockCipher::cbc_encrypt`].
    ///
    /// Returns `None` on bad length or malformed padding.
    pub fn cbc_decrypt(&self, data: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(data.len().saturating_sub(BLOCK));
        self.cbc_decrypt_into(data, &mut out)?;
        Some(out)
    }

    /// [`BlockCipher::cbc_decrypt`] appending the unpadded plaintext to
    /// `out`. On failure `out` is restored to its original length.
    pub fn cbc_decrypt_into(&self, data: &[u8], out: &mut Vec<u8>) -> Option<()> {
        if data.len() < 2 * BLOCK || !data.len().is_multiple_of(BLOCK) {
            return None;
        }
        let start = out.len();
        let mut prev: [u8; BLOCK] = data[..BLOCK].try_into().expect("iv");
        for chunk in data[BLOCK..].chunks(BLOCK) {
            let cipher_block: [u8; BLOCK] = chunk.try_into().expect("block multiple");
            let mut block = cipher_block;
            self.decrypt_block(&mut block);
            for i in 0..BLOCK {
                block[i] ^= prev[i];
            }
            out.extend_from_slice(&block);
            prev = cipher_block;
        }
        let fail = |out: &mut Vec<u8>| {
            out.truncate(start);
            None
        };
        let Some(&pad_byte) = out.last() else {
            return fail(out);
        };
        let pad_len = pad_byte as usize + 1;
        if pad_len > BLOCK || pad_len > out.len() - start {
            return fail(out);
        }
        if out[out.len() - pad_len..].iter().any(|&b| b != pad_byte) {
            return fail(out);
        }
        out.truncate(out.len() - pad_len);
        Some(())
    }
}

fn load(block: &[u8; BLOCK]) -> [u32; 4] {
    let mut w = [0u32; 4];
    for i in 0..4 {
        w[i] = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    w
}

fn store(w: &[u32; 4], block: &mut [u8; BLOCK]) {
    for i in 0..4 {
        block[i * 4..i * 4 + 4].copy_from_slice(&w[i].to_le_bytes());
    }
}

/// Ciphertext length (excluding IV) for a CBC payload of `plaintext_len`
/// bytes: padded up to the next block boundary (always at least one pad
/// byte).
pub fn cbc_ciphertext_len(plaintext_len: usize) -> usize {
    plaintext_len + (BLOCK - plaintext_len % BLOCK)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> BlockCipher {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = (i * 13 % 251) as u8;
        }
        BlockCipher::new(&key)
    }

    #[test]
    fn block_roundtrip() {
        let c = cipher();
        let mut block = *b"0123456789abcdef";
        let original = block;
        c.encrypt_block(&mut block);
        assert_ne!(block, original);
        c.decrypt_block(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn block_avalanche() {
        let c = cipher();
        let mut a = [0u8; BLOCK];
        let mut b = [0u8; BLOCK];
        b[0] = 1;
        c.encrypt_block(&mut a);
        c.encrypt_block(&mut b);
        let differing: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(differing > 32, "only {differing} bits differ");
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let c = cipher();
        let iv = [0xab; BLOCK];
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let plaintext: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = c.cbc_encrypt(&iv, &plaintext);
            assert_eq!(ct.len(), BLOCK + cbc_ciphertext_len(len), "len {len}");
            assert_eq!(
                c.cbc_decrypt(&ct).as_deref(),
                Some(&plaintext[..]),
                "len {len}"
            );
        }
    }

    #[test]
    fn cbc_length_quantization() {
        // Lengths 1..=16 all encrypt to one block (plus IV).
        for len in 1..=BLOCK {
            assert_eq!(cbc_ciphertext_len(len - 1) % BLOCK, 0);
        }
        assert_eq!(cbc_ciphertext_len(0), 16);
        assert_eq!(cbc_ciphertext_len(15), 16);
        assert_eq!(cbc_ciphertext_len(16), 32);
        assert_eq!(cbc_ciphertext_len(17), 32);
    }

    #[test]
    fn cbc_rejects_tampering() {
        let c = cipher();
        let iv = [1; BLOCK];
        let mut ct = c.cbc_encrypt(&iv, b"attack at dawn");
        // Flipping any byte of the final block corrupts the padding with
        // overwhelming probability; try a few.
        let n = ct.len();
        let mut rejected = 0;
        for i in 0..BLOCK {
            ct[n - 1 - i] ^= 0x55;
            if c.cbc_decrypt(&ct).is_none() {
                rejected += 1;
            }
            ct[n - 1 - i] ^= 0x55;
        }
        assert!(rejected > 10, "only {rejected}/16 tampers rejected");
    }

    #[test]
    fn cbc_rejects_malformed_input() {
        let c = cipher();
        assert!(c.cbc_decrypt(&[]).is_none());
        assert!(c.cbc_decrypt(&[0u8; BLOCK]).is_none()); // IV only
        assert!(c.cbc_decrypt(&[0u8; BLOCK + 5]).is_none()); // not block multiple
    }

    #[test]
    fn iv_changes_ciphertext() {
        let c = cipher();
        let a = c.cbc_encrypt(&[0; BLOCK], b"same plaintext");
        let b = c.cbc_encrypt(&[1; BLOCK], b"same plaintext");
        assert_ne!(a[BLOCK..], b[BLOCK..]);
    }
}
