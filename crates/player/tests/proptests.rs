//! Property-based tests for the player's byte calibration — the
//! invariant the whole Figure 2 reproduction rests on.
//!
//! Hand-rolled: the offline build environment has no proptest, so each
//! property runs over a few hundred cases drawn from a local splitmix64
//! driver. Failures print the case number for replay.

use wm_cipher::TAG_LEN;
use wm_player::state::{Type1Fields, Type2Fields};
use wm_player::{Browser, DeviceForm, Os, Profile, StateJsonBuilder};

/// Minimal splitmix64 case generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as usize) as i64
    }
    fn profile(&mut self) -> Profile {
        Profile::new(
            Os::ALL[self.below(Os::ALL.len().min(3))],
            Browser::ALL[self.below(Browser::ALL.len().min(2))],
            DeviceForm::ALL[self.below(DeviceForm::ALL.len().min(2))],
        )
    }
    /// Realistic field ranges for a Bandersnatch session: positions
    /// from 100 s to 2900 s, ids within the graph, session times
    /// within 2 h.
    fn fields(&mut self) -> Type1Fields {
        Type1Fields {
            session_ms: self.range_i64(0, 7_200_000),
            position_ms: self.range_i64(100_000, 2_900_000),
            segment_id: self.below(46) as u16,
            choice_point_id: self.below(16) as u16,
        }
    }
}

/// Type-1 reports always seal within 3 bytes of the platform target
/// — the paper's bucket width — for every profile, session seed and
/// realistic field values.
#[test]
fn type1_band_holds_everywhere() {
    for case in 0..300u64 {
        let mut rng = Rng(0x91_0000 + case);
        let profile = rng.profile();
        let seed = rng.next();
        let fields = rng.fields();
        let mut b = StateJsonBuilder::new(profile, seed);
        let sealed = b.type1_request(&fields).serialized_len() + TAG_LEN;
        let target = profile.type1_target_len();
        assert!(
            sealed <= target && sealed + 3 > target,
            "case {case} {}: sealed {} vs target {}",
            profile.label(),
            sealed,
            target
        );
    }
}

/// Type-2 reports stay within the paper's wider band (the target
/// minus the selection-label spread) for every realistic selection.
#[test]
fn type2_band_holds_everywhere() {
    for case in 0..300u64 {
        let mut rng = Rng(0x91_1000 + case);
        let profile = rng.profile();
        let seed = rng.next();
        let fields = rng.fields();
        let label_len = 4 + rng.below(14);
        let chunks = 1 + rng.below(9) as u32;
        let bytes = 100_000 + rng.below(9_899_999) as u64;
        let mut b = StateJsonBuilder::new(profile, seed);
        let t2 = Type2Fields {
            base: fields,
            selection_label: "x".repeat(label_len),
            selection_segment: 40,
            cancelled_chunks: chunks,
            cancelled_bytes: bytes,
        };
        let sealed = b.type2_request(&t2).serialized_len() + TAG_LEN;
        let target = profile.type2_target_len();
        assert!(
            sealed <= target && sealed + 26 > target,
            "case {case} {}: sealed {} vs target {}",
            profile.label(),
            sealed,
            target
        );
    }
}

/// Report bands never collide across the two report types within a
/// profile, and type-1 bands are distinct across desktop platforms
/// (Figure 2's per-condition separability).
#[test]
fn bands_separable() {
    let desktops: Vec<Profile> = Profile::all()
        .into_iter()
        .filter(|p| p.device == DeviceForm::Desktop)
        .collect();
    let mut t1_bands = Vec::new();
    for p in &desktops {
        let t1 = p.type1_target_len();
        let t2 = p.type2_target_len();
        assert!(t2 > t1 + 100, "{}: bands too close", p.label());
        t1_bands.push((t1.saturating_sub(3), t1));
    }
    // No two type-1 bands overlap.
    for i in 0..t1_bands.len() {
        for j in (i + 1)..t1_bands.len() {
            let (a_lo, a_hi) = t1_bands[i];
            let (b_lo, b_hi) = t1_bands[j];
            assert!(
                a_hi < b_lo || b_hi < a_lo,
                "bands {:?} and {:?} overlap",
                t1_bands[i],
                t1_bands[j]
            );
        }
    }
}

/// The report bodies always parse as JSON and carry the ids the
/// server validates, whatever the inputs.
#[test]
fn reports_always_server_valid() {
    for case in 0..300u64 {
        let mut rng = Rng(0x91_2000 + case);
        let profile = rng.profile();
        let seed = rng.next();
        let fields = rng.fields();
        let mut b = StateJsonBuilder::new(profile, seed);
        let req = b.type1_request(&fields);
        let doc = wm_json::parse(&req.body).expect("report body is JSON");
        let cp = doc
            .get("choicePointId")
            .and_then(wm_json::Value::as_i64)
            .expect("cp id");
        assert_eq!(
            cp - wm_netflix::STATE_ID_OFFSET,
            fields.choice_point_id as i64,
            "case {case}"
        );
        let seg = doc
            .get("segmentId")
            .and_then(wm_json::Value::as_i64)
            .expect("segment id");
        assert_eq!(
            seg - wm_netflix::STATE_ID_OFFSET,
            fields.segment_id as i64,
            "case {case}"
        );
    }
}
