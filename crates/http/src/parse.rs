//! Incremental HTTP/1.1 message parsers.
//!
//! Both simulated endpoints read their peer's bytes from a TLS plaintext
//! stream that arrives in arbitrary-sized pieces, so parsing is
//! incremental: feed bytes, pop complete messages. Only
//! `Content-Length` framing is supported (all simulated traffic uses
//! it; see the crate docs).

use crate::{Request, Response};

/// A malformed message head, as a typed error.
///
/// Both parsers consume bytes that (from the server's perspective)
/// originate from an untrusted peer, so every malformation maps to a
/// variant here — the parse path never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header block is not valid UTF-8.
    NonUtf8Head,
    /// `Content-Length` is present but not a decimal `usize`.
    BadContentLength(String),
    /// A header line has no `:` separator.
    MalformedHeaderLine(String),
    /// The request line is not `METHOD PATH HTTP/1.x`.
    MalformedRequestLine(String),
    /// The status line is not `HTTP/1.x CODE [reason]`.
    BadStatusLine(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::NonUtf8Head => write!(f, "non-UTF-8 header block"),
            ParseError::BadContentLength(v) => write!(f, "bad Content-Length: {v:?}"),
            ParseError::MalformedHeaderLine(l) => write!(f, "malformed header line {l:?}"),
            ParseError::MalformedRequestLine(l) => write!(f, "malformed request line {l:?}"),
            ParseError::BadStatusLine(l) => write!(f, "bad status line {l:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Where the parser currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParsePhase {
    /// Accumulating header bytes (until `\r\n\r\n`).
    Headers,
    /// Headers parsed; accumulating `remaining` body bytes.
    Body,
}

/// Generic head-then-body accumulator shared by both parsers.
struct Accumulator {
    buf: Vec<u8>,
    phase: ParsePhase,
    /// Parsed head lines (start line + headers) once phase is Body.
    head: Vec<String>,
    body_remaining: usize,
    body: Vec<u8>,
}

impl Accumulator {
    fn new() -> Self {
        Accumulator {
            buf: Vec::new(),
            phase: ParsePhase::Headers,
            head: Vec::new(),
            body_remaining: 0,
            body: Vec::new(),
        }
    }

    /// Feed bytes; returns `Some((head_lines, body))` per complete
    /// message. Returns `Err` on malformed heads.
    fn feed(
        &mut self,
        mut bytes: &[u8],
        out: &mut Vec<(Vec<String>, Vec<u8>)>,
    ) -> Result<(), ParseError> {
        while !bytes.is_empty() {
            match self.phase {
                ParsePhase::Headers => {
                    self.buf.extend_from_slice(bytes);
                    bytes = &[];
                    if let Some(end) = find_double_crlf(&self.buf) {
                        let head_bytes = self.buf.get(..end).unwrap_or_default().to_vec();
                        let rest = self.buf.get(end + 4..).unwrap_or_default().to_vec();
                        self.buf.clear();
                        let head_text =
                            String::from_utf8(head_bytes).map_err(|_| ParseError::NonUtf8Head)?;
                        self.head = head_text.split("\r\n").map(str::to_owned).collect();
                        self.body_remaining = content_length(&self.head)?;
                        self.body = Vec::with_capacity(self.body_remaining);
                        self.phase = ParsePhase::Body;
                        // Re-feed what followed the head.
                        self.feed(&rest, out)?;
                    }
                }
                ParsePhase::Body => {
                    let take = bytes.len().min(self.body_remaining);
                    let (chunk, rest) = bytes.split_at_checked(take).unwrap_or((bytes, &[]));
                    self.body.extend_from_slice(chunk);
                    self.body_remaining -= chunk.len();
                    bytes = rest;
                    if self.body_remaining == 0 {
                        out.push((
                            std::mem::take(&mut self.head),
                            std::mem::take(&mut self.body),
                        ));
                        self.phase = ParsePhase::Headers;
                    }
                }
            }
        }
        // Zero-length bodies complete immediately even with no trailing bytes.
        if self.phase == ParsePhase::Body && self.body_remaining == 0 {
            out.push((
                std::mem::take(&mut self.head),
                std::mem::take(&mut self.body),
            ));
            self.phase = ParsePhase::Headers;
        }
        Ok(())
    }

    fn phase(&self) -> ParsePhase {
        self.phase
    }
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The head lines after the start line (empty when the head is empty).
fn header_lines(head: &[String]) -> &[String] {
    head.get(1..).unwrap_or_default()
}

/// The start line of a head block (`""` when the head is empty).
fn start_line(head: &[String]) -> &str {
    head.first().map(String::as_str).unwrap_or_default()
}

fn content_length(head: &[String]) -> Result<usize, ParseError> {
    for line in header_lines(head) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| ParseError::BadContentLength(value.trim().to_owned()));
            }
        }
    }
    Ok(0)
}

fn split_headers(head: &[String]) -> Result<Vec<(String, String)>, ParseError> {
    header_lines(head)
        .iter()
        .map(|line| {
            line.split_once(':')
                .map(|(n, v)| (n.trim().to_owned(), v.trim().to_owned()))
                .ok_or_else(|| ParseError::MalformedHeaderLine(line.clone()))
        })
        .collect()
}

/// Incremental request parser (server side).
pub struct RequestParser {
    acc: Accumulator,
}

impl RequestParser {
    pub fn new() -> Self {
        RequestParser {
            acc: Accumulator::new(),
        }
    }

    /// Current phase (tests and flow-control use this).
    pub fn phase(&self) -> ParsePhase {
        self.acc.phase()
    }

    /// Feed stream bytes; returns the requests completed by this feed.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Request>, ParseError> {
        let mut raw = Vec::new();
        self.acc.feed(bytes, &mut raw)?;
        raw.into_iter()
            .map(|(head, body)| {
                let mut parts = start_line(&head).split(' ');
                let method = parts.next().unwrap_or("").to_owned();
                let path = parts.next().unwrap_or("").to_owned();
                let version = parts.next().unwrap_or("");
                if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
                    return Err(ParseError::MalformedRequestLine(
                        start_line(&head).to_owned(),
                    ));
                }
                Ok(Request {
                    method,
                    path,
                    headers: strip_content_length(split_headers(&head)?),
                    body,
                })
            })
            .collect()
    }
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental response parser (client side).
pub struct ResponseParser {
    acc: Accumulator,
}

impl ResponseParser {
    pub fn new() -> Self {
        ResponseParser {
            acc: Accumulator::new(),
        }
    }

    pub fn phase(&self) -> ParsePhase {
        self.acc.phase()
    }

    /// Feed stream bytes; returns the responses completed by this feed.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Response>, ParseError> {
        let mut raw = Vec::new();
        self.acc.feed(bytes, &mut raw)?;
        raw.into_iter()
            .map(|(head, body)| {
                let mut parts = start_line(&head).splitn(3, ' ');
                let version = parts.next().unwrap_or("");
                let status: u16 = parts
                    .next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|_| ParseError::BadStatusLine(start_line(&head).to_owned()))?;
                let reason = parts.next().unwrap_or("").to_owned();
                if !version.starts_with("HTTP/1.") {
                    return Err(ParseError::BadStatusLine(start_line(&head).to_owned()));
                }
                Ok(Response {
                    status,
                    reason,
                    headers: strip_content_length(split_headers(&head)?),
                    body,
                })
            })
            .collect()
    }
}

impl Default for ResponseParser {
    fn default() -> Self {
        Self::new()
    }
}

/// The builders re-add Content-Length on serialization; strip it on
/// parse so `parse(serialize(m)) == m`.
fn strip_content_length(headers: Vec<(String, String)>) -> Vec<(String, String)> {
    headers
        .into_iter()
        .filter(|(n, _)| !n.eq_ignore_ascii_case("content-length"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::new("POST", "/api/state")
            .header("Host", "www.netflix.com")
            .header("X-Esn", "NFCDIE-02-XYZ")
            .body(b"{\"event\":1}".to_vec());
        let mut p = RequestParser::new();
        let got = p.feed(&req.to_bytes()).unwrap();
        assert_eq!(got, vec![req]);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::ok()
            .header("Content-Type", "application/json")
            .body(b"ok".to_vec());
        let mut p = ResponseParser::new();
        let got = p.feed(&resp.to_bytes()).unwrap();
        assert_eq!(got, vec![resp]);
    }

    #[test]
    fn byte_at_a_time() {
        let req = Request::new("GET", "/chunk/42").header("Host", "nflx");
        let bytes = req.to_bytes();
        let mut p = RequestParser::new();
        let mut got = Vec::new();
        for b in &bytes {
            got.extend(p.feed(std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(got, vec![req]);
    }

    #[test]
    fn pipelined_messages() {
        let a = Request::new("GET", "/a");
        let b = Request::new("POST", "/b").body(b"xyz".to_vec());
        let mut wire = a.to_bytes();
        wire.extend(b.to_bytes());
        let mut p = RequestParser::new();
        let got = p.feed(&wire).unwrap();
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn body_split_across_feeds() {
        let req = Request::new("POST", "/s").body(vec![b'q'; 1000]);
        let bytes = req.to_bytes();
        let mut p = RequestParser::new();
        let first = p.feed(&bytes[..bytes.len() - 500]).unwrap();
        assert!(first.is_empty());
        assert_eq!(p.phase(), ParsePhase::Body);
        let second = p.feed(&bytes[bytes.len() - 500..]).unwrap();
        assert_eq!(second, vec![req]);
    }

    #[test]
    fn malformed_inputs_error() {
        let mut p = RequestParser::new();
        assert!(p.feed(b"NOT A REQUEST\r\n\r\n").is_err());
        let mut p2 = RequestParser::new();
        assert!(p2
            .feed(b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
            .is_err());
        let mut p3 = ResponseParser::new();
        assert!(p3.feed(b"HTTP/1.1 abc Bad\r\n\r\n").is_err());
    }

    #[test]
    fn zero_length_body_completes_without_more_bytes() {
        let mut p = ResponseParser::new();
        let got = p
            .feed(b"HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].status, 204);
        assert!(got[0].body.is_empty());
    }
}
