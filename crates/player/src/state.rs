//! State-report JSON construction and length calibration.
//!
//! The builder produces the two report shapes the paper names. At
//! session start it *calibrates* two platform blobs:
//!
//! * `clientInfo` — sized so that a type-1 report at reference field
//!   widths seals to exactly the profile's `type1_target_len`;
//! * `interactionDiff.token` — sized likewise for type-2.
//!
//! Real reports then deviate from the target only by the width jitter
//! of their numeric/label fields (a few bytes), reproducing the tight
//! per-condition clusters of the paper's Figure 2. This calibration is
//! the documented substitute for the real client's platform-specific
//! payload (DESIGN.md, substitution table).
//!
//! Field-width discipline: ids that appear in reports are offset by +10
//! so they always print as two digits; timestamps are 13-digit epoch
//! milliseconds; playback positions are fixed-point seconds. The only
//! intentionally variable-width fields are the playback position
//! (7–8 chars), the report sequence number (1–2), and — for type-2 —
//! the selection label and cancelled-byte count.

use crate::profile::Profile;
use wm_cipher::kdf::derive_seed;
use wm_http::Request;
use wm_json::{Number, Value};

/// Offset applied to segment/choice-point ids in reports so they always
/// serialize as two digits (shared with the server's decoder).
const ID_OFFSET: i64 = wm_netflix::STATE_ID_OFFSET;

/// Simulated capture epoch (2018-12-28, Bandersnatch's release day) in
/// ms; session time is added to it, keeping timestamps at 13 digits.
pub const EPOCH_MS: i64 = 1_545_955_200_000;

/// Everything needed to build byte-calibrated state reports.
pub struct StateJsonBuilder {
    profile: Profile,
    esn: String,
    cookie: String,
    xid: String,
    session_id: String,
    request_id: String,
    client_info: String,
    diff_token: String,
    /// Monotonic report sequence number.
    seq: i64,
}

/// All inputs describing one type-1 report.
#[derive(Debug, Clone, Copy)]
pub struct Type1Fields {
    /// Epoch-relative session time in ms.
    pub session_ms: i64,
    /// Playback position in ms.
    pub position_ms: i64,
    pub segment_id: u16,
    pub choice_point_id: u16,
}

/// Additional inputs for a type-2 report.
#[derive(Debug, Clone)]
pub struct Type2Fields {
    pub base: Type1Fields,
    /// On-screen label of the selected (non-default) option.
    pub selection_label: String,
    /// Target segment of the selection.
    pub selection_segment: u16,
    /// Prefetched chunks discarded.
    pub cancelled_chunks: u32,
    /// Unscaled content bytes discarded (what the real client would
    /// account, independent of the simulation's media_scale).
    pub cancelled_bytes: u64,
}

impl StateJsonBuilder {
    /// Build and calibrate for a session.
    pub fn new(profile: Profile, session_seed: u64) -> Self {
        let mut b = StateJsonBuilder {
            profile,
            esn: profile.esn(session_seed),
            cookie: profile.cookie(session_seed),
            xid: digits_n(derive_seed(session_seed, "xid"), 16),
            session_id: hex_lower(derive_seed(session_seed, "session-id"), 32),
            request_id: hex_lower(derive_seed(session_seed, "request-id"), 32),
            client_info: String::new(),
            diff_token: String::new(),
            seq: 0,
        };
        b.calibrate();
        b
    }

    /// ESN used in headers and bodies.
    pub fn esn(&self) -> &str {
        &self.esn
    }

    /// Cookie header value.
    pub fn cookie(&self) -> &str {
        &self.cookie
    }

    fn calibrate(&mut self) {
        // Solve the clientInfo pad so the reference type-1 request
        // serializes to target-16 plaintext bytes (AEAD adds 16).
        let t1_plain = self.profile.type1_target_len() - wm_cipher::TAG_LEN;
        self.client_info = "c".repeat(64);
        for _ in 0..6 {
            let now = self.reference_type1_request().serialized_len();
            let want = t1_plain as i64 - now as i64 + self.client_info.len() as i64;
            assert!(want > 0, "type-1 target too small for base payload");
            self.client_info = pad_blob(want as usize);
            if self.reference_type1_request().serialized_len() == t1_plain {
                break;
            }
        }
        assert_eq!(
            self.reference_type1_request().serialized_len(),
            t1_plain,
            "type-1 calibration failed to converge"
        );

        let t2_plain = self.profile.type2_target_len() - wm_cipher::TAG_LEN;
        self.diff_token = "t".repeat(64);
        for _ in 0..6 {
            let now = self.reference_type2_request().serialized_len();
            let want = t2_plain as i64 - now as i64 + self.diff_token.len() as i64;
            assert!(want > 0, "type-2 target too small for base payload");
            self.diff_token = pad_blob(want as usize);
            if self.reference_type2_request().serialized_len() == t2_plain {
                break;
            }
        }
        assert_eq!(
            self.reference_type2_request().serialized_len(),
            t2_plain,
            "type-2 calibration failed to converge"
        );
    }

    /// Reference field widths used during calibration: position 8 chars,
    /// two-digit sequence number and ids.
    fn reference_type1_fields() -> Type1Fields {
        Type1Fields {
            session_ms: 8_888_888,  // 13-digit timestamp either way
            position_ms: 8_888_888, // "8888.888"
            segment_id: 78,         // +10 → "88"
            choice_point_id: 78,
        }
    }

    fn reference_type1_request(&self) -> Request {
        // Sequence number at reference width (2 digits).
        self.state_request_with_seq(&self.type1_json_with_seq(&Self::reference_type1_fields(), 88))
    }

    fn reference_type2_request(&self) -> Request {
        let t2 = Type2Fields {
            base: Self::reference_type1_fields(),
            selection_label: "#".repeat(17),
            selection_segment: 78,
            cancelled_chunks: 8,
            cancelled_bytes: 8_888_888,
        };
        self.state_request_with_seq(&self.type2_json_with_seq(&t2, 88))
    }

    /// Build the type-1 report body and its HTTP request; bumps the
    /// report sequence number.
    pub fn type1_request(&mut self, f: &Type1Fields) -> Request {
        self.seq += 1;
        let body = self.type1_json_with_seq(f, self.seq);
        self.state_request_with_seq(&body)
    }

    /// Build the type-2 report; bumps the sequence number.
    pub fn type2_request(&mut self, f: &Type2Fields) -> Request {
        self.seq += 1;
        let body = self.type2_json_with_seq(f, self.seq);
        self.state_request_with_seq(&body)
    }

    fn type1_json_with_seq(&self, f: &Type1Fields, seq: i64) -> Value {
        let cp = f.choice_point_id as i64 + ID_OFFSET;
        Value::object(vec![
            ("version".into(), Value::from(2i64)),
            ("esn".into(), Value::from(self.esn.clone())),
            ("xid".into(), Value::from(self.xid.clone())),
            ("event".into(), Value::from("interactiveStateSnapshot")),
            ("seq".into(), Value::from(seq)),
            ("timestamp".into(), Value::from(EPOCH_MS + f.session_ms)),
            ("position".into(), Value::Num(Number::Fixed3(f.position_ms))),
            ("videoId".into(), Value::from(80_988_062i64)),
            ("momentId".into(), Value::from(43_000 + cp * 97)),
            (
                "segmentId".into(),
                Value::from(f.segment_id as i64 + ID_OFFSET),
            ),
            ("choicePointId".into(), Value::from(cp)),
            ("sessionId".into(), Value::from(self.session_id.clone())),
            ("requestId".into(), Value::from(self.request_id.clone())),
            (
                "stateHistory".into(),
                Value::object(vec![
                    ("p_sg".into(), Value::from(true)),
                    ("p_cq".into(), Value::from(true)),
                    ("p_ps".into(), Value::from(false)),
                    ("p_tt".into(), Value::from(true)),
                    ("p_3l".into(), Value::from(false)),
                    ("p_8a".into(), Value::from(true)),
                    ("p_vs".into(), Value::from(false)),
                    ("p_nw".into(), Value::from(true)),
                ]),
            ),
            (
                "choices".into(),
                Value::array(vec![
                    Value::object(vec![
                        ("id".into(), Value::from(format!("cp{cp}_0"))),
                        ("exitZone".into(), Value::from("zone_a")),
                    ]),
                    Value::object(vec![
                        ("id".into(), Value::from(format!("cp{cp}_1"))),
                        ("exitZone".into(), Value::from("zone_b")),
                    ]),
                ]),
            ),
            (
                "clientCapabilities".into(),
                Value::object(vec![
                    ("protocol".into(), Value::from("https")),
                    ("container".into(), Value::from("cmaf")),
                    ("codec".into(), Value::from("vp9")),
                ]),
            ),
            ("clientInfo".into(), Value::from(self.client_info.clone())),
        ])
    }

    fn type2_json_with_seq(&self, f: &Type2Fields, seq: i64) -> Value {
        let mut doc = self.type1_json_with_seq(&f.base, seq);
        let Value::Object(members) = &mut doc else {
            unreachable!("type1 json is an object")
        };
        members.push((
            "interactionDiff".into(),
            Value::object(vec![
                ("token".into(), Value::from(self.diff_token.clone())),
                (
                    "selection".into(),
                    Value::object(vec![
                        ("label".into(), Value::from(f.selection_label.clone())),
                        ("index".into(), Value::from(1i64)),
                        (
                            "segmentId".into(),
                            Value::from(f.selection_segment as i64 + ID_OFFSET),
                        ),
                    ]),
                ),
                (
                    "cancelledPrefetch".into(),
                    Value::object(vec![
                        (
                            "segmentId".into(),
                            Value::from(f.selection_segment as i64 + ID_OFFSET),
                        ),
                        ("chunks".into(), Value::from(f.cancelled_chunks as i64)),
                        ("bytes".into(), Value::from(f.cancelled_bytes as i64)),
                    ]),
                ),
            ]),
        ));
        doc
    }

    /// Wrap a state body in its POST request (headers identical for
    /// both report types — only the body length differs).
    fn state_request_with_seq(&self, body: &Value) -> Request {
        Request::new("POST", "/interact/state")
            .header("Host", "www.netflix.com")
            .header("User-Agent", self.profile.user_agent())
            .header("Accept", "application/json, text/plain, */*")
            .header("Content-Type", "application/json")
            .header("Cookie", &self.cookie)
            .header("X-Netflix-Esn", &self.esn)
            .body(wm_json::to_bytes(body))
    }
}

/// Deterministic filler blob of exactly `n` bytes (base64-ish alphabet,
/// no JSON-escaped characters, so escaped length == length).
fn pad_blob(n: usize) -> String {
    const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    (0..n)
        .map(|i| ALPHABET[(i * 7 + 13) % ALPHABET.len()] as char)
        .collect()
}

/// Exactly `n` decimal digits derived from a seed.
fn digits_n(seed: u64, n: usize) -> String {
    let mut state = seed;
    let mut out = String::with_capacity(n);
    for _ in 0..n {
        state = wm_cipher::kdf::mix(state.wrapping_add(0x9e37_79b9));
        out.push((b'0' + (state % 10) as u8) as char);
    }
    out
}

/// Exactly `n` lowercase hex chars derived from a seed.
fn hex_lower(seed: u64, n: usize) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut state = seed;
    let mut out = String::with_capacity(n);
    for i in 0..n {
        if i % 16 == 0 {
            state = wm_cipher::kdf::mix(state.wrapping_add(0x5bd1_e995));
        }
        out.push(HEX[((state >> ((i % 16) * 4)) & 0xf) as usize] as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wm_cipher::TAG_LEN;

    fn fields(pos_ms: i64, seg: u16, cp: u16) -> Type1Fields {
        Type1Fields {
            session_ms: 1_000_000,
            position_ms: pos_ms,
            segment_id: seg,
            choice_point_id: cp,
        }
    }

    #[test]
    fn type1_lands_in_paper_band_ubuntu() {
        let mut b = StateJsonBuilder::new(Profile::ubuntu_firefox_desktop(), 42);
        // Sweep realistic positions/ids; sealed length = plaintext + 16.
        for (pos, seg, cp) in [
            (110_000i64, 0u16, 0u16),
            (914_250, 12, 4),
            (2_755_000, 40, 15),
            (1_500_125, 27, 10),
        ] {
            let req = b.type1_request(&fields(pos, seg, cp));
            let sealed = req.serialized_len() + TAG_LEN;
            assert!(
                (2211..=2213).contains(&sealed),
                "type-1 sealed {sealed} outside the paper band for pos {pos}"
            );
        }
    }

    #[test]
    fn type1_lands_in_paper_band_windows() {
        let mut b = StateJsonBuilder::new(Profile::windows_firefox_desktop(), 7);
        for (pos, seg, cp) in [(110_000i64, 0u16, 0u16), (2_755_000, 40, 15)] {
            let req = b.type1_request(&fields(pos, seg, cp));
            let sealed = req.serialized_len() + TAG_LEN;
            assert!(
                (2341..=2343).contains(&sealed),
                "type-1 sealed {sealed} outside the Windows band"
            );
        }
    }

    #[test]
    fn type2_lands_in_paper_band_ubuntu() {
        let mut b = StateJsonBuilder::new(Profile::ubuntu_firefox_desktop(), 42);
        for label in ["Refuse", "Phone the studio", "Take it", "Chop it up"] {
            let t2 = Type2Fields {
                base: fields(914_250, 12, 4),
                selection_label: label.to_string(),
                selection_segment: 14,
                cancelled_chunks: 3,
                cancelled_bytes: 1_312_500,
            };
            let req = b.type2_request(&t2);
            let sealed = req.serialized_len() + TAG_LEN;
            assert!(
                (2992..=3017).contains(&sealed),
                "type-2 sealed {sealed} outside the paper band for label {label:?}"
            );
        }
    }

    #[test]
    fn type2_lands_in_paper_band_windows() {
        let mut b = StateJsonBuilder::new(Profile::windows_firefox_desktop(), 3);
        let t2 = Type2Fields {
            base: fields(650_000, 9, 2),
            selection_label: "Refuse".to_string(),
            selection_segment: 9,
            cancelled_chunks: 2,
            cancelled_bytes: 875_000,
        };
        let sealed = b.type2_request(&t2).serialized_len() + TAG_LEN;
        assert!(
            (3118..=3147).contains(&sealed),
            "type-2 sealed {sealed} outside the Windows band"
        );
    }

    #[test]
    fn bands_do_not_overlap_within_profile() {
        for profile in Profile::all() {
            let t1 = profile.type1_target_len();
            let t2 = profile.type2_target_len();
            assert!(t2 > t1 + 100, "type-2 must be clearly separated");
        }
    }

    #[test]
    fn bodies_parse_and_classify_server_side() {
        let mut b = StateJsonBuilder::new(Profile::ubuntu_firefox_desktop(), 9);
        let req = b.type1_request(&fields(120_000, 3, 1));
        let doc = wm_json::parse(&req.body).unwrap();
        assert_eq!(
            doc.get("event").and_then(Value::as_str),
            Some("interactiveStateSnapshot")
        );
        assert!(doc.get("interactionDiff").is_none());
        let t2 = Type2Fields {
            base: fields(120_000, 3, 1),
            selection_label: "Now 2".into(),
            selection_segment: 5,
            cancelled_chunks: 4,
            cancelled_bytes: 2_000_000,
        };
        let req2 = b.type2_request(&t2);
        let doc2 = wm_json::parse(&req2.body).unwrap();
        let diff = doc2.get("interactionDiff").expect("type-2 marker");
        assert_eq!(
            diff.get("selection")
                .and_then(|s| s.get("label"))
                .and_then(Value::as_str),
            Some("Now 2")
        );
    }

    #[test]
    fn seq_increments_across_reports() {
        let mut b = StateJsonBuilder::new(Profile::ubuntu_firefox_desktop(), 1);
        let r1 = b.type1_request(&fields(110_000, 0, 0));
        let r2 = b.type1_request(&fields(200_000, 3, 1));
        let d1 = wm_json::parse(&r1.body).unwrap();
        let d2 = wm_json::parse(&r2.body).unwrap();
        assert_eq!(d1.get("seq").and_then(Value::as_i64), Some(1));
        assert_eq!(d2.get("seq").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn calibration_differs_between_sessions_but_targets_hold() {
        for seed in [1u64, 2, 3] {
            let mut b = StateJsonBuilder::new(Profile::ubuntu_firefox_desktop(), seed);
            let sealed = b.type1_request(&fields(888_888, 12, 5)).serialized_len() + TAG_LEN;
            assert!((2211..=2213).contains(&sealed), "seed {seed}: {sealed}");
        }
    }

    #[test]
    fn pad_blob_has_exact_length_and_no_escapes() {
        for n in [1usize, 10, 100, 1000] {
            let p = pad_blob(n);
            assert_eq!(p.len(), n);
            assert_eq!(wm_json::escape::escaped_len(&p), n);
        }
    }
}
