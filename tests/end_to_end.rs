//! Cross-crate integration: full sessions through the entire stack,
//! attacked from the raw pcap, scored against ground truth.

use std::sync::Arc;
use white_mirror::capture::{RecordClass, Trace};
use white_mirror::core::client_app_records;
use white_mirror::net::time::Duration;
use white_mirror::prelude::*;

const TIME_SCALE: u32 = 40;

fn fast_cfg(graph: &Arc<StoryGraph>, seed: u64, script: ViewerScript) -> SessionConfig {
    let mut cfg = SessionConfig::fast(graph.clone(), seed, script);
    cfg.player.time_scale = TIME_SCALE;
    cfg
}

fn train_attack(graph: &Arc<StoryGraph>, seeds: &[u64]) -> WhiteMirror {
    let mut labels = Vec::new();
    for &seed in seeds {
        let cfg = fast_cfg(graph, seed, ViewerScript::sample(seed, 14, 0.5));
        labels.extend(run_session(&cfg).expect("training session").labels);
    }
    WhiteMirror::train(&labels, WhiteMirrorConfig::scaled(TIME_SCALE)).expect("reports in training")
}

#[test]
fn attack_decodes_full_bandersnatch_sessions() {
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let attack = train_attack(&graph, &[9_001, 9_002, 9_003]);
    let mut total = white_mirror::core::ChoiceAccuracy::default();
    for seed in 9_100..9_108u64 {
        let cfg = fast_cfg(&graph, seed, ViewerScript::sample(seed, 14, 0.5));
        let out = run_session(&cfg).expect("victim session");
        let (_, acc) = attack.evaluate(&out.trace, &graph, &out.decisions);
        total.merge(&acc);
    }
    assert!(
        total.accuracy() >= 0.95,
        "aggregate accuracy {:.3} ({} / {})",
        total.accuracy(),
        total.correct,
        total.total
    );
}

#[test]
fn attack_works_from_a_pcap_file_on_disk() {
    // The full eavesdropper path: session → pcap file → reload → attack.
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let attack = train_attack(&graph, &[9_010]);
    let cfg = fast_cfg(&graph, 9_200, ViewerScript::sample(9_200, 14, 0.4));
    let out = run_session(&cfg).unwrap();

    let dir = std::env::temp_dir().join("wm_e2e_pcap");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("victim.pcap");
    out.trace.write_pcap_file(&path).unwrap();

    let reloaded = Trace::read_pcap_file(&path).unwrap();
    let (decoded, acc) = attack.evaluate(&reloaded, &graph, &out.decisions);
    assert_eq!(decoded.choice_string(), out.choice_string());
    assert_eq!(acc.accuracy(), 1.0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn per_record_confusion_matches_paper_shape() {
    // Figure 2's claim: the two JSON types separate from others by
    // record length alone. Verify precision/recall on held-out traffic.
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let attack = train_attack(&graph, &[9_020, 9_021]);
    let cfg = fast_cfg(&graph, 9_300, ViewerScript::sample(9_300, 14, 0.5));
    let out = run_session(&cfg).unwrap();
    let m = attack.record_confusion(&out.labels);
    assert!(
        m.accuracy() > 0.97,
        "record accuracy {:.3}\n{m}",
        m.accuracy()
    );
    assert_eq!(m.recall(RecordClass::Type1), 1.0, "\n{m}");
    assert_eq!(m.recall(RecordClass::Type2), 1.0, "\n{m}");
}

#[test]
fn both_figure2_conditions_have_disjoint_bands() {
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    for (profile, t1_band, t2_band) in [
        (
            Profile::ubuntu_firefox_desktop(),
            (2211u16, 2213u16),
            (2992u16, 3017u16),
        ),
        (
            Profile::windows_firefox_desktop(),
            (2341, 2343),
            (3118, 3147),
        ),
    ] {
        let mut cfg = fast_cfg(&graph, 9_400, ViewerScript::sample(9_400, 14, 0.3));
        cfg.profile = profile;
        let out = run_session(&cfg).unwrap();
        for l in &out.labels {
            match l.class {
                RecordClass::Type1 => assert!(
                    (t1_band.0..=t1_band.1).contains(&l.length),
                    "{}: type-1 {} outside {:?}",
                    profile.label(),
                    l.length,
                    t1_band
                ),
                RecordClass::Type2 => assert!(
                    (t2_band.0..=t2_band.1).contains(&l.length),
                    "{}: type-2 {} outside {:?}",
                    profile.label(),
                    l.length,
                    t2_band
                ),
                RecordClass::Other => {}
            }
        }
    }
}

#[test]
fn cross_platform_training_does_not_transfer() {
    // The bands are per-condition (the paper trains per condition):
    // a classifier trained on Ubuntu/Firefox misses Windows reports.
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    // Two training sessions: seed 9030 alone samples an all-default
    // script that hits an early ending, so it contains no type-2
    // report and training (correctly) refuses; 9031 supplies both
    // report types.
    let attack = train_attack(&graph, &[9_030, 9_031]); // Ubuntu/Firefox baseline
    let mut cfg = fast_cfg(&graph, 9_500, ViewerScript::sample(9_500, 14, 0.5));
    cfg.profile = Profile::windows_firefox_desktop();
    let out = run_session(&cfg).unwrap();
    let m = attack.record_confusion(&out.labels);
    assert_eq!(
        m.recall(RecordClass::Type1),
        0.0,
        "Windows reports must not fall in Ubuntu bands\n{m}"
    );
}

#[test]
fn tap_loss_produces_gaps_but_attack_survives() {
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let attack = train_attack(&graph, &[9_040, 9_041]);
    let mut cfg = fast_cfg(&graph, 9_600, ViewerScript::sample(9_600, 14, 0.5));
    cfg.conditions = LinkConditions::new(ConnectionType::Wireless, TimeOfDay::Night);
    let out = run_session(&cfg).unwrap();
    let features = client_app_records(&out.trace);
    // Busy wireless: the tap drops packets; reassembly reports gaps in
    // at least some runs — and the attack must still do well.
    let (_, acc) = attack.evaluate(&out.trace, &graph, &out.decisions);
    assert!(
        acc.accuracy() >= 0.8,
        "worst-condition accuracy {:.3} (gaps {})",
        acc.accuracy(),
        features.stats.gaps
    );
}

#[test]
fn cbc_sessions_decode_with_wider_bands() {
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    // Train and attack under the CBC suite.
    let mut labels = Vec::new();
    for seed in [9_050u64, 9_051] {
        let mut cfg = fast_cfg(&graph, seed, ViewerScript::sample(seed, 14, 0.5));
        cfg.suite = CipherSuite::Cbc;
        labels.extend(run_session(&cfg).unwrap().labels);
    }
    let attack = WhiteMirror::train(&labels, WhiteMirrorConfig::scaled(TIME_SCALE)).unwrap();
    let mut cfg = fast_cfg(&graph, 9_700, ViewerScript::sample(9_700, 14, 0.5));
    cfg.suite = CipherSuite::Cbc;
    let out = run_session(&cfg).unwrap();
    let (_, acc) = attack.evaluate(&out.trace, &graph, &out.decisions);
    assert!(acc.accuracy() >= 0.9, "CBC accuracy {:.3}", acc.accuracy());
}

#[test]
fn trace_is_wireshark_compatible_pcap() {
    // Structural pcap checks: magic, version, ethernet linktype, and
    // every frame parses as Ethernet/IPv4/TCP with a valid IP checksum.
    let graph = Arc::new(story::bandersnatch::tiny_film());
    let cfg = SessionConfig::fast(
        graph,
        9_800,
        ViewerScript::from_choices(&[Choice::NonDefault; 3], Duration::from_millis(900)),
    );
    let out = run_session(&cfg).unwrap();
    let bytes = out.trace.to_pcap_bytes();
    assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
    assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), 1);
    for p in &out.trace.packets {
        let (_, _, _) =
            white_mirror::net::headers::parse_frame(&p.frame).expect("every captured frame parses");
        assert!(white_mirror::net::headers::verify_ipv4_checksum(
            &p.frame[14..]
        ));
    }
}
