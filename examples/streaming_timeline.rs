//! Figure 1, reproduced live: the streaming process of Bandersnatch.
//!
//! ```sh
//! cargo run --release --example streaming_timeline
//! ```
//!
//! Runs a session where the viewer takes the default at Q1 and the
//! non-default at Q2 (exactly the walkthrough in the paper's Figure 1)
//! and prints the resulting event timeline: segment streaming,
//! questions, type-1/type-2 state reports, prefetch and cancellation.

use std::sync::Arc;
use white_mirror::netflix::StateEventKind;
use white_mirror::player::TruthEvent;
use white_mirror::prelude::*;

fn main() {
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    // Figure 1's walkthrough: S1 default at Q1, S2' non-default at Q2.
    let script = ViewerScript::from_choices(
        &[Choice::Default, Choice::NonDefault],
        white_mirror::net::time::Duration::from_secs(4),
    );
    let mut cfg = SessionConfig::fast(graph.clone(), 42, script);
    cfg.player.time_scale = 20;
    let out = run_session(&cfg).expect("session");

    println!("=== Figure 1: the streaming process (reproduced) ===\n");
    for event in &out.truth {
        match event {
            TruthEvent::SegmentStarted { time, segment } => {
                let seg = graph.segment(*segment);
                println!(
                    "{:>10}  segment {:>2} starts   {:<40} ({} s of content)",
                    time.to_string(),
                    segment.0,
                    seg.name,
                    seg.duration_secs
                );
            }
            TruthEvent::QuestionShown { time, cp } => {
                let q = graph.choice_point(*cp);
                println!(
                    "{:>10}  Q{} on screen        \"{}\"  → type-1 JSON posted, default branch prefetch starts",
                    time.to_string(),
                    cp.0 + 1,
                    q.question
                );
            }
            TruthEvent::Decision {
                time,
                cp,
                choice,
                timed_out,
                type2_sent,
            } => {
                let q = graph.choice_point(*cp);
                let how = if *timed_out {
                    "timer lapsed"
                } else {
                    "viewer clicked"
                };
                match choice {
                    Choice::Default => println!(
                        "{:>10}  Q{} decided ({how})  \"{}\" → streaming continues uninterrupted",
                        time.to_string(),
                        cp.0 + 1,
                        q.option(*choice).label
                    ),
                    Choice::NonDefault => println!(
                        "{:>10}  Q{} decided ({how})  \"{}\" → prefetch cancelled, type-2 JSON posted ({})",
                        time.to_string(),
                        cp.0 + 1,
                        q.option(*choice).label,
                        if *type2_sent { "sent" } else { "suppressed" }
                    ),
                }
            }
            TruthEvent::SessionEnded { time } => {
                println!("{:>10}  credits — session ends", time.to_string());
            }
        }
    }

    println!("\n=== what the server logged ===");
    for e in &out.server_log {
        let kind = match e.kind {
            StateEventKind::Type1 => "type-1",
            StateEventKind::Type2 => "type-2",
        };
        println!(
            "  {kind} state report: choice point {:>2}, segment {:>2}, body {} bytes",
            e.choice_point.0, e.segment.0, e.body_len
        );
    }

    println!("\n=== what the eavesdropper saw (client records near the reports) ===");
    let features = white_mirror::core::client_app_records(&out.trace);
    for r in &features.records {
        if r.record.length > 2000 && r.record.length < 3200 {
            println!(
                "  {:>10}  client record, {} bytes",
                r.time.to_string(),
                r.record.length
            );
        }
    }
    println!(
        "\ncapture: {} packets, {} client app records, {} gaps",
        out.stats.packets_captured,
        features.records.len(),
        features.stats.gaps
    );
}
