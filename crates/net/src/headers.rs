//! Ethernet, IPv4 and TCP header serialization.
//!
//! The capture crate writes libpcap files whose frames are real
//! Ethernet II / IPv4 / TCP bytes (valid IP checksums, correct lengths),
//! so traces open cleanly in standard tooling. The parsers here are used
//! by the eavesdropper to walk frames back into flows.

/// Ethernet II header length.
pub const ETH_HEADER_LEN: usize = 14;
/// IPv4 header length (no options).
pub const IPV4_HEADER_LEN: usize = 20;
/// TCP header length with the timestamp option block (20 + 12).
pub const TCP_HEADER_LEN: usize = 32;
/// Total framing overhead per packet.
pub const FRAME_OVERHEAD: usize = ETH_HEADER_LEN + IPV4_HEADER_LEN + TCP_HEADER_LEN;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub fin: bool,
    pub psh: bool,
    pub rst: bool,
}

impl TcpFlags {
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        psh: false,
        rst: false,
    };
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        psh: false,
        rst: false,
    };
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        psh: false,
        rst: false,
    };
    pub const PSH_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        psh: true,
        rst: false,
    };
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        psh: false,
        rst: false,
    };
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        psh: false,
        rst: true,
    };

    fn to_byte(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP/IP 4-tuple identifying one flow direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId {
    pub src_ip: [u8; 4],
    pub src_port: u16,
    pub dst_ip: [u8; 4],
    pub dst_port: u16,
}

impl FlowId {
    /// The reverse direction of this flow.
    pub fn reversed(self) -> FlowId {
        FlowId {
            src_ip: self.dst_ip,
            src_port: self.dst_port,
            dst_ip: self.src_ip,
            dst_port: self.src_port,
        }
    }

    /// Canonical (direction-independent) form: the lexicographically
    /// smaller of the two directions, for keying bidirectional state.
    pub fn canonical(self) -> FlowId {
        self.min(self.reversed())
    }
}

/// Minimal IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    pub src: [u8; 4],
    pub dst: [u8; 4],
    /// Total length: IP header + TCP header + payload.
    pub total_len: u16,
    pub identification: u16,
    pub ttl: u8,
}

impl Ipv4Header {
    /// Serialize with a valid header checksum.
    pub fn to_bytes(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut b = [0u8; IPV4_HEADER_LEN];
        b[0] = 0x45; // version 4, IHL 5
        b[1] = 0x00; // DSCP/ECN
        b[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        b[4..6].copy_from_slice(&self.identification.to_be_bytes());
        b[6] = 0x40; // don't fragment
        b[7] = 0x00;
        b[8] = self.ttl;
        b[9] = IPPROTO_TCP;
        // checksum at [10..12], zero during computation
        b[12..16].copy_from_slice(&self.src);
        b[16..20].copy_from_slice(&self.dst);
        let csum = internet_checksum(&b);
        b[10..12].copy_from_slice(&csum.to_be_bytes());
        b
    }

    /// Parse and verify structure (checksum verified separately by
    /// [`verify_ipv4_checksum`] where tests need it).
    pub fn parse(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < IPV4_HEADER_LEN || bytes[0] != 0x45 || bytes[9] != IPPROTO_TCP {
            return None;
        }
        Some(Ipv4Header {
            src: bytes[12..16].try_into().ok()?,
            dst: bytes[16..20].try_into().ok()?,
            total_len: u16::from_be_bytes([bytes[2], bytes[3]]),
            identification: u16::from_be_bytes([bytes[4], bytes[5]]),
            ttl: bytes[8],
        })
    }
}

/// Verify the checksum of a serialized IPv4 header.
pub fn verify_ipv4_checksum(bytes: &[u8]) -> bool {
    bytes.len() >= IPV4_HEADER_LEN && internet_checksum(&bytes[..IPV4_HEADER_LEN]) == 0
}

/// TCP header with a 12-byte timestamp-option block (the dominant shape
/// of real streaming traffic; data offset 8 words).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    /// TSval for the timestamp option (µs-granularity tick in the sim).
    pub ts_val: u32,
    pub ts_ecr: u32,
}

impl TcpHeader {
    /// Serialize (checksum field left zero: valid for analysis tooling,
    /// and offloading makes zero checksums common in real captures).
    pub fn to_bytes(&self) -> [u8; TCP_HEADER_LEN] {
        let mut b = [0u8; TCP_HEADER_LEN];
        b[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        b[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        b[4..8].copy_from_slice(&self.seq.to_be_bytes());
        b[8..12].copy_from_slice(&self.ack.to_be_bytes());
        b[12] = 0x80; // data offset 8 words (32 bytes)
        b[13] = self.flags.to_byte();
        b[14..16].copy_from_slice(&self.window.to_be_bytes());
        // [16..18] checksum = 0, [18..20] urgent = 0
        // Options: NOP NOP Timestamp(10 bytes)
        b[20] = 0x01;
        b[21] = 0x01;
        b[22] = 0x08;
        b[23] = 0x0a;
        b[24..28].copy_from_slice(&self.ts_val.to_be_bytes());
        b[28..32].copy_from_slice(&self.ts_ecr.to_be_bytes());
        b
    }

    /// Parse a header serialized by [`TcpHeader::to_bytes`] (or any
    /// header with data offset ≥ 5; options other than timestamps are
    /// skipped). Returns the header and its length in bytes.
    pub fn parse(bytes: &[u8]) -> Option<(Self, usize)> {
        if bytes.len() < 20 {
            return None;
        }
        let data_offset = ((bytes[12] >> 4) as usize) * 4;
        if data_offset < 20 || bytes.len() < data_offset {
            return None;
        }
        let mut ts_val = 0;
        let mut ts_ecr = 0;
        let mut i = 20;
        while i < data_offset {
            match bytes[i] {
                0x00 => break,  // end of options
                0x01 => i += 1, // NOP
                0x08 if i + 10 <= data_offset => {
                    ts_val = u32::from_be_bytes(bytes[i + 2..i + 6].try_into().ok()?);
                    ts_ecr = u32::from_be_bytes(bytes[i + 6..i + 10].try_into().ok()?);
                    i += 10;
                }
                _ => {
                    // kind, len, payload — skip
                    let len = *bytes.get(i + 1)? as usize;
                    if len < 2 {
                        return None;
                    }
                    i += len;
                }
            }
        }
        Some((
            TcpHeader {
                src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
                dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
                seq: u32::from_be_bytes(bytes[4..8].try_into().ok()?),
                ack: u32::from_be_bytes(bytes[8..12].try_into().ok()?),
                flags: TcpFlags::from_byte(bytes[13]),
                window: u16::from_be_bytes([bytes[14], bytes[15]]),
                ts_val,
                ts_ecr,
            },
            data_offset,
        ))
    }
}

/// Build a complete Ethernet/IPv4/TCP frame around `payload`.
#[allow(clippy::too_many_arguments)]
pub fn build_frame(
    flow: &FlowId,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    ts_val: u32,
    ts_ecr: u32,
    ip_id: u16,
    payload: &[u8],
) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    // Ethernet: locally administered MACs derived from the IPs.
    frame.extend_from_slice(&mac_for(&flow.dst_ip));
    frame.extend_from_slice(&mac_for(&flow.src_ip));
    frame.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
    let ip = Ipv4Header {
        src: flow.src_ip,
        dst: flow.dst_ip,
        total_len: (IPV4_HEADER_LEN + TCP_HEADER_LEN + payload.len()) as u16,
        identification: ip_id,
        ttl: 64,
    };
    frame.extend_from_slice(&ip.to_bytes());
    let tcp = TcpHeader {
        src_port: flow.src_port,
        dst_port: flow.dst_port,
        seq,
        ack,
        flags,
        window: 0xffff,
        ts_val,
        ts_ecr,
    };
    frame.extend_from_slice(&tcp.to_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Parse a frame built by [`build_frame`] back into
/// `(flow, tcp_header, payload)`.
pub fn parse_frame(frame: &[u8]) -> Option<(FlowId, TcpHeader, &[u8])> {
    if frame.len() < ETH_HEADER_LEN + IPV4_HEADER_LEN + 20 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return None;
    }
    let ip = Ipv4Header::parse(&frame[ETH_HEADER_LEN..])?;
    let tcp_start = ETH_HEADER_LEN + IPV4_HEADER_LEN;
    let (tcp, tcp_len) = TcpHeader::parse(&frame[tcp_start..])?;
    let payload_start = tcp_start + tcp_len;
    let ip_payload_end = ETH_HEADER_LEN + ip.total_len as usize;
    if ip_payload_end > frame.len() || payload_start > ip_payload_end {
        return None;
    }
    let flow = FlowId {
        src_ip: ip.src,
        src_port: tcp.src_port,
        dst_ip: ip.dst,
        dst_port: tcp.dst_port,
    };
    Some((flow, tcp, &frame[payload_start..ip_payload_end]))
}

/// Like [`parse_frame`], but tolerant of frames whose tail was clipped
/// by a capture snaplen: as long as the Ethernet/IPv4/TCP headers
/// survived, returns the payload prefix that is present plus the number
/// of payload bytes the clip removed (per the IP total length). A
/// frame with an intact tail parses identically to [`parse_frame`]
/// with `missing == 0`. Returns `None` only when the headers
/// themselves are incomplete or malformed.
pub fn parse_frame_lossy(frame: &[u8]) -> Option<(FlowId, TcpHeader, &[u8], usize)> {
    if frame.len() < ETH_HEADER_LEN + IPV4_HEADER_LEN + 20 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != ETHERTYPE_IPV4 {
        return None;
    }
    let ip = Ipv4Header::parse(&frame[ETH_HEADER_LEN..])?;
    let tcp_start = ETH_HEADER_LEN + IPV4_HEADER_LEN;
    let (tcp, tcp_len) = TcpHeader::parse(&frame[tcp_start..])?;
    let payload_start = tcp_start + tcp_len;
    let ip_payload_end = ETH_HEADER_LEN + ip.total_len as usize;
    if payload_start > ip_payload_end {
        return None;
    }
    let avail_end = ip_payload_end.min(frame.len());
    let payload = frame.get(payload_start..avail_end)?;
    let flow = FlowId {
        src_ip: ip.src,
        src_port: tcp.src_port,
        dst_ip: ip.dst,
        dst_port: tcp.dst_port,
    };
    Some((flow, tcp, payload, ip_payload_end - avail_end))
}

fn mac_for(ip: &[u8; 4]) -> [u8; 6] {
    [0x02, 0x00, ip[0], ip[1], ip[2], ip[3]]
}

/// RFC 1071 internet checksum.
fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowId {
        FlowId {
            src_ip: [192, 168, 1, 10],
            src_port: 51234,
            dst_ip: [198, 45, 48, 7],
            dst_port: 443,
        }
    }

    #[test]
    fn lossy_parse_recovers_clipped_payload() {
        let payload = vec![0xabu8; 400];
        let frame = build_frame(&flow(), 1000, 2000, TcpFlags::PSH_ACK, 5, 6, 1, &payload);
        // Intact frame: lossy parse agrees with the strict parser.
        let (f, tcp, body, missing) = parse_frame_lossy(&frame).unwrap();
        assert_eq!((f, tcp.seq, body, missing), (flow(), 1000, &payload[..], 0));
        // Snaplen-clipped frame: strict parser drops it, lossy parser
        // salvages the payload prefix and reports the missing bytes.
        let clipped = &frame[..FRAME_OVERHEAD + 100];
        assert_eq!(parse_frame(clipped), None);
        let (f2, tcp2, body2, missing2) = parse_frame_lossy(clipped).unwrap();
        assert_eq!(f2, flow());
        assert_eq!(tcp2.seq, 1000);
        assert_eq!(body2, &payload[..100]);
        assert_eq!(missing2, 300);
        // Clip inside the headers: even the lossy parser gives up.
        assert_eq!(parse_frame_lossy(&frame[..40]), None);
    }

    #[test]
    fn ipv4_checksum_valid() {
        let h = Ipv4Header {
            src: [10, 0, 0, 1],
            dst: [10, 0, 0, 2],
            total_len: 1500,
            identification: 42,
            ttl: 64,
        };
        assert!(verify_ipv4_checksum(&h.to_bytes()));
    }

    #[test]
    fn ipv4_roundtrip() {
        let h = Ipv4Header {
            src: [1, 2, 3, 4],
            dst: [5, 6, 7, 8],
            total_len: 999,
            identification: 7,
            ttl: 64,
        };
        assert_eq!(Ipv4Header::parse(&h.to_bytes()), Some(h));
    }

    #[test]
    fn tcp_roundtrip() {
        let h = TcpHeader {
            src_port: 443,
            dst_port: 51234,
            seq: 0xdeadbeef,
            ack: 0x01020304,
            flags: TcpFlags::PSH_ACK,
            window: 29200,
            ts_val: 123456,
            ts_ecr: 654321,
        };
        let (parsed, len) = TcpHeader::parse(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(len, TCP_HEADER_LEN);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"tls record bytes go here";
        let frame = build_frame(&flow(), 1000, 2000, TcpFlags::PSH_ACK, 11, 22, 77, payload);
        assert_eq!(frame.len(), FRAME_OVERHEAD + payload.len());
        let (f, tcp, p) = parse_frame(&frame).unwrap();
        assert_eq!(f, flow());
        assert_eq!(tcp.seq, 1000);
        assert_eq!(tcp.ack, 2000);
        assert_eq!(tcp.flags, TcpFlags::PSH_ACK);
        assert_eq!(p, payload);
        assert!(verify_ipv4_checksum(&frame[ETH_HEADER_LEN..]));
    }

    #[test]
    fn empty_payload_frame() {
        let frame = build_frame(&flow(), 1, 2, TcpFlags::ACK, 0, 0, 0, b"");
        let (_, tcp, p) = parse_frame(&frame).unwrap();
        assert!(p.is_empty());
        assert_eq!(tcp.flags, TcpFlags::ACK);
    }

    #[test]
    fn parse_rejects_truncated() {
        let frame = build_frame(&flow(), 1, 2, TcpFlags::ACK, 0, 0, 0, b"payload");
        assert!(parse_frame(&frame[..20]).is_none());
        // Non-IPv4 ethertype
        let mut bad = frame.clone();
        bad[12] = 0x86;
        bad[13] = 0xdd;
        assert!(parse_frame(&bad).is_none());
    }

    #[test]
    fn flow_reversal_and_canonical() {
        let f = flow();
        let r = f.reversed();
        assert_eq!(r.src_port, 443);
        assert_eq!(r.reversed(), f);
        assert_eq!(f.canonical(), r.canonical());
    }

    #[test]
    fn flags_roundtrip() {
        for flags in [
            TcpFlags::SYN,
            TcpFlags::SYN_ACK,
            TcpFlags::ACK,
            TcpFlags::PSH_ACK,
            TcpFlags::FIN_ACK,
        ] {
            assert_eq!(TcpFlags::from_byte(flags.to_byte()), flags);
        }
    }

    #[test]
    fn checksum_reference() {
        // Classic RFC 1071 worked example.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2);
    }
}
