//! Property tests for snapshot merging and the JSON codec.
//!
//! The build environment is offline, so instead of `proptest` these are
//! hand-rolled property checks driven by a seeded splitmix64 generator:
//! many random cases per property, fully deterministic, with the seed in
//! the assertion message for reproduction.

use wm_telemetry::{Registry, Snapshot};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random snapshot: a few counters and histograms with random names
/// drawn from a small pool (so merges overlap) and random samples.
fn random_snapshot(state: &mut u64) -> Snapshot {
    let reg = Registry::new();
    let names = ["alpha", "beta", "gamma", "delta"];
    let n_counters = (splitmix64(state) % 4) as usize;
    for _ in 0..n_counters {
        let name = names[(splitmix64(state) % names.len() as u64) as usize];
        reg.counter(name).add(splitmix64(state) % 1_000_000);
    }
    let n_hists = (splitmix64(state) % 3) as usize;
    for _ in 0..n_hists {
        let name = names[(splitmix64(state) % names.len() as u64) as usize];
        let h = reg.histogram(name);
        let samples = splitmix64(state) % 64;
        for _ in 0..samples {
            // Spread samples across many buckets.
            let shift = splitmix64(state) % 40;
            h.record(splitmix64(state) >> (24 + shift.min(39)));
        }
    }
    reg.snapshot()
}

#[test]
fn merge_is_commutative() {
    for seed in 0..200u64 {
        let mut s = seed;
        let a = random_snapshot(&mut s);
        let b = random_snapshot(&mut s);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "seed {seed}");
    }
}

#[test]
fn merge_is_associative() {
    for seed in 0..200u64 {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let a = random_snapshot(&mut s);
        let b = random_snapshot(&mut s);
        let c = random_snapshot(&mut s);
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "seed {seed}");
    }
}

#[test]
fn merged_equals_sequential_folds() {
    for seed in 0..50u64 {
        let mut s = seed ^ 0xdead_beef;
        let parts: Vec<Snapshot> = (0..5).map(|_| random_snapshot(&mut s)).collect();
        let folded = Snapshot::merged(parts.iter());
        let mut sequential = Snapshot::default();
        for p in &parts {
            sequential.merge(p);
        }
        assert_eq!(folded, sequential, "seed {seed}");
    }
}

#[test]
fn json_roundtrips_random_snapshots() {
    for seed in 0..200u64 {
        let mut s = seed ^ 0x5eed_5eed;
        let snap = random_snapshot(&mut s);
        let json = snap.to_json_string();
        let back = Snapshot::from_json_str(&json);
        assert_eq!(back.as_ref(), Some(&snap), "seed {seed}: {json}");
    }
}

#[test]
fn merge_preserves_total_mass() {
    for seed in 0..100u64 {
        let mut s = seed ^ 0xaaaa_5555;
        let a = random_snapshot(&mut s);
        let b = random_snapshot(&mut s);
        let mut m = a.clone();
        m.merge(&b);
        for (name, h) in &m.histograms {
            let ca = a.histograms.get(name).map(|h| h.count).unwrap_or(0);
            let cb = b.histograms.get(name).map(|h| h.count).unwrap_or(0);
            assert_eq!(h.count, ca + cb, "seed {seed} hist {name}");
            let bucket_total: u64 = h.buckets.iter().map(|(_, c)| c).sum();
            assert_eq!(bucket_total, h.count, "seed {seed} hist {name} bucket mass");
        }
    }
}
