//! Recursive-descent JSON parser.
//!
//! Used by the simulated Netflix server to validate and interpret the
//! state blobs it receives, and by round-trip tests against the
//! serializer. The grammar is standard JSON with two restrictions that
//! match [`crate::Number`]:
//!
//! * exponents are not accepted;
//! * fractional numbers may carry at most three fraction digits (they are
//!   normalized to [`crate::Number::Fixed3`], so `1.5` parses as `1.500`).

use crate::escape::unescape;
use crate::value::{Number, Value};

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document from `input`.
///
/// Trailing whitespace is allowed; any other trailing bytes are an error.
pub fn parse(input: &[u8]) -> Result<Value, ParseError> {
    let mut p = Parser {
        input,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing bytes after document"));
    }
    Ok(v)
}

/// Maximum nesting depth accepted by the parser.
///
/// The player's state blobs nest four or five levels deep; 128 leaves
/// generous headroom while keeping adversarial inputs from overflowing
/// the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &'static [u8], message: &'static str) -> Result<(), ParseError> {
        if self
            .input
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(lit))
        {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self
                .literal(b"null", "expected 'null'")
                .map(|_| Value::Null),
            Some(b't') => self
                .literal(b"true", "expected 'true'")
                .map(|_| Value::Bool(true)),
            Some(b'f') => self
                .literal(b"false", "expected 'false'")
                .map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => {
                    // Skip the escaped byte so a \" does not end the scan.
                    if self.bump().is_none() {
                        return Err(self.err("unterminated escape"));
                    }
                }
                Some(0x00..=0x1f) => return Err(self.err("raw control character in string")),
                Some(_) => {}
            }
        }
        // The closing quote was just consumed, so `pos - 1 >= start`.
        let body = self.input.get(start..self.pos - 1).unwrap_or_default();
        unescape(body).ok_or(ParseError {
            offset: start,
            message: "malformed string escape",
        })
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let neg = if self.peek() == Some(b'-') {
            self.pos += 1;
            true
        } else {
            false
        };
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_digits = self.input.get(int_start..self.pos).unwrap_or_default();
        if int_digits.is_empty() {
            return Err(self.err("expected digit"));
        }
        if int_digits.len() > 1 && int_digits.first() == Some(&b'0') {
            return Err(self.err("leading zero in number"));
        }
        let mut magnitude: u64 = 0;
        for &d in int_digits {
            magnitude = magnitude
                .checked_mul(10)
                .and_then(|m| m.checked_add((d - b'0') as u64))
                .ok_or_else(|| self.err("integer overflow"))?;
        }
        if self.peek() != Some(b'.') {
            let v = to_signed(neg, magnitude).ok_or_else(|| self.err("integer overflow"))?;
            return Ok(Value::Num(Number::Int(v)));
        }
        self.pos += 1; // consume '.'
        let frac_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let frac_digits = self.input.get(frac_start..self.pos).unwrap_or_default();
        if frac_digits.is_empty() {
            return Err(self.err("expected fraction digit"));
        }
        if frac_digits.len() > 3 {
            return Err(self.err("more than 3 fraction digits unsupported"));
        }
        let mut frac: u64 = 0;
        for &d in frac_digits {
            frac = frac * 10 + (d - b'0') as u64;
        }
        for _ in frac_digits.len()..3 {
            frac *= 10;
        }
        let scaled = magnitude
            .checked_mul(1000)
            .and_then(|m| m.checked_add(frac))
            .ok_or_else(|| self.err("fixed-point overflow"))?;
        let v = to_signed(neg, scaled).ok_or_else(|| self.err("fixed-point overflow"))?;
        Ok(Value::Num(Number::Fixed3(v)))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{', "expected '{'")?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Object(members))
    }
}

fn to_signed(neg: bool, magnitude: u64) -> Option<i64> {
    if neg {
        if magnitude <= i64::MAX as u64 + 1 {
            Some((magnitude as i64).wrapping_neg())
        } else {
            None
        }
    } else {
        i64::try_from(magnitude).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_bytes;

    #[test]
    fn scalars() {
        assert_eq!(parse(b"null").unwrap(), Value::Null);
        assert_eq!(parse(b"true").unwrap(), Value::Bool(true));
        assert_eq!(parse(b"false").unwrap(), Value::Bool(false));
        assert_eq!(parse(b"42").unwrap(), Value::from(42i64));
        assert_eq!(parse(b"-7").unwrap(), Value::from(-7i64));
        assert_eq!(parse(b"1.250").unwrap(), Value::Num(Number::Fixed3(1250)));
        assert_eq!(parse(b"\"hi\"").unwrap(), Value::from("hi"));
    }

    #[test]
    fn short_fractions_normalize() {
        assert_eq!(parse(b"1.5").unwrap(), Value::Num(Number::Fixed3(1500)));
        assert_eq!(parse(b"-0.05").unwrap(), Value::Num(Number::Fixed3(-50)));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(b" { \"a\" : [ 1 , 2 ] , \"b\" : null } \n").unwrap();
        assert_eq!(
            v,
            Value::object(vec![
                (
                    "a".into(),
                    Value::array(vec![Value::from(1i64), Value::from(2i64)])
                ),
                ("b".into(), Value::Null),
            ])
        );
    }

    #[test]
    fn i64_bounds() {
        assert_eq!(
            parse(b"9223372036854775807").unwrap(),
            Value::from(i64::MAX)
        );
        assert_eq!(
            parse(b"-9223372036854775808").unwrap(),
            Value::from(i64::MIN)
        );
        assert!(parse(b"9223372036854775808").is_err());
        assert!(parse(b"-9223372036854775809").is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\":}",
            b"{\"a\" 1}",
            b"01",
            b"1.",
            b"1.2345",
            b"1e5",
            b"\"unterminated",
            b"nul",
            b"[1] trailing",
            b"",
            b"\"\x01\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {:?}", bad);
        }
    }

    #[test]
    fn rejects_excessive_depth() {
        let mut doc = vec![b'['; 200];
        doc.extend(std::iter::repeat_n(b']', 200));
        assert!(parse(&doc).is_err());
    }

    #[test]
    fn roundtrips_serializer_output() {
        let v = Value::object(vec![
            ("esn".into(), Value::from("NFCDIE-03-ABCDEF0123456789")),
            ("pos".into(), Value::Num(Number::Fixed3(914_250))),
            (
                "flags".into(),
                Value::array(vec![Value::Bool(true), Value::Null]),
            ),
            (
                "nested".into(),
                Value::object(vec![("k".into(), Value::from(-1i64))]),
            ),
        ]);
        assert_eq!(parse(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn duplicate_keys_preserved() {
        let v = parse(br#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(
            v.as_object().unwrap(),
            &[
                ("a".to_string(), Value::from(1i64)),
                ("a".to_string(), Value::from(2i64))
            ]
        );
    }
}
