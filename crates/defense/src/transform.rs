//! Wire transforms for outgoing state reports (§VI countermeasures).
//!
//! A [`Defense`] rewrites a state-report HTTP request into the list of
//! TLS-record *writes* the client performs. The session layer applies
//! it to type-1/type-2 posts only — exactly the messages the paper's
//! fix targets — and gives the server the matching decoder where one is
//! needed (compression).

use wm_http::Request;

use crate::lz;

/// A countermeasure applied to state reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Defense {
    /// No countermeasure (the paper's measured reality).
    None,
    /// Split every state report across records of at most `max` bytes
    /// (§VI: "split the JSON file"). Total length still leaks across
    /// the record group; individual record lengths no longer match the
    /// signature bands.
    Split { max: usize },
    /// Compress the JSON body (§VI: "compress it so that it becomes
    /// indistinguishable"). Honest LZ77 compression — the residual
    /// length differences between type-1 and type-2 are real.
    Compress,
    /// Pad the JSON body so the whole request serializes to `size`
    /// bytes (the strong defense the paper implies would be needed;
    /// state posts become length-indistinguishable).
    PadToConstant { size: usize },
    /// Padding plus *dummy second posts*: the client sends exactly one
    /// extra padded post per question whether or not the pick was
    /// non-default, so the count/timing channel (E6) closes too. The
    /// complete fix this reproduction's evaluation arrives at.
    PadWithDummies { size: usize },
}

impl Defense {
    /// Label for experiment output.
    pub fn label(self) -> String {
        match self {
            Defense::None => "none".into(),
            Defense::Split { max } => format!("split(max={max})"),
            Defense::Compress => "compress".into(),
            Defense::PadToConstant { size } => format!("pad(size={size})"),
            Defense::PadWithDummies { size } => format!("pad+dummies(size={size})"),
        }
    }

    /// Whether the client must emit a dummy second post at every
    /// default pick (the session layer wires this into the player).
    pub fn injects_dummies(self) -> bool {
        matches!(self, Defense::PadWithDummies { .. })
    }

    /// The constant post size, for defenses that fix one.
    pub fn constant_size(self) -> Option<usize> {
        match self {
            Defense::PadToConstant { size } | Defense::PadWithDummies { size } => Some(size),
            _ => None,
        }
    }

    /// Rewrite a state-report request into TLS-record writes.
    // wm-lint: response-path
    pub fn encode(self, req: &Request) -> Vec<Vec<u8>> {
        match self {
            Defense::None => vec![req.to_bytes()],
            Defense::Split { max } => {
                let bytes = req.to_bytes();
                let max = max.max(64);
                bytes.chunks(max).map(<[u8]>::to_vec).collect()
            }
            Defense::Compress => {
                let compressed = lz::compress(&req.body);
                let wrapped = Request {
                    method: req.method.clone(),
                    path: req.path.clone(),
                    headers: {
                        let mut h = req.headers.clone();
                        h.push(("Content-Encoding".into(), "wm-lz".into()));
                        h
                    },
                    body: compressed,
                };
                vec![wrapped.to_bytes()]
            }
            Defense::PadWithDummies { size } => Defense::PadToConstant { size }.encode(req),
            Defense::PadToConstant { size } => vec![pad_to_constant(req, size).to_bytes()],
        }
    }

    /// Server-side body decoder matching this defense (only compression
    /// changes the body bytes).
    pub fn decode_body(self, headers_encoding: Option<&str>, body: &[u8]) -> Option<Vec<u8>> {
        match (self, headers_encoding) {
            (Defense::Compress, Some("wm-lz")) => lz::decompress(body),
            _ => Some(body.to_vec()),
        }
    }
}

/// Pad `req` with trailing spaces after the JSON document —
/// insignificant whitespace the server's parser skips — so the whole
/// request serializes to exactly `size` bytes (no-op when the request
/// is already larger). Iterates to a fixed point because adding pad
/// bytes can grow the Content-Length digits.
// wm-lint: quantizer(reason = "maps every state report to the single constant wire length `size`; the lengths read here choose the pad amount, not the emitted size")
fn pad_to_constant(req: &Request, size: usize) -> Request {
    let base = req.clone();
    let base_len = base.serialized_len();
    let mut padded = base;
    if size > base_len {
        let mut pad = size - base_len;
        for _ in 0..4 {
            let mut body = req.body.clone();
            body.extend(std::iter::repeat_n(b' ', pad));
            let candidate = Request {
                method: req.method.clone(),
                path: req.path.clone(),
                headers: req.headers.clone(),
                body,
            };
            let got = candidate.serialized_len();
            if got == size {
                padded = candidate;
                break;
            }
            pad = (pad as i64 + size as i64 - got as i64).max(0) as usize;
            padded = candidate;
        }
    }
    padded
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_req(body_len: usize) -> Request {
        let body: Vec<u8> = {
            let mut b = b"{\"esn\":\"NFCDIE\",\"event\":\"snapshot\",\"blob\":\"".to_vec();
            while b.len() < body_len.saturating_sub(2) {
                b.push(b'A' + ((b.len() * 7) % 26) as u8);
            }
            b.truncate(body_len.saturating_sub(2));
            b.extend_from_slice(b"\"}");
            b
        };
        Request::new("POST", "/interact/state")
            .header("Host", "www.netflix.com")
            .body(body)
    }

    #[test]
    fn none_is_identity() {
        let req = state_req(1000);
        let writes = Defense::None.encode(&req);
        assert_eq!(writes, vec![req.to_bytes()]);
    }

    #[test]
    fn split_bounds_every_write() {
        let req = state_req(2000);
        let writes = Defense::Split { max: 500 }.encode(&req);
        assert!(writes.len() >= 4);
        assert!(writes.iter().all(|w| w.len() <= 500));
        // Reassembled stream is unchanged — the server parses normally.
        let glued: Vec<u8> = writes.concat();
        assert_eq!(glued, req.to_bytes());
    }

    #[test]
    fn compress_shrinks_and_decodes() {
        let req = state_req(2000);
        let writes = Defense::Compress.encode(&req);
        assert_eq!(writes.len(), 1);
        assert!(writes[0].len() < req.to_bytes().len());
        // Parse the rewritten request and invert the body.
        let mut parser = wm_http::RequestParser::new();
        let parsed = parser.feed(&writes[0]).unwrap().remove(0);
        assert_eq!(parsed.header_value("content-encoding"), Some("wm-lz"));
        let decoded = Defense::Compress
            .decode_body(parsed.header_value("content-encoding"), &parsed.body)
            .unwrap();
        assert_eq!(decoded, req.body);
    }

    #[test]
    fn pad_reaches_exact_size() {
        let req = state_req(1500);
        for size in [3000usize, 3333, 4096] {
            let writes = Defense::PadToConstant { size }.encode(&req);
            assert_eq!(writes.len(), 1);
            assert_eq!(writes[0].len(), size, "target {size}");
        }
    }

    #[test]
    fn pad_smaller_than_request_is_noop() {
        let req = state_req(1500);
        let writes = Defense::PadToConstant { size: 100 }.encode(&req);
        assert_eq!(writes[0], req.to_bytes());
    }

    #[test]
    fn padded_body_still_parses_as_json_with_trailing_ws() {
        let req = Request::new("POST", "/interact/state").body(b"{\"a\":1}".to_vec());
        let writes = Defense::PadToConstant { size: 600 }.encode(&req);
        let mut parser = wm_http::RequestParser::new();
        let parsed = parser.feed(&writes[0]).unwrap().remove(0);
        assert!(
            wm_json::parse(&parsed.body).is_ok(),
            "trailing spaces tolerated"
        );
    }

    #[test]
    fn two_different_reports_pad_to_same_length() {
        let t1 = state_req(1630);
        let t2 = state_req(2411);
        let a = Defense::PadToConstant { size: 4000 }.encode(&t1);
        let b = Defense::PadToConstant { size: 4000 }.encode(&t2);
        assert_eq!(a[0].len(), b[0].len(), "padding kills the length signal");
    }

    #[test]
    fn labels() {
        assert_eq!(Defense::None.label(), "none");
        assert_eq!(Defense::Split { max: 700 }.label(), "split(max=700)");
        assert_eq!(Defense::Compress.label(), "compress");
        assert_eq!(
            Defense::PadToConstant { size: 4096 }.label(),
            "pad(size=4096)"
        );
    }
}
