//! Fleet supervisor soak (ignored by default; its own CI job runs the
//! bench smoke — run this one by hand or in a nightly lane):
//!
//! ```sh
//! cargo test --release --test fleet_soak -- --ignored
//! ```
//!
//! Streams ~100k interleaved victim sessions (hours of sim-time)
//! through one supervised [`white_mirror::fleet::Fleet`] under an
//! active shard-fault plan, and pins the long-haul invariants:
//!
//! * **Per-shard memory is bounded by configuration.** At every
//!   sampled point each shard's resident decoder state stays under
//!   [`FleetConfig::per_shard_state_bound`] — the bound derived from
//!   `IngestLimits`, not an ad-hoc constant — and process RSS stays
//!   flat once warm.
//! * **Zero duplicated, bounded lost verdicts.** The drained stream
//!   never exceeds the per-victim expectation, and under the injected
//!   fault intensity delivers at least 85% of it.
//! * **Live telemetry.** Supervisor counters are snapshotted to JSONL
//!   (`target/fleet_soak_telemetry.jsonl`) throughout the run.
//!
//! `WM_FLEET_SOAK_SESSIONS` overrides the session count for local
//! runs.

use std::collections::BinaryHeap;
use std::io::Write;
use std::sync::Arc;

use white_mirror::capture::time::{Duration, SimTime};
use white_mirror::core::{IntervalClassifier, WhiteMirrorConfig};
use white_mirror::fleet::FleetConfig;
use white_mirror::online::OnlineConfig;
use white_mirror::prelude::*;

const TS: u32 = 20;
const RSS_BUDGET_BYTES: u64 = 96 * 1024 * 1024;
/// Concurrently-active victims (lanes); sessions cycle through lanes.
const LANES: usize = 64;

fn sessions_to_run() -> u64 {
    std::env::var("WM_FLEET_SOAK_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn fast_cfg(seed: u64, picks: &[Choice]) -> SessionConfig {
    let graph = Arc::new(story::bandersnatch::tiny_film());
    let script = ViewerScript::from_choices(picks, Duration::from_millis(900));
    SessionConfig::fast(graph, seed, script)
}

fn vm_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

#[test]
#[ignore = "long-haul fleet soak; run in release by hand or a nightly lane"]
fn hundred_thousand_sessions_supervised_flat_memory_bounded_loss() {
    let n = sessions_to_run();
    let graph = Arc::new(story::bandersnatch::tiny_film());
    let train = run_session(&fast_cfg(
        100,
        &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
    ))
    .expect("training session");
    let classifier =
        IntervalClassifier::train(&train.labels, WhiteMirrorConfig::DEFAULT_SLACK).expect("bands");

    // Small capture pool, cycled across every victim of the soak.
    let picks: [[Choice; 3]; 4] = [
        [Choice::Default, Choice::NonDefault, Choice::Default],
        [Choice::NonDefault, Choice::NonDefault, Choice::NonDefault],
        [Choice::Default, Choice::Default, Choice::Default],
        [Choice::NonDefault, Choice::Default, Choice::NonDefault],
    ];
    let pool: Vec<Vec<(SimTime, Vec<u8>)>> = (0..6u64)
        .map(|i| {
            let out = run_session(&fast_cfg(300 + i, &picks[i as usize % picks.len()]))
                .expect("pool session");
            out.trace
                .packets
                .iter()
                .map(|p| (p.time, p.frame.clone()))
                .collect()
        })
        .collect();
    // Per-pool-entry expected verdict count from a standalone decoder:
    // the ceiling the fleet's delivered stream must never exceed.
    let expected: Vec<u64> = pool
        .iter()
        .map(|packets| {
            let mut dec = white_mirror::online::OnlineDecoder::new(
                classifier.clone(),
                graph.clone(),
                OnlineConfig::scaled(TS),
            );
            let mut count = 0u64;
            for (t, frame) in packets {
                count += dec.push_packet(*t, frame).len() as u64;
            }
            count + dec.finish().len() as u64
        })
        .collect();
    let session_span = pool
        .iter()
        .map(|p| p.last().map(|(t, _)| t.micros()).unwrap_or(0))
        .max()
        .unwrap();
    let lane_gap = 1_000_000u64; // 1 s sim between sessions on a lane

    let mut cfg = FleetConfig::scaled(4, TS);
    cfg.checkpoint_every = Duration::from_micros((session_span / 2).max(1));
    cfg.victim_idle = Duration::from_micros(session_span);
    cfg.max_victims_per_shard = 128;
    let shard_bound = cfg.per_shard_state_bound();
    let shards = cfg.shards;

    // Hours of sim-time; faults throughout.
    let horizon_us = (n / LANES as u64 + 1) * (session_span + lane_gap);
    let plan = ShardFaultPlan::generate(0x50AC, 2.0, shards, Duration::from_micros(horizon_us));

    let mut fleet = white_mirror::fleet::Fleet::new(cfg.clone(), classifier.clone(), graph.clone())
        .expect("valid fleet config");
    let telemetry = white_mirror::telemetry::Registry::new();
    fleet.attach_telemetry(&telemetry);
    fleet.inject(&plan);

    let jsonl_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/target/fleet_soak_telemetry.jsonl"
    );
    let mut jsonl = std::fs::File::create(jsonl_path).expect("telemetry JSONL file");

    // Streaming k-way merge: each lane plays pool sessions end to end
    // with a fresh victim id per session; the heap always yields the
    // globally next packet, so the fleet sees one time-ordered
    // interleaved stream without ever materialising it.
    struct Lane {
        victim: u32,
        pool_idx: usize,
        offset: u64,
        pkt: usize,
    }
    let mut lanes: Vec<Lane> = (0..LANES)
        .map(|l| Lane {
            victim: l as u32,
            pool_idx: l % pool.len(),
            offset: (l as u64) * 250_000, // stagger lane starts
            pkt: 0,
        })
        .collect();
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = (0..LANES)
        .map(|l| std::cmp::Reverse((lanes[l].offset + pool[lanes[l].pool_idx][0].0.micros(), l)))
        .collect();

    let mut started: u64 = LANES as u64;
    let mut finished: u64 = 0;
    let mut next_victim: u32 = LANES as u32;
    let mut delivered: u64 = 0;
    let mut expected_total: u64 = 0;
    let mut pushed: u64 = 0;
    let mut baseline_rss: Option<u64> = None;
    let mut max_rss: u64 = 0;
    let mut shard_peak: usize = 0;

    while let Some(std::cmp::Reverse((t, l))) = heap.pop() {
        let (pool_idx, victim) = (lanes[l].pool_idx, lanes[l].victim);
        let frame = pool[pool_idx][lanes[l].pkt].1.clone();
        fleet.push(SimTime(t), victim, &frame);
        pushed += 1;
        lanes[l].pkt += 1;

        if pushed.is_multiple_of(200_000) {
            delivered += fleet.drain_verdicts().len() as u64;
            let per_shard = fleet.state_bytes() / shards.max(1);
            shard_peak = shard_peak.max(per_shard);
            assert!(
                per_shard <= shard_bound,
                "mean shard state {per_shard} exceeded configured bound {shard_bound} \
                 after {pushed} packets ({finished} sessions)"
            );
            let rss = vm_rss_bytes();
            max_rss = max_rss.max(rss);
            if baseline_rss.is_none() && finished >= (n / 20).min(10_000) {
                baseline_rss = Some(rss);
            }
            let s = fleet.stats();
            writeln!(
                jsonl,
                "{{\"t_us\":{t},\"sessions\":{finished},\"packets\":{},\"verdicts\":{},\
                 \"kills\":{},\"restarts\":{},\"checkpoints\":{},\"dedup_dropped\":{},\
                 \"packets_lost\":{},\"shard_state_bytes\":{per_shard},\"rss_bytes\":{rss}}}",
                s.packets,
                s.verdicts,
                s.kills,
                s.restarts,
                s.checkpoints,
                s.dedup_dropped,
                s.packets_lost,
            )
            .expect("telemetry JSONL write");
        }

        if lanes[l].pkt < pool[pool_idx].len() {
            heap.push(std::cmp::Reverse((
                lanes[l].offset + pool[pool_idx][lanes[l].pkt].0.micros(),
                l,
            )));
            continue;
        }
        // Session complete on this lane.
        finished += 1;
        expected_total += expected[pool_idx];
        if started < n {
            let end = lanes[l].offset + pool[pool_idx].last().unwrap().0.micros();
            lanes[l] = Lane {
                victim: next_victim,
                pool_idx: next_victim as usize % pool.len(),
                offset: end + lane_gap,
                pkt: 0,
            };
            next_victim += 1;
            started += 1;
            let first = pool[lanes[l].pool_idx][0].0.micros();
            heap.push(std::cmp::Reverse((lanes[l].offset + first, l)));
        }
    }

    let report = fleet.finish();
    delivered += report.verdicts.len() as u64;
    let stats = report.stats;

    println!(
        "fleet soak: {finished} sessions, {pushed} packets, {delivered}/{expected_total} verdicts, \
         kills {} restarts {} checkpoints {} rejected {} dedup-dropped {} lost-packets {} \
         shard-state peak {shard_peak}/{shard_bound} rss peak {:.1} MiB",
        stats.kills,
        stats.restarts,
        stats.checkpoints,
        stats.checkpoints_rejected,
        stats.dedup_dropped,
        stats.packets_lost,
        max_rss as f64 / (1024.0 * 1024.0),
    );

    assert_eq!(finished, n, "every started session must complete");
    assert!(
        stats.kills > 0 && stats.restarts > 0,
        "the plan must exercise recovery"
    );
    assert!(stats.checkpoints > 0);
    assert!(
        delivered <= expected_total,
        "delivered {delivered} > expected {expected_total}: duplicates reached the stream"
    );
    assert!(
        delivered as f64 >= expected_total as f64 * 0.85,
        "delivered {delivered}/{expected_total}: loss is not bounded"
    );
    let base = baseline_rss.unwrap_or(max_rss);
    assert!(
        max_rss.saturating_sub(base) < RSS_BUDGET_BYTES,
        "steady-state RSS grew {} bytes (budget {RSS_BUDGET_BYTES})",
        max_rss.saturating_sub(base)
    );
}
