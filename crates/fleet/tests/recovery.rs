//! Tentpole acceptance tests for the supervised fleet: fault-free
//! equivalence with standalone decoders across shard counts,
//! kill/resume determinism under a generated chaos plan, torn/corrupt
//! checkpoint fallback, and multi-tap dedup.

use std::collections::BTreeMap;
use std::sync::Arc;

use wm_capture::time::{Duration, SimTime};
use wm_chaos::{ShardFault, ShardFaultKind, ShardFaultPlan};
use wm_core::{IntervalClassifier, WhiteMirrorConfig};
use wm_fleet::{merge_taps, Fleet, FleetConfig, FleetReport, TapPacket};
use wm_online::{OnlineConfig, OnlineDecoder, OnlineVerdict};
use wm_sim::{run_session, SessionConfig, SessionOutput};
use wm_story::bandersnatch::tiny_film;
use wm_story::{Choice, ViewerScript};

const TS: u32 = 20;

fn session(seed: u64, choices: &[Choice]) -> SessionOutput {
    let graph = Arc::new(tiny_film());
    let script = ViewerScript::from_choices(choices, Duration::from_millis(900));
    run_session(&SessionConfig::fast(graph, seed, script)).unwrap()
}

fn trained_classifier() -> IntervalClassifier {
    let train = session(
        100,
        &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
    );
    IntervalClassifier::train(&train.labels, WhiteMirrorConfig::DEFAULT_SLACK).unwrap()
}

const PICKS: [[Choice; 3]; 4] = [
    [Choice::Default, Choice::NonDefault, Choice::Default],
    [Choice::NonDefault, Choice::NonDefault, Choice::NonDefault],
    [Choice::Default, Choice::Default, Choice::Default],
    [Choice::NonDefault, Choice::Default, Choice::NonDefault],
];

/// `victims` interleaved sessions, each staggered by 2 s of sim-time,
/// merged into one fleet input stream.
fn victim_stream(victims: u32) -> Vec<TapPacket> {
    let mut taps = Vec::new();
    for v in 0..victims {
        let out = session(300 + v as u64, &PICKS[v as usize % PICKS.len()]);
        let offset = v as u64 * 2_000_000;
        taps.push(
            out.trace
                .packets
                .iter()
                .map(|p| (SimTime(p.time.micros() + offset), v, p.frame.clone()))
                .collect::<Vec<TapPacket>>(),
        );
    }
    merge_taps(&taps)
}

fn fleet_cfg(shards: usize) -> FleetConfig {
    let mut cfg = FleetConfig::scaled(shards, TS);
    // Keep idle eviction out of the equivalence tests: a victim
    // finished early would legitimately diverge from a standalone
    // decoder finished at end-of-input. The soak exercises eviction.
    cfg.victim_idle = Duration::from_secs_f64(1e6);
    cfg
}

fn run_fleet(cfg: FleetConfig, stream: &[TapPacket], plan: Option<&ShardFaultPlan>) -> FleetReport {
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());
    let mut fleet = Fleet::new(cfg, clf, graph).unwrap();
    if let Some(plan) = plan {
        fleet.inject(plan);
    }
    for (t, v, frame) in stream {
        fleet.push(*t, *v, frame);
    }
    fleet.finish()
}

fn by_victim(report: &FleetReport) -> BTreeMap<u32, Vec<OnlineVerdict>> {
    let mut map: BTreeMap<u32, Vec<OnlineVerdict>> = BTreeMap::new();
    for (v, verdict) in &report.verdicts {
        map.entry(*v).or_default().push(verdict.clone());
    }
    map
}

#[test]
fn fault_free_fleet_matches_standalone_decoders_for_any_shard_count() {
    const VICTIMS: u32 = 4;
    let stream = victim_stream(VICTIMS);
    let clf = trained_classifier();
    let graph = Arc::new(tiny_film());

    // Reference: one standalone decoder per victim over its own
    // packets (same timestamps the fleet sees).
    let mut reference: BTreeMap<u32, Vec<OnlineVerdict>> = BTreeMap::new();
    for v in 0..VICTIMS {
        let mut dec = OnlineDecoder::new(clf.clone(), graph.clone(), OnlineConfig::scaled(TS));
        let mut out = Vec::new();
        for (t, pv, frame) in &stream {
            if *pv == v {
                out.extend(dec.push_packet(*t, frame));
            }
        }
        out.extend(dec.finish());
        reference.insert(v, out);
    }

    let mut first: Option<Vec<(u32, OnlineVerdict)>> = None;
    for shards in [1usize, 2, 4, 8] {
        let report = run_fleet(fleet_cfg(shards), &stream, None);
        assert!(
            report.loss_windows.is_empty(),
            "{shards} shards: fault-free run reported loss"
        );
        assert_eq!(report.stats.packets_lost, 0);
        assert_eq!(report.stats.kills, 0);
        assert_eq!(
            by_victim(&report),
            reference,
            "{shards} shards diverged from standalone decoders"
        );
        match &first {
            None => first = Some(report.verdicts),
            Some(f) => assert_eq!(
                f, &report.verdicts,
                "merged stream changed with shard count {shards}"
            ),
        }
    }
}

/// Per-victim dedup invariants over a merged report: evidence-backed
/// verdicts cite strictly increasing record high-waters, blind
/// verdicts carry strictly increasing stream indices, and no `(choice
/// point, time)` pair is delivered twice.
fn assert_zero_duplicates(report: &FleetReport) {
    for (victim, verdicts) in by_victim(report) {
        let mut record_hw: Option<usize> = None;
        let mut blind_hw: Option<u64> = None;
        let mut seen_cp = std::collections::BTreeSet::new();
        for v in &verdicts {
            match v.provenance.records.iter().map(|r| r.index).max() {
                Some(cited) => {
                    if let Some(hw) = record_hw {
                        assert!(
                            cited > hw,
                            "victim {victim}: delivered verdict re-cites record {cited} <= {hw}"
                        );
                    }
                    record_hw = Some(cited);
                }
                None => {
                    if let Some(hw) = blind_hw {
                        assert!(
                            v.index > hw,
                            "victim {victim}: blind verdict index {} replayed",
                            v.index
                        );
                    }
                    blind_hw = Some(v.index);
                }
            }
            assert!(
                seen_cp.insert((v.choice.cp, v.choice.time.micros())),
                "victim {victim}: duplicate verdict for {:?} at {}",
                v.choice.cp,
                v.choice.time.micros()
            );
        }
    }
}

#[test]
fn chaos_plan_is_deterministic_and_loses_only_inside_reported_windows() {
    const VICTIMS: u32 = 4;
    let stream = victim_stream(VICTIMS);
    let horizon = Duration::from_micros(stream.last().unwrap().0.micros());
    let plan = ShardFaultPlan::generate(0xC4A05, 3.0, 4, horizon);
    assert!(!plan.is_empty());

    let faulted = run_fleet(fleet_cfg(4), &stream, Some(&plan));
    assert!(faulted.stats.kills >= 1, "plan must exercise the kill path");
    assert!(faulted.stats.restarts >= 1);
    assert!(!faulted.loss_windows.is_empty());

    // Byte-determinism: rerun, and rerun with a wider restore pool.
    let again = run_fleet(fleet_cfg(4), &stream, Some(&plan));
    assert_eq!(faulted.verdicts, again.verdicts);
    assert_eq!(faulted.loss_windows, again.loss_windows);
    assert_eq!(faulted.stats, again.stats);
    let mut wide = fleet_cfg(4);
    wide.restore_workers = 4;
    let pooled = run_fleet(wide, &stream, Some(&plan));
    assert_eq!(faulted.verdicts, pooled.verdicts);
    assert_eq!(faulted.loss_windows, pooled.loss_windows);

    assert_zero_duplicates(&faulted);

    // Bounded loss: every divergence from the fault-free run must sit
    // inside a reported loss window's influence region for that
    // victim (the same margin the single-decoder crash-gap test uses).
    let clean = run_fleet(fleet_cfg(4), &stream, None);
    let clean_by = by_victim(&clean);
    let faulted_by = by_victim(&faulted);
    let margin = {
        let wcfg = Duration::from_secs_f64(10.0 / TS as f64);
        Duration(wcfg.micros() * 4)
    };
    let in_window = |victim: u32, t: SimTime| {
        faulted.loss_windows.iter().any(|w| {
            w.victim == victim
                && t.micros() + margin.micros() >= w.from.micros()
                && t.micros() <= w.to.micros() + margin.micros()
        })
    };
    for v in 0..VICTIMS {
        let clean_v = clean_by.get(&v).cloned().unwrap_or_default();
        let faulted_v = faulted_by.get(&v).cloned().unwrap_or_default();
        for c in &clean_v {
            if !faulted_v.iter().any(|f| f.choice == c.choice) {
                assert!(
                    in_window(v, c.choice.time),
                    "victim {v}: lost verdict at {} µs outside every reported window",
                    c.choice.time.micros()
                );
            }
        }
        for f in &faulted_v {
            if !clean_v.iter().any(|c| c.choice == f.choice) {
                assert!(
                    in_window(v, f.choice.time),
                    "victim {v}: novel verdict at {} µs outside every reported window",
                    f.choice.time.micros()
                );
            }
        }
    }
}

#[test]
fn torn_checkpoint_falls_back_to_previous_good_blob() {
    let stream = victim_stream(1);
    let end = stream.last().unwrap().0.micros();
    // Size the cadence off the session so several checkpoints land
    // before the kill regardless of the sim's pacing.
    let cadence = (end / 8).max(1);
    let mut cfg = fleet_cfg(1);
    cfg.checkpoint_every = Duration::from_micros(cadence);
    // Checkpoint ticks fire on the first packet at or past a cadence
    // boundary. Anchor the faults to the actual stream: tear the
    // checkpoint written at the 5th boundary's trigger packet, then
    // kill right after it — the supervisor must reject the torn
    // latest blob and restore from the previous good one.
    let boundary = cadence * 5;
    let trigger = stream
        .iter()
        .map(|(t, _, _)| t.micros())
        .find(|&t| t >= boundary)
        .expect("a packet past the 5th cadence boundary");
    let plan = ShardFaultPlan::from_events(vec![
        ShardFault {
            at: SimTime(boundary),
            shard: 0,
            kind: ShardFaultKind::CheckpointTorn,
        },
        ShardFault {
            at: SimTime(trigger + 1),
            shard: 0,
            kind: ShardFaultKind::Kill,
        },
    ])
    .expect("plan events are time-ordered");
    let report = run_fleet(cfg.clone(), &stream, Some(&plan));
    assert_eq!(report.stats.kills, 1);
    assert_eq!(report.stats.restarts, 1);
    assert_eq!(
        report.stats.checkpoints_rejected, 1,
        "a torn blob can never parse; it must be rejected"
    );
    assert_eq!(
        report.stats.cold_starts, 0,
        "the previous good checkpoint must carry the restore"
    );
    assert!(!report.verdicts.is_empty());
    assert_zero_duplicates(&report);
    let again = run_fleet(cfg, &stream, Some(&plan));
    assert_eq!(report.verdicts, again.verdicts);
    assert_eq!(report.stats, again.stats);
}

#[test]
fn overlapping_taps_add_no_duplicate_verdicts() {
    const VICTIMS: u32 = 3;
    let stream = victim_stream(VICTIMS);
    let baseline = run_fleet(fleet_cfg(2), &stream, None);

    // Two taps with overlapping visibility: A sees the first two
    // thirds, B the last two thirds; the middle third arrives twice.
    let third = stream.len() / 3;
    let tap_a: Vec<TapPacket> = stream[..third * 2].to_vec();
    let tap_b: Vec<TapPacket> = stream[third..].to_vec();
    let merged = merge_taps(&[tap_a, tap_b]);
    assert!(
        merged.len() > stream.len(),
        "the overlap must duplicate packets"
    );

    let dual = run_fleet(fleet_cfg(2), &merged, None);
    assert_eq!(
        by_victim(&dual),
        by_victim(&baseline),
        "overlapping taps changed the merged verdict stream"
    );
    assert_zero_duplicates(&dual);

    // Full duplication (two identical taps) is the worst case.
    let twin = merge_taps(&[stream.clone(), stream.clone()]);
    let doubled = run_fleet(fleet_cfg(2), &twin, None);
    assert_eq!(by_victim(&doubled), by_victim(&baseline));
    assert_zero_duplicates(&doubled);
}
