//! Trace exporters: JSONL (diff-friendly) and Chrome trace-event JSON
//! (drop into <https://ui.perfetto.dev> for a visual timeline).
//!
//! Both renderings are deterministic functions of the event list —
//! fixed key order, fixed number formatting — so equal seeds export
//! byte-identical files and `trace_diff` can align them line by line.

use crate::event::{EventKind, TraceEvent};
use std::fmt::Write as _;

/// One JSON object per line, in emission order. The canonical golden
/// fixture / diffing format.
pub fn export_jsonl(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(events.len() * 96);
    for e in events {
        let _ = writeln!(
            s,
            "{{\"seq\":{},\"t_us\":{},\"span\":{},\"parent\":{},\"kind\":\"{}\",\"name\":\"{}\",\"a\":{},\"b\":{}}}",
            e.seq,
            e.t_us,
            e.span.0,
            e.parent.0,
            e.kind.label(),
            e.name,
            e.a,
            e.b
        );
    }
    s
}

/// Chrome trace-event ("Trace Event Format") JSON, renderable by
/// Perfetto and `chrome://tracing`.
///
/// Spans are emitted as legacy **async** begin/end pairs (`ph: "b"` /
/// `"e"`) keyed by span id, so overlapping spans (two flows during a
/// reconnect, retried POSTs) render on their own tracks without
/// violating B/E stack nesting. Instants are async instants
/// (`ph: "n"`) attached to their span's track.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(events.len() * 128 + 64);
    s.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let ph = match e.kind {
            EventKind::SpanStart => "b",
            EventKind::SpanEnd => "e",
            EventKind::Instant => "n",
        };
        let _ = write!(
            s,
            "{{\"cat\":\"wm\",\"id\":{},\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":1,\"ts\":{}",
            e.span.0, e.name, ph, e.t_us
        );
        let _ = write!(
            s,
            ",\"args\":{{\"seq\":{},\"parent\":{},\"a\":{},\"b\":{}}}}}",
            e.seq, e.parent.0, e.a, e.b
        );
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanId;
    use crate::recorder::TraceHandle;

    fn sample() -> Vec<TraceEvent> {
        let h = TraceHandle::new();
        h.set_now(5);
        let root = h.span_start("session", SpanId::NONE);
        h.instant(root, "chaos.blackout", 7, 9);
        h.set_now(11);
        h.span_end(root, "session");
        h.snapshot()
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let out = export_jsonl(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"t_us\":5,\"span\":1,\"parent\":0,\"kind\":\"start\",\"name\":\"session\",\"a\":0,\"b\":0}"
        );
        assert!(lines[1].contains("\"name\":\"chaos.blackout\""));
        assert!(lines[1].contains("\"a\":7,\"b\":9"));
        assert!(lines[2].contains("\"kind\":\"end\""));
    }

    #[test]
    fn chrome_trace_has_balanced_async_pairs() {
        let out = export_chrome_trace(&sample());
        assert!(out.starts_with("{\"displayTimeUnit\""));
        assert!(out.ends_with("]}"));
        assert_eq!(out.matches("\"ph\":\"b\"").count(), 1);
        assert_eq!(out.matches("\"ph\":\"e\"").count(), 1);
        assert_eq!(out.matches("\"ph\":\"n\"").count(), 1);
        assert!(out.contains("\"ts\":11"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample();
        let b = sample();
        assert_eq!(export_jsonl(&a), export_jsonl(&b));
        assert_eq!(export_chrome_trace(&a), export_chrome_trace(&b));
    }
}
