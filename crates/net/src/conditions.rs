//! Table I's operational conditions, mapped to link parameters.
//!
//! The dataset varies *connection type* (wired/wireless) and *traffic
//! conditions* (morning/noon/night). Here those attributes become
//! concrete link-model parameters: cross-traffic utilization scales the
//! effective bandwidth and raises loss/jitter, and wireless links add
//! their own loss floor and jitter. The OS/browser/device axes live in
//! the player profile (`wm-player`), not here — they shape payload
//! bytes, not the channel.

use crate::link::LinkParams;
use crate::time::Duration;

/// Connection medium (Table I: "Connection Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectionType {
    Wired,
    Wireless,
}

impl ConnectionType {
    pub const ALL: [ConnectionType; 2] = [ConnectionType::Wired, ConnectionType::Wireless];

    pub fn label(self) -> &'static str {
        match self {
            ConnectionType::Wired => "Ethernet",
            ConnectionType::Wireless => "WiFi",
        }
    }
}

/// Time-of-day traffic condition (Table I: "Traffic Conditions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeOfDay {
    Morning,
    Noon,
    Night,
}

impl TimeOfDay {
    pub const ALL: [TimeOfDay; 3] = [TimeOfDay::Morning, TimeOfDay::Noon, TimeOfDay::Night];

    pub fn label(self) -> &'static str {
        match self {
            TimeOfDay::Morning => "Morning",
            TimeOfDay::Noon => "Noon",
            TimeOfDay::Night => "Night",
        }
    }

    /// Fraction of the access link consumed by cross traffic. Night is
    /// residential prime time.
    fn utilization(self) -> f64 {
        match self {
            TimeOfDay::Morning => 0.25,
            TimeOfDay::Noon => 0.45,
            TimeOfDay::Night => 0.70,
        }
    }
}

/// One cell of the operational grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkConditions {
    pub connection: ConnectionType,
    pub time_of_day: TimeOfDay,
}

impl LinkConditions {
    pub fn new(connection: ConnectionType, time_of_day: TimeOfDay) -> Self {
        LinkConditions {
            connection,
            time_of_day,
        }
    }

    /// Human-readable label ("Ethernet/Night").
    pub fn label(self) -> String {
        format!("{}/{}", self.connection.label(), self.time_of_day.label())
    }

    /// Downstream (server → client) link parameters.
    pub fn downstream(self) -> LinkParams {
        self.build(true)
    }

    /// Upstream (client → server) link parameters.
    pub fn upstream(self) -> LinkParams {
        self.build(false)
    }

    fn build(self, down: bool) -> LinkParams {
        let (raw_bw, base_loss, jitter_us) = match self.connection {
            // 100/40 Mbps cable-ish; sub-millisecond jitter.
            ConnectionType::Wired => (if down { 100e6 } else { 40e6 }, 0.0004, 400),
            // 40/15 Mbps 802.11; more jitter, a real loss floor.
            ConnectionType::Wireless => (if down { 40e6 } else { 15e6 }, 0.004, 2500),
        };
        let util = self.time_of_day.utilization();
        LinkParams {
            bandwidth_bps: raw_bw * (1.0 - util),
            // One-way propagation to a regional CDN node.
            propagation: Duration::from_micros(9_000),
            jitter_std: Duration::from_micros(jitter_us + (util * 3_000.0) as u64),
            // Congestion inflates loss roughly linearly.
            loss_prob: base_loss * (1.0 + 4.0 * util),
            // The passive tap drops more when the medium is busy;
            // monitor-mode wireless capture is notoriously lossy.
            tap_loss_prob: match self.connection {
                ConnectionType::Wired => 0.0001 + 0.0005 * util,
                ConnectionType::Wireless => 0.001 + 0.006 * util,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete() {
        let mut count = 0;
        for c in ConnectionType::ALL {
            for t in TimeOfDay::ALL {
                let lc = LinkConditions::new(c, t);
                let down = lc.downstream();
                let up = lc.upstream();
                assert!(down.bandwidth_bps > up.bandwidth_bps);
                assert!(down.loss_prob > 0.0 && down.loss_prob < 0.05);
                count += 1;
            }
        }
        assert_eq!(count, 6);
    }

    #[test]
    fn night_is_worse_than_morning() {
        for c in ConnectionType::ALL {
            let m = LinkConditions::new(c, TimeOfDay::Morning).downstream();
            let n = LinkConditions::new(c, TimeOfDay::Night).downstream();
            assert!(n.bandwidth_bps < m.bandwidth_bps);
            assert!(n.loss_prob > m.loss_prob);
            assert!(n.jitter_std > m.jitter_std);
            assert!(n.tap_loss_prob > m.tap_loss_prob);
        }
    }

    #[test]
    fn wireless_is_lossier_than_wired() {
        for t in TimeOfDay::ALL {
            let w = LinkConditions::new(ConnectionType::Wired, t).downstream();
            let wl = LinkConditions::new(ConnectionType::Wireless, t).downstream();
            assert!(wl.loss_prob > w.loss_prob);
            assert!(wl.tap_loss_prob > w.tap_loss_prob);
        }
    }

    #[test]
    fn labels() {
        let lc = LinkConditions::new(ConnectionType::Wired, TimeOfDay::Night);
        assert_eq!(lc.label(), "Ethernet/Night");
    }
}
