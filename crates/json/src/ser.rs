//! Compact JSON serializer.
//!
//! The output format mirrors `JSON.stringify(value)` with no indent
//! argument: no whitespace anywhere, object members in insertion order.
//! This is what the Netflix web player's state reporter emits, and it is
//! the byte stream whose length leaks through TLS.

use crate::escape::escape_into;
use crate::value::Value;

/// Serialize `value` to its compact byte form.
///
/// Guaranteed to produce exactly [`Value::serialized_len`] bytes; the
/// property tests in this crate enforce that invariant.
pub fn to_bytes(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.serialized_len());
    write_value(value, &mut out);
    out
}

/// Append the compact serialization of `value` to `out`.
pub fn write_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.extend_from_slice(b"null"),
        Value::Bool(true) => out.extend_from_slice(b"true"),
        Value::Bool(false) => out.extend_from_slice(b"false"),
        Value::Num(n) => n.write_to(out),
        Value::Str(s) => {
            out.push(b'"');
            escape_into(s, out);
            out.push(b'"');
        }
        Value::Array(items) => {
            out.push(b'[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                write_value(item, out);
            }
            out.push(b']');
        }
        Value::Object(members) => {
            out.push(b'{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                out.push(b'"');
                escape_into(k, out);
                out.push(b'"');
                out.push(b':');
                write_value(v, out);
            }
            out.push(b'}');
        }
    }
}

/// Serialize `value` with two-space indentation (for human-facing
/// artifacts like dataset manifests; the compact form remains the
/// side-channel-relevant one).
pub fn to_pretty_bytes(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.serialized_len() * 2);
    write_pretty(value, 0, &mut out);
    out.push(b'\n');
    out
}

fn write_pretty(value: &Value, depth: usize, out: &mut Vec<u8>) {
    const INDENT: &[u8] = b"  ";
    let pad = |out: &mut Vec<u8>, depth: usize| {
        for _ in 0..depth {
            out.extend_from_slice(INDENT);
        }
    };
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.extend_from_slice(b"[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, depth + 1);
                write_pretty(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(b',');
                }
                out.push(b'\n');
            }
            pad(out, depth);
            out.push(b']');
        }
        Value::Object(members) if !members.is_empty() => {
            out.extend_from_slice(b"{\n");
            for (i, (k, v)) in members.iter().enumerate() {
                pad(out, depth + 1);
                out.push(b'"');
                escape_into(k, out);
                out.extend_from_slice(b"\": ");
                write_pretty(v, depth + 1, out);
                if i + 1 < members.len() {
                    out.push(b',');
                }
                out.push(b'\n');
            }
            pad(out, depth);
            out.push(b'}');
        }
        other => write_value(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Number;

    #[test]
    fn scalars() {
        assert_eq!(to_bytes(&Value::Null), b"null");
        assert_eq!(to_bytes(&Value::Bool(true)), b"true");
        assert_eq!(to_bytes(&Value::Bool(false)), b"false");
        assert_eq!(to_bytes(&Value::from(-17i64)), b"-17");
        assert_eq!(to_bytes(&Value::Num(Number::Fixed3(1500))), b"1.500");
        assert_eq!(to_bytes(&Value::from("hi")), b"\"hi\"");
    }

    #[test]
    fn nested_compact_layout() {
        let v = Value::object(vec![
            (
                "a".into(),
                Value::array(vec![Value::from(1i64), Value::Null]),
            ),
            (
                "b".into(),
                Value::object(vec![("c".into(), Value::from(true))]),
            ),
        ]);
        assert_eq!(to_bytes(&v), br#"{"a":[1,null],"b":{"c":true}}"#);
    }

    #[test]
    fn length_oracle_matches() {
        let v = Value::object(vec![
            ("key with \"quotes\"".into(), Value::from("va\\lue")),
            ("n".into(), Value::Num(Number::Fixed3(-123))),
            ("arr".into(), Value::array(vec![])),
        ]);
        assert_eq!(to_bytes(&v).len(), v.serialized_len());
    }

    #[test]
    fn pretty_roundtrips_through_parser() {
        let v = Value::object(vec![
            ("name".into(), Value::from("demo")),
            (
                "items".into(),
                Value::array(vec![
                    Value::from(1i64),
                    Value::object(vec![("k".into(), Value::Bool(true))]),
                ]),
            ),
            ("empty".into(), Value::array(vec![])),
        ]);
        let pretty = to_pretty_bytes(&v);
        let text = String::from_utf8(pretty.clone()).unwrap();
        assert!(text.contains("\n  \"items\": [\n"));
        assert!(text.ends_with("}\n"));
        assert_eq!(crate::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn preserves_member_order() {
        let v = Value::object(vec![
            ("z".into(), Value::from(1i64)),
            ("a".into(), Value::from(2i64)),
        ]);
        assert_eq!(to_bytes(&v), br#"{"z":1,"a":2}"#);
    }
}
