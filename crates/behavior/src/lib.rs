//! # wm-behavior — viewer behaviour model
//!
//! Table I of the paper records *behavioural* attributes for every
//! volunteer — age group, gender, political alignment, state of mind —
//! because the whole point of the attack is that choices correlate with
//! who the viewer is. This crate is the synthetic counterpart: it maps
//! those attributes onto preference weights over the story graph's
//! choice tags (`wm_story::ChoiceTag`) and samples viewer scripts from
//! them, so the generated IITM-Bandersnatch-style corpus carries real
//! attribute/choice structure for the behavioural-profiling example to
//! recover.
//!
//! The weight tables are invented (the paper publishes no behavioural
//! coefficients); what matters for the reproduction is that they are
//! *consistent* — the same attributes always shift the same tags — and
//! documented. See `attributes` for the Table I domains and `model` for
//! the sampling.

pub mod attributes;
pub mod infer;
pub mod model;

pub use attributes::{AgeGroup, BehaviorAttributes, Gender, PoliticalAlignment, StateOfMind};
pub use infer::{infer_attributes, tag_exposure, AttributePosterior};
pub use model::{script_for, tag_affinity, BehaviorModel};
