//! From pcap to personality: full-chain behavioural inference.
//!
//! ```sh
//! cargo run --release --example infer_attributes
//! ```
//!
//! For a set of viewers whose state of mind is hidden, the pipeline
//! runs entirely on the encrypted capture: decode the choices with the
//! White Mirror attack, then compute the Bayesian posterior over the
//! Table I attributes (`wm_behavior::infer`). The demo reports how
//! often the stressed-vs-happy contrast is recovered — the sensitive
//! inference the paper warns about.

use std::sync::Arc;
use white_mirror::behavior::{
    infer_attributes, AgeGroup, BehaviorAttributes, Gender, PoliticalAlignment, StateOfMind,
};
use white_mirror::dataset::{OperationalConditions, ViewerSpec};
use white_mirror::prelude::*;

const TIME_SCALE: u32 = 40;
const VIEWERS: u64 = 16;

fn main() {
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let cond = OperationalConditions::grid()[3]; // one fixed condition

    // Train the attack on two controlled sessions.
    let mut labels = Vec::new();
    for seed in [5_001u64, 5_002] {
        let viewer = ViewerSpec {
            id: 0,
            seed,
            behavior: BehaviorAttributes {
                age: AgeGroup::From20To25,
                gender: Gender::Undisclosed,
                political: PoliticalAlignment::Undisclosed,
                mind: StateOfMind::Undisclosed,
            },
            operational: cond,
        };
        let opts = white_mirror::dataset::SimOptions {
            media_scale: 1024,
            time_scale: TIME_SCALE,
            ..Default::default()
        };
        let cfg = white_mirror::dataset::run::session_config(graph.clone(), &viewer, &opts);
        labels.extend(run_session(&cfg).expect("training").labels);
    }
    let attack = WhiteMirror::train(&labels, WhiteMirrorConfig::scaled(TIME_SCALE)).expect("train");

    println!("viewer  truth      inferred   P(stressed)  P(happy)   decode");
    let mut correct = 0;
    for v in 0..VIEWERS {
        let mind = if v % 2 == 0 {
            StateOfMind::Stressed
        } else {
            StateOfMind::Happy
        };
        let behavior = BehaviorAttributes {
            age: AgeGroup::From25To30,
            gender: Gender::Undisclosed,
            political: PoliticalAlignment::Centrist,
            mind,
        };
        // Three viewings per viewer, decoded from their captures alone.
        let mut decoded_choices = Vec::new();
        let mut decode_ok = 0usize;
        let mut decode_total = 0usize;
        for k in 0..3u64 {
            let seed = 6_000 + v * 10 + k;
            let viewer = ViewerSpec {
                id: v as u32,
                seed,
                behavior,
                operational: cond,
            };
            let opts = white_mirror::dataset::SimOptions {
                media_scale: 1024,
                time_scale: TIME_SCALE,
                ..Default::default()
            };
            let cfg = white_mirror::dataset::run::session_config(graph.clone(), &viewer, &opts);
            let out = run_session(&cfg).expect("session");
            let (decoded, acc) = attack.evaluate(&out.trace, &graph, &out.decisions);
            decode_ok += acc.correct as usize;
            decode_total += acc.total as usize;
            decoded_choices.extend(decoded.choices.iter().map(|d| (d.cp, d.choice)));
        }

        let post = infer_attributes(&graph, &decoded_choices);
        let marginals = post.mind_marginals();
        let p = |m: StateOfMind| marginals.iter().find(|(x, _)| *x == m).expect("marginal").1;
        let inferred = if p(StateOfMind::Stressed) > p(StateOfMind::Happy) {
            StateOfMind::Stressed
        } else {
            StateOfMind::Happy
        };
        if inferred == mind {
            correct += 1;
        }
        println!(
            "{:>4}    {:<10} {:<10} {:>10.2}  {:>8.2}   {}/{} choices",
            v,
            mind.label(),
            inferred.label(),
            p(StateOfMind::Stressed),
            p(StateOfMind::Happy),
            decode_ok,
            decode_total
        );
    }
    println!(
        "\nstressed-vs-happy recovered for {correct}/{VIEWERS} viewers — from encrypted traffic only."
    );
}
