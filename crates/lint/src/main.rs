//! `wm-lint` command-line interface.
//!
//! ```text
//! wm-lint [--root <dir>] [--json <path>] [--deny]
//! ```
//!
//! Scans the workspace, prints findings to stdout, optionally writes a
//! JSON report, and with `--deny` exits non-zero when anything fires —
//! the mode CI runs.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    deny: bool,
}

const USAGE: &str = "\
wm-lint: workspace invariant checker (determinism, panic-safety, layering)

USAGE:
    wm-lint [--root <dir>] [--json <path>] [--deny]

OPTIONS:
    --root <dir>    Workspace root (default: current directory)
    --json <path>   Write a machine-readable JSON report
    --deny          Exit 1 if any finding is reported (CI mode)
    --help          Show this help and the rule list
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: None,
        deny: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root requires a path")?);
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json requires a path")?));
            }
            "--deny" => args.deny = true,
            "--help" | "-h" => {
                print!("{USAGE}\nRULES:\n");
                for rule in wm_lint::rules::ALL_RULES {
                    println!("    {rule}");
                }
                std::process::exit(0);
            }
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wm-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let result = match wm_lint::scan_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "wm-lint: failed to scan workspace at `{}`: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };

    for f in &result.findings {
        println!("{f}");
    }
    // Per-family counts (family = rule prefix before `/`), every known
    // family always present so CI logs show the v2 families are active
    // even at zero findings.
    let mut families: Vec<&str> = wm_lint::rules::ALL_RULES
        .iter()
        .map(|r| r.split('/').next().unwrap_or(r))
        .collect();
    families.dedup();
    let by_family: Vec<String> = families
        .iter()
        .map(|fam| {
            let n = result
                .findings
                .iter()
                .filter(|f| f.rule.split('/').next() == Some(fam))
                .count();
            format!("{fam}={n}")
        })
        .collect();
    println!("wm-lint: families: {}", by_family.join(" "));
    println!(
        "wm-lint: call graph: {} fns, {} edges; hotpath roots={} reachable={}; \
         response roots={} taint-checked={}; unsafe uses={}",
        result.v2.graph_fns,
        result.v2.graph_edges,
        result.v2.hotpath_roots,
        result.v2.hotpath_reachable,
        result.v2.response_roots,
        result.v2.taint_reachable,
        result.v2.unsafe_uses,
    );
    println!(
        "wm-lint: {} finding{} across {} file{}",
        result.findings.len(),
        if result.findings.len() == 1 { "" } else { "s" },
        result.files_scanned,
        if result.files_scanned == 1 { "" } else { "s" },
    );

    if let Some(path) = &args.json {
        let bytes = wm_lint::report::to_json(&result.findings, result.files_scanned);
        if let Err(e) = std::fs::write(path, bytes) {
            eprintln!(
                "wm-lint: failed to write report to `{}`: {e}",
                path.display()
            );
            return ExitCode::from(2);
        }
    }

    if args.deny && !result.findings.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
