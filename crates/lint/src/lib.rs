//! # wm-lint — workspace invariant checker
//!
//! The White Mirror pipeline rests on three invariants that ordinary
//! compilation cannot enforce:
//!
//! 1. **Determinism.** Golden-trace and byte-identity tests only prove
//!    something if the same seed always produces the same bytes, so
//!    byte-producing crates must not read wall clocks or iterate
//!    randomized hash collections, and nothing may draw unseeded
//!    entropy.
//! 2. **Panic-safety.** Attacker-facing parse paths (pcap, TLS record
//!    reassembly, HTTP heads, JSON) consume adversarial bytes and must
//!    return typed errors rather than panic.
//! 3. **Layering.** Attacker crates model an on-path observer; their
//!    declared dependencies are confined to the capture window and
//!    public vocabulary so the attack cannot quietly cheat by reaching
//!    into victim internals.
//!
//! `wm-lint` enforces all three with a lightweight Rust lexer
//! ([`lexer`]), a token-pattern rule engine ([`rules`]), and a minimal
//! manifest reader ([`manifest`]). It walks every `crates/*/src` file
//! plus each crate's `Cargo.toml`, skips `#[cfg(test)]` items, honours
//! inline `// wm-lint: allow(<rule>, reason = "...")` suppressions, and
//! can emit a machine-readable JSON report ([`report`]). The binary's
//! `--deny` mode (exit 1 on any finding) is wired into CI.

pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod rules_v2;

pub use rules::Finding;
pub use rules_v2::V2Summary;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files inspected (sources + manifests).
    pub files_scanned: usize,
    /// Headline numbers from the call-graph (v2) pass.
    pub v2: V2Summary,
}

/// Scan the workspace rooted at `root` (the directory containing
/// `crates/`). The walk order is sorted, so output is deterministic.
/// Runs the per-file token rules ([`rules`]) on every source, then the
/// workspace-wide call-graph families ([`rules_v2`]) over all of them.
pub fn scan_workspace(root: &Path) -> io::Result<ScanResult> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut result = ScanResult::default();
    let mut sources: Vec<rules_v2::WorkspaceFile> = Vec::new();
    let mut deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for dir in &crate_dirs {
        scan_crate(root, dir, &mut result, &mut sources, &mut deps)?;
    }

    let (v2_findings, v2_summary) =
        rules_v2::check_workspace(&sources, &deps, &rules_v2::V2Config::default());
    result.findings.extend(v2_findings);
    result.v2 = v2_summary;

    result
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(result)
}

fn scan_crate(
    root: &Path,
    dir: &Path,
    result: &mut ScanResult,
    sources_out: &mut Vec<rules_v2::WorkspaceFile>,
    deps_out: &mut BTreeMap<String, Vec<String>>,
) -> io::Result<()> {
    let manifest_path = dir.join("Cargo.toml");
    let mut crate_name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if let Ok(text) = fs::read_to_string(&manifest_path) {
        let m = manifest::parse(&text);
        if !m.name.is_empty() {
            crate_name = m.name.clone();
        }
        result.files_scanned += 1;
        result
            .findings
            .extend(rules::check_manifest(&rel(root, &manifest_path), &m));
        // Call-graph visibility: normal and build deps only — test
        // items are stripped before analysis, so dev-deps never carry
        // shipping-code calls.
        deps_out.insert(
            crate_name.clone(),
            m.dependencies
                .iter()
                .chain(&m.build_dependencies)
                .map(|d| d.name.clone())
                .collect(),
        );
    }

    let src_dir = dir.join("src");
    if !src_dir.is_dir() {
        return Ok(());
    }
    let mut sources = Vec::new();
    collect_rs(&src_dir, &mut sources)?;
    for path in sources {
        // Non-UTF-8 sources cannot be valid Rust; read lossily so the
        // lint still sees whatever decodes.
        let bytes = fs::read(&path)?;
        let src = String::from_utf8_lossy(&bytes);
        result.files_scanned += 1;
        result
            .findings
            .extend(rules::check_source(&crate_name, &rel(root, &path), &src));
        sources_out.push(rules_v2::WorkspaceFile {
            crate_name: crate_name.clone(),
            rel_path: rel(root, &path),
            src: src.into_owned(),
        });
    }
    Ok(())
}

/// Recursively collect `.rs` files under `dir`, sorted at every level.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    r.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
