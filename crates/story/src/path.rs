//! Path traversal: turning a sequence of choices into a playback walk.

use crate::graph::StoryGraph;
use crate::model::{Choice, ChoicePointId, SegmentEnd, SegmentId};

/// Splitmix64 step (std-only; the workspace builds offline without the
/// `rand` crate). Used solely by [`sample_path`]'s biased coin.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)` from a splitmix64 state.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The decisions a viewer made, in encounter order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChoiceSequence(pub Vec<Choice>);

impl ChoiceSequence {
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Compact string form ("DNDD…") used in reports and ground-truth
    /// files: `D` default, `N` non-default.
    pub fn to_compact(&self) -> String {
        self.0
            .iter()
            .map(|c| match c {
                Choice::Default => 'D',
                Choice::NonDefault => 'N',
            })
            .collect()
    }

    /// Parse the compact form.
    pub fn from_compact(s: &str) -> Option<Self> {
        s.chars()
            .map(|ch| match ch {
                'D' => Some(Choice::Default),
                'N' => Some(Choice::NonDefault),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
            .map(ChoiceSequence)
    }
}

/// One step of a walk: a segment played, and the decision (if any) that
/// ended it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkStep {
    pub segment: SegmentId,
    /// The choice point shown when this segment finished, with the pick.
    pub decision: Option<(ChoicePointId, Choice)>,
}

/// A complete traversal from start to an ending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathWalk {
    pub steps: Vec<WalkStep>,
    /// The choices in encounter order (redundant with `steps`, kept for
    /// convenience: this is the ground truth the attack is scored on).
    pub choices: ChoiceSequence,
    /// Choice points in encounter order.
    pub encountered: Vec<ChoicePointId>,
    /// The ending segment reached.
    pub ending: SegmentId,
}

impl PathWalk {
    /// Total playback duration of all segments in seconds.
    pub fn duration_secs(&self, graph: &StoryGraph) -> u64 {
        self.steps
            .iter()
            .map(|s| graph.segment(s.segment).duration_secs as u64)
            .sum()
    }
}

/// Walk the graph applying `choices` in order.
///
/// If the sequence is shorter than the number of choice points
/// encountered, remaining decisions fall back to the default branch
/// (exactly what the player does when the viewer lets the timer lapse).
/// Extra trailing choices are ignored.
pub fn walk(graph: &StoryGraph, choices: &ChoiceSequence) -> PathWalk {
    let mut steps = Vec::new();
    let mut applied = Vec::new();
    let mut encountered = Vec::new();
    let mut current = graph.start();
    let mut idx = 0;
    loop {
        let seg = graph.segment(current);
        match seg.end {
            SegmentEnd::Ending => {
                steps.push(WalkStep {
                    segment: current,
                    decision: None,
                });
                return PathWalk {
                    steps,
                    choices: ChoiceSequence(applied),
                    encountered,
                    ending: current,
                };
            }
            SegmentEnd::Continue(next) => {
                steps.push(WalkStep {
                    segment: current,
                    decision: None,
                });
                current = next;
            }
            SegmentEnd::Choice(cp_id) => {
                let choice = choices.0.get(idx).copied().unwrap_or(Choice::Default);
                idx += 1;
                let cp = graph.choice_point(cp_id);
                steps.push(WalkStep {
                    segment: current,
                    decision: Some((cp_id, choice)),
                });
                applied.push(choice);
                encountered.push(cp_id);
                current = cp.option(choice).target;
            }
        }
    }
}

/// Sample a complete choice sequence by walking the graph and flipping a
/// biased coin at every choice point (`p_default` = probability of the
/// default branch).
pub fn sample_path(graph: &StoryGraph, seed: u64, p_default: f64) -> PathWalk {
    let mut rng_state = seed;
    let mut choices = Vec::new();
    let mut current = graph.start();
    loop {
        match graph.segment(current).end {
            SegmentEnd::Ending => break,
            SegmentEnd::Continue(next) => current = next,
            SegmentEnd::Choice(cp_id) => {
                let choice = if unit(&mut rng_state) < p_default {
                    Choice::Default
                } else {
                    Choice::NonDefault
                };
                choices.push(choice);
                current = graph.choice_point(cp_id).option(choice).target;
            }
        }
    }
    walk(graph, &ChoiceSequence(choices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandersnatch::bandersnatch;

    #[test]
    fn compact_roundtrip() {
        let seq = ChoiceSequence(vec![
            Choice::Default,
            Choice::NonDefault,
            Choice::NonDefault,
            Choice::Default,
        ]);
        assert_eq!(seq.to_compact(), "DNND");
        assert_eq!(ChoiceSequence::from_compact("DNND"), Some(seq));
        assert_eq!(ChoiceSequence::from_compact("DXN"), None);
    }

    #[test]
    fn all_default_walk_terminates() {
        let g = bandersnatch();
        let walk = walk(&g, &ChoiceSequence::default());
        assert!(g.segment(walk.ending).is_ending());
        assert!(!walk.encountered.is_empty());
        assert!(walk.choices.0.iter().all(|c| *c == Choice::Default));
        assert_eq!(walk.choices.len(), walk.encountered.len());
    }

    #[test]
    fn all_nondefault_walk_terminates() {
        let g = bandersnatch();
        let many_n = ChoiceSequence(vec![Choice::NonDefault; 64]);
        let w = walk(&g, &many_n);
        assert!(g.segment(w.ending).is_ending());
        assert!(w.choices.0.iter().all(|c| *c == Choice::NonDefault));
    }

    #[test]
    fn short_sequence_falls_back_to_default() {
        let g = bandersnatch();
        let w = walk(&g, &ChoiceSequence(vec![Choice::NonDefault]));
        assert_eq!(w.choices.0[0], Choice::NonDefault);
        assert!(w.choices.0[1..].iter().all(|c| *c == Choice::Default));
    }

    #[test]
    fn sampling_is_deterministic_and_varied() {
        let g = bandersnatch();
        let a = sample_path(&g, 7, 0.5);
        let b = sample_path(&g, 7, 0.5);
        assert_eq!(a, b);
        let c = sample_path(&g, 8, 0.5);
        // Different seeds almost surely differ on a graph this size.
        assert_ne!(a.choices, c.choices);
    }

    #[test]
    fn p_default_extremes() {
        let g = bandersnatch();
        let all_d = sample_path(&g, 1, 1.0);
        assert!(all_d.choices.0.iter().all(|c| *c == Choice::Default));
        let all_n = sample_path(&g, 1, 0.0);
        assert!(all_n.choices.0.iter().all(|c| *c == Choice::NonDefault));
    }

    #[test]
    fn walk_duration_positive() {
        let g = bandersnatch();
        let w = sample_path(&g, 3, 0.5);
        assert!(
            w.duration_secs(&g) > 600,
            "a viewing should exceed 10 minutes"
        );
    }
}
