//! Attack a saved dataset: read pcaps from disk, decode choices,
//! score against the manifest's ground truth.
//!
//! ```sh
//! cargo run --release --example build_dataset -- 12 2019 /tmp/wm-ds
//! cargo run --release --example decode_pcap -- /tmp/wm-ds
//! ```
//!
//! Training uses the first viewer of each platform profile (their
//! ground truth is in the manifest — the attacker's own controlled
//! viewings); every other viewer is decoded blind from their pcap.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use white_mirror::capture::Trace;
use white_mirror::core::{choice_accuracy, ChoiceAccuracy};
use white_mirror::dataset::load_manifest;
use white_mirror::prelude::*;
use white_mirror::story::ChoiceSequence;

/// Must match the `SimOptions` used by `build_dataset`.
const TIME_SCALE: u32 = 20;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("iitm-bandersnatch-synth"));
    let graph = Arc::new(story::bandersnatch::bandersnatch());

    let (spec, truths) = load_manifest(&dir).expect("dataset manifest");
    println!("dataset {} — {} viewers", spec.name, spec.viewers.len());

    // Group viewers by platform profile; first of each group trains.
    let mut by_profile: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, v) in spec.viewers.iter().enumerate() {
        by_profile
            .entry(v.operational.profile.label())
            .or_default()
            .push(i);
    }

    let load_trace = |i: usize| -> Trace {
        let (_, file) = &truths[i];
        Trace::read_pcap_file(&dir.join("traces").join(file)).expect("trace file")
    };

    let mut total = ChoiceAccuracy::default();
    let mut decoded_viewers = 0;
    for (profile, members) in &by_profile {
        // Train on the first member: replay their session to get
        // labelled records (the attacker controls this viewing, so
        // regenerating it from the manifest seed is legitimate).
        let trainer = &spec.viewers[members[0]];
        let opts = white_mirror::dataset::SimOptions {
            media_scale: 512,
            time_scale: TIME_SCALE,
            ..Default::default()
        };
        let cfg = white_mirror::dataset::run::session_config(graph.clone(), trainer, &opts);
        let train_out = run_session(&cfg).expect("training replay");
        let Some(attack) =
            WhiteMirror::train(&train_out.labels, WhiteMirrorConfig::scaled(TIME_SCALE))
        else {
            println!("  {profile}: no report examples in the training viewing, skipped");
            continue;
        };

        for &i in &members[1..] {
            let trace = load_trace(i);
            let decoded = attack.decode_trace(&trace, &graph);
            let truth_seq = ChoiceSequence::from_compact(&truths[i].0).expect("manifest truth");
            // Rebuild (cp, choice) pairs by walking the graph.
            let walk = story::path::walk(&graph, &truth_seq);
            let truth: Vec<_> = walk.encountered.into_iter().zip(walk.choices.0).collect();
            let acc = choice_accuracy(&decoded.choices, &truth);
            total.merge(&acc);
            decoded_viewers += 1;
            println!(
                "  viewer {:>3} ({profile:<28}) decoded {:<16} truth {:<16} {:>5.1}%",
                spec.viewers[i].id,
                decoded.choice_string(),
                truths[i].0,
                100.0 * acc.accuracy()
            );
        }
    }
    println!(
        "\n{} viewers decoded blind from disk: {:.1}% of choices recovered ({} / {})",
        decoded_viewers,
        100.0 * total.accuracy(),
        total.correct,
        total.total
    );
}
