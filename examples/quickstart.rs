//! Quickstart: simulate one Bandersnatch viewing, capture it, attack it.
//!
//! ```sh
//! cargo run --release --example quickstart [-- --trace]
//! ```
//!
//! Prints the victim's true choice string, the decoded one, and where
//! the two state-report length bands sat in the capture. With
//! `--trace`, the victim session also records a causal event log and a
//! summary of it is printed (see `trace_explorer` for the full tree).

use std::sync::Arc;
use white_mirror::prelude::*;

fn main() {
    let trace_enabled = std::env::args().any(|a| a == "--trace");
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    println!(
        "film: {} ({} segments, {} choice points, {} endings)",
        graph.title(),
        graph.segments().len(),
        graph.choice_points().len(),
        graph.endings().len()
    );

    // --- training session (the attacker's own controlled viewing) ----
    let train_script = ViewerScript::sample(1001, 14, 0.5);
    let mut train_cfg = SessionConfig::fast(graph.clone(), 1001, train_script);
    train_cfg.player.time_scale = 40;
    train_cfg.telemetry = true;
    let train = run_session(&train_cfg).expect("training session");
    println!(
        "trained on {} labelled records ({} type-1, {} type-2)",
        train.labels.len(),
        train
            .labels
            .iter()
            .filter(|l| l.class == RecordClass::Type1)
            .count(),
        train
            .labels
            .iter()
            .filter(|l| l.class == RecordClass::Type2)
            .count(),
    );
    let attack = WhiteMirror::train(&train.labels, WhiteMirrorConfig::scaled(40))
        .expect("training needs report examples");
    println!(
        "learned bands: type-1 {:?}  type-2 {:?}",
        attack.classifier().type1,
        attack.classifier().type2
    );

    // --- victim session ----------------------------------------------
    let victim_script = ViewerScript::sample(2002, 14, 0.5);
    let mut victim_cfg = SessionConfig::fast(graph.clone(), 2002, victim_script);
    victim_cfg.player.time_scale = 40;
    victim_cfg.telemetry = true;
    victim_cfg.trace = trace_enabled;
    let victim = run_session(&victim_cfg).expect("victim session");
    println!(
        "victim session: {} packets captured, {} choices made",
        victim.stats.packets_captured,
        victim.decisions.len()
    );

    // --- the attack: pcap in, choices out -----------------------------
    let (decoded, accuracy) = attack.evaluate(&victim.trace, &graph, &victim.decisions);
    println!("truth:   {}", victim.choice_string());
    println!("decoded: {}", decoded.choice_string());
    println!(
        "accuracy: {:.1}% ({} / {} choices)",
        100.0 * accuracy.accuracy(),
        accuracy.correct,
        accuracy.total
    );
    for d in &decoded.choices {
        let cp = graph.choice_point(d.cp);
        println!(
            "  [{}] {:<48} -> {}",
            if d.observed { "seen" } else { "pred" },
            cp.question,
            cp.option(d.choice).label
        );
    }

    // --- telemetry: what both sessions did, stage by stage ------------
    let mut telemetry = train.telemetry.clone();
    telemetry.merge(&victim.telemetry);
    println!("\ntelemetry (train + victim sessions merged):");
    println!("{}", telemetry.render_table());

    // --- trace: the victim session's causal event log -----------------
    if trace_enabled {
        println!(
            "\ntrace: {} events recorded (sim-time stamped, byte-deterministic per seed)",
            victim.trace_events.len()
        );
        for (name, n) in counts_by_name(&victim.trace_events) {
            println!("  {name:<28} {n:>6}");
        }
    }
}
