//! The end-to-end White Mirror attack.
//!
//! Train once per operating condition on labelled sessions (as the
//! authors did with their controlled captures), then point it at raw
//! pcaps: it reassembles flows, reads record lengths, classifies the
//! state reports and walks the story graph back to the viewer's
//! choices.

use crate::classify::{IntervalClassifier, RecordClassifier};
use crate::decode::{ChoiceDecoder, DecodedChoice, DecoderConfig};
use crate::features::{client_app_records, ClientFeatures};
use crate::metrics::{choice_accuracy, ChoiceAccuracy, ConfusionMatrix};
use crate::provenance::{build_provenance, ChoiceProvenance};
use std::sync::Arc;
use wm_capture::labels::LabeledRecord;
use wm_capture::tap::Trace;
use wm_capture::RecordClass;
use wm_story::{Choice, ChoicePointId, StoryGraph};
use wm_telemetry::{Counter, Histogram, Registry};
use wm_trace::{SpanId, TraceHandle};

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct WhiteMirrorConfig {
    /// Band widening applied by the interval classifier.
    pub slack: u16,
    /// Decoder settings (window, time-awareness, time scale).
    pub decoder: DecoderConfig,
    /// Hypotheses tracked jointly (1 = greedy decoding; >1 enables the
    /// beam decoder, which survives corrupted reports without
    /// cascading — see `crate::beam`).
    pub beam_width: usize,
}

impl WhiteMirrorConfig {
    /// Band slack covering the report-length jitter that a finite
    /// training set may not have exhibited: type-2 reports vary by up
    /// to the selection-label length (~13 bytes) around the training
    /// span, while the nearest "others" mass ends ~190 bytes below the
    /// type-2 band — so ±8 widens safely.
    pub const DEFAULT_SLACK: u16 = 8;

    /// Real-time defaults: ±8 bytes of band slack, time-aware decoding.
    pub fn realtime() -> Self {
        WhiteMirrorConfig {
            slack: Self::DEFAULT_SLACK,
            decoder: DecoderConfig::realtime(),
            beam_width: 8,
        }
    }

    /// Defaults for a session simulated at `time_scale`.
    pub fn scaled(time_scale: u32) -> Self {
        WhiteMirrorConfig {
            slack: Self::DEFAULT_SLACK,
            decoder: DecoderConfig::scaled(time_scale),
            beam_width: 8,
        }
    }
}

/// A decoded session.
#[derive(Debug, Clone)]
pub struct DecodedSession {
    pub choices: Vec<DecodedChoice>,
    /// Per-choice evidence, parallel to `choices`: the captured records
    /// each decision was read off, its confidence tier, and gap
    /// proximity (see `crate::provenance`).
    pub provenance: Vec<ChoiceProvenance>,
    /// Extraction statistics (gaps/resyncs observed in the capture).
    pub features: ClientFeatures,
}

impl DecodedSession {
    /// Compact "DNND…" string.
    pub fn choice_string(&self) -> String {
        self.choices
            .iter()
            .map(|d| match d.choice {
                Choice::Default => 'D',
                Choice::NonDefault => 'N',
            })
            .collect()
    }

    /// Mean per-choice confidence (1.0 when every report was observed
    /// on an intact capture; degrades before correctness does as faults
    /// mount). An empty choice list — a graph with no choice points, or
    /// a decode that produced nothing — reports 0.0, never NaN: there
    /// is no evidence to be confident about. Use
    /// [`DecodedSession::mean_confidence_checked`] to distinguish
    /// "empty" from "genuinely zero".
    pub fn mean_confidence(&self) -> f64 {
        self.mean_confidence_checked().unwrap_or(0.0)
    }

    /// Mean per-choice confidence, or `None` when no choices were
    /// decoded (so the mean is undefined rather than silently 0.0).
    pub fn mean_confidence_checked(&self) -> Option<f64> {
        if self.choices.is_empty() {
            return None;
        }
        Some(self.choices.iter().map(|d| d.confidence).sum::<f64>() / self.choices.len() as f64)
    }

    /// The evidence behind choice `i`, if decoded.
    pub fn provenance_of(&self, i: usize) -> Option<&ChoiceProvenance> {
        self.provenance.get(i)
    }

    /// Multi-line "why" report: one line of evidence per decision.
    pub fn why_report(&self) -> String {
        self.choices
            .iter()
            .zip(&self.provenance)
            .map(|(d, p)| p.why(d))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Confidence multiplier for a decision whose choice window overlaps a
/// capture gap: the tap may have missed the very report that would
/// flip the decision. Public so the streaming decoder (`wm-online`)
/// applies the identical discount.
pub const GAP_CONFIDENCE_FACTOR: f64 = 0.5;

/// Attack-side telemetry handles (see `wm-telemetry`): wall-clock
/// timings of the classify and decode stages plus per-class record
/// counts as seen by the trained classifier.
pub struct AttackTelemetry {
    classify_ns: Arc<Histogram>,
    decode_ns: Arc<Histogram>,
    sessions_decoded: Arc<Counter>,
    records_type1: Arc<Counter>,
    records_type2: Arc<Counter>,
    records_other: Arc<Counter>,
}

impl AttackTelemetry {
    /// Register the attack's metrics under `core.*`.
    pub fn register(registry: &Registry) -> Self {
        AttackTelemetry {
            classify_ns: registry.histogram("core.classify_ns"),
            decode_ns: registry.histogram("core.decode_ns"),
            sessions_decoded: registry.counter("core.sessions_decoded"),
            records_type1: registry.counter("core.records.type1"),
            records_type2: registry.counter("core.records.type2"),
            records_other: registry.counter("core.records.other"),
        }
    }
}

/// The trained attack.
pub struct WhiteMirror {
    classifier: IntervalClassifier,
    cfg: WhiteMirrorConfig,
    telemetry: Option<AttackTelemetry>,
    trace: Option<(TraceHandle, SpanId)>,
}

impl WhiteMirror {
    /// Train the record classifier from labelled records (training
    /// sessions under the same operating condition).
    ///
    /// Returns `None` when the training data lacks report examples.
    pub fn train(labels: &[LabeledRecord], cfg: WhiteMirrorConfig) -> Option<Self> {
        let classifier = IntervalClassifier::train(labels, cfg.slack)?;
        Some(WhiteMirror {
            classifier,
            cfg,
            telemetry: None,
            trace: None,
        })
    }

    /// Attach telemetry handles (observation only; decode output is
    /// unchanged). Counter values are seed-deterministic; the `*_ns`
    /// timing histograms are wall-clock and are not.
    pub fn set_telemetry(&mut self, telemetry: AttackTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Attach a causal trace sink: each decode opens an `attack.decode`
    /// span under `span` and emits one `attack.choice` instant per
    /// decision, stamped with the capture's sim times (observation
    /// only; decode output is unchanged).
    pub fn set_trace(&mut self, handle: TraceHandle, span: SpanId) {
        self.trace = Some((handle, span));
    }

    /// The learned classifier.
    pub fn classifier(&self) -> &IntervalClassifier {
        &self.classifier
    }

    /// Reconstruct an attack from a previously saved classifier.
    pub fn from_classifier(classifier: IntervalClassifier, cfg: WhiteMirrorConfig) -> Self {
        WhiteMirror {
            classifier,
            cfg,
            telemetry: None,
            trace: None,
        }
    }

    /// Persist the trained model to a JSON file.
    pub fn save_model(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, wm_json::to_pretty_bytes(&self.classifier.to_json()))
    }

    /// Load a trained model from a JSON file.
    pub fn load_model(path: &std::path::Path, cfg: WhiteMirrorConfig) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        let doc = wm_json::parse(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let classifier = IntervalClassifier::from_json(&doc)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "model schema"))?;
        Ok(WhiteMirror {
            classifier,
            cfg,
            telemetry: None,
            trace: None,
        })
    }

    /// Decode the viewer's choices from a raw capture.
    pub fn decode_trace(&self, trace: &Trace, graph: &StoryGraph) -> DecodedSession {
        let features = client_app_records(trace);
        if let Some(t) = &self.telemetry {
            // Classify pass: count the capture's records by learned
            // class and time the sweep.
            let _span = t.decode_ns.span();
            {
                let _span = t.classify_ns.span();
                for r in &features.records {
                    match self.classifier.classify(r.record.length) {
                        RecordClass::Type1 => t.records_type1.inc(),
                        RecordClass::Type2 => t.records_type2.inc(),
                        RecordClass::Other => t.records_other.inc(),
                    }
                }
            }
            t.sessions_decoded.inc();
            let choices = self.run_decoder(&features, graph);
            return self.finish(choices, features);
        }
        let choices = self.run_decoder(&features, graph);
        self.finish(choices, features)
    }

    /// Shared decode tail: gap-aware confidence, provenance
    /// reconstruction and (when attached) trace emission.
    fn finish(&self, mut choices: Vec<DecodedChoice>, features: ClientFeatures) -> DecodedSession {
        self.apply_gap_confidence(&mut choices, &features);
        let provenance = build_provenance(
            &choices,
            &features,
            &self.classifier,
            self.cfg.decoder.window,
        );
        if let Some((h, parent)) = &self.trace {
            let start = features.records.first().map_or(0, |r| r.time.micros());
            let end = choices
                .iter()
                .map(|d| d.time.micros())
                .chain(features.records.last().map(|r| r.time.micros()))
                .max()
                .unwrap_or(start);
            let span = h.span_start_at(start, "attack.decode", *parent);
            for (d, p) in choices.iter().zip(&provenance) {
                // a = choice point id; b packs the pick bit above the
                // evidence-record count.
                h.instant_at(
                    d.time.micros(),
                    span,
                    "attack.choice",
                    d.cp.0 as u64,
                    (((d.choice == Choice::NonDefault) as u64) << 8) | p.records.len() as u64,
                );
            }
            h.span_end_at(end, span, "attack.decode");
        }
        DecodedSession {
            choices,
            provenance,
            features,
        }
    }

    /// Downgrade decisions whose choice window a capture gap overlaps:
    /// the decode stays whatever the surviving evidence supports, but
    /// the attacker reports reduced certainty there.
    fn apply_gap_confidence(&self, choices: &mut [DecodedChoice], features: &ClientFeatures) {
        if features.gap_times.is_empty() {
            return;
        }
        let window = self.cfg.decoder.window;
        for d in choices.iter_mut() {
            let near_gap = features
                .gap_times
                .iter()
                .any(|&g| g + window >= d.time && g <= d.time + window);
            if near_gap {
                d.confidence *= GAP_CONFIDENCE_FACTOR;
            }
        }
    }

    fn run_decoder(&self, features: &ClientFeatures, graph: &StoryGraph) -> Vec<DecodedChoice> {
        if self.cfg.beam_width > 1 && self.cfg.decoder.time_aware {
            crate::beam::BeamDecoder::new(
                &self.classifier,
                graph,
                self.cfg.decoder.clone(),
                self.cfg.beam_width,
            )
            .decode(&features.records)
        } else {
            ChoiceDecoder::new(&self.classifier, graph, self.cfg.decoder.clone())
                .decode(&features.records)
        }
    }

    /// Decode and score against ground truth.
    pub fn evaluate(
        &self,
        trace: &Trace,
        graph: &StoryGraph,
        truth: &[(ChoicePointId, Choice)],
    ) -> (DecodedSession, ChoiceAccuracy) {
        let decoded = self.decode_trace(trace, graph);
        let acc = choice_accuracy(&decoded.choices, truth);
        (decoded, acc)
    }

    /// Per-record confusion of the trained classifier on held-out
    /// labelled records.
    pub fn record_confusion(&self, labels: &[LabeledRecord]) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::default();
        for l in labels {
            m.record(l.class, self.classifier.classify(l.length));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wm_capture::labels::RecordClass;
    use wm_capture::time::Duration;
    use wm_sim::{run_session, SessionConfig};
    use wm_story::bandersnatch::{bandersnatch, tiny_film};
    use wm_story::ViewerScript;

    fn run(seed: u64, choices: &[Choice]) -> wm_sim::SessionOutput {
        let graph = Arc::new(tiny_film());
        let script = ViewerScript::from_choices(choices, Duration::from_millis(900));
        run_session(&SessionConfig::fast(graph, seed, script)).unwrap()
    }

    #[test]
    fn end_to_end_tiny_film() {
        // Train on one session, attack another.
        let train = run(
            100,
            &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
        );
        let attack = WhiteMirror::train(&train.labels, WhiteMirrorConfig::scaled(20)).unwrap();

        let victim = run(
            200,
            &[Choice::Default, Choice::NonDefault, Choice::NonDefault],
        );
        let graph = tiny_film();
        let (decoded, acc) = attack.evaluate(&victim.trace, &graph, &victim.decisions);
        assert_eq!(
            decoded.choice_string(),
            "DNN",
            "decoded {:?}",
            decoded.choices
        );
        assert_eq!(acc.accuracy(), 1.0);
    }

    #[test]
    fn end_to_end_bandersnatch() {
        let graph = Arc::new(bandersnatch());
        let train_script = ViewerScript::sample(300, 14, 0.5);
        let mut cfg = SessionConfig::fast(graph.clone(), 300, train_script);
        cfg.player.time_scale = 40;
        let train = run_session(&cfg).unwrap();
        let attack = WhiteMirror::train(&train.labels, WhiteMirrorConfig::scaled(40)).unwrap();

        let victim_script = ViewerScript::sample(301, 14, 0.5);
        let mut vcfg = SessionConfig::fast(graph.clone(), 301, victim_script);
        vcfg.player.time_scale = 40;
        let victim = run_session(&vcfg).unwrap();
        let (decoded, acc) = attack.evaluate(&victim.trace, &graph, &victim.decisions);
        assert!(
            acc.accuracy() >= 0.9,
            "accuracy {} (decoded {}, truth {})",
            acc.accuracy(),
            decoded.choice_string(),
            victim
                .decisions
                .iter()
                .map(|(_, c)| if *c == Choice::Default { 'D' } else { 'N' })
                .collect::<String>()
        );
    }

    #[test]
    fn tap_gap_downgrades_confidence() {
        let train = run(
            100,
            &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
        );
        let attack = WhiteMirror::train(&train.labels, WhiteMirrorConfig::scaled(20)).unwrap();
        let graph = Arc::new(tiny_film());
        let script = ViewerScript::from_choices(
            &[Choice::Default, Choice::NonDefault, Choice::NonDefault],
            Duration::from_millis(900),
        );
        let mut cfg = SessionConfig::fast(graph.clone(), 200, script);
        let mut plan = wm_chaos::FaultPlan::none();
        plan.push(
            wm_capture::time::SimTime(400_000),
            wm_chaos::FaultKind::TapGap {
                duration: Duration::from_millis(300),
            },
        );
        cfg.chaos = plan;
        let victim = run_session(&cfg).unwrap();
        assert!(victim.stats.tap_frames_dropped > 0);
        let decoded = attack.decode_trace(&victim.trace, &graph);
        assert!(
            decoded.features.stats.gaps > 0,
            "the blind span must surface as a reassembly gap"
        );
        assert!(!decoded.features.gap_times.is_empty());
        assert!(
            decoded.mean_confidence() < 1.0,
            "gap must downgrade confidence (got {})",
            decoded.mean_confidence()
        );
        // Degradation is graceful: the full choice sequence still comes
        // out, each with an explicit confidence.
        assert_eq!(decoded.choices.len(), victim.decisions.len());
        assert!(decoded
            .choices
            .iter()
            .all(|d| d.confidence > 0.0 && d.confidence <= 1.0));
    }

    #[test]
    fn empty_session_confidence_is_defined() {
        // A session with no decoded choices must never produce NaN:
        // mean_confidence is 0.0 and the checked variant is None.
        let empty = DecodedSession {
            choices: Vec::new(),
            provenance: Vec::new(),
            features: ClientFeatures::default(),
        };
        assert_eq!(empty.mean_confidence(), 0.0);
        assert!(!empty.mean_confidence().is_nan());
        assert_eq!(empty.mean_confidence_checked(), None);
        assert_eq!(empty.choice_string(), "");
        // Non-empty sessions agree between the two accessors.
        let train = run(
            100,
            &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
        );
        let attack = WhiteMirror::train(&train.labels, WhiteMirrorConfig::scaled(20)).unwrap();
        let victim = run(
            200,
            &[Choice::Default, Choice::NonDefault, Choice::NonDefault],
        );
        let decoded = attack.decode_trace(&victim.trace, &tiny_film());
        assert_eq!(
            Some(decoded.mean_confidence()),
            decoded.mean_confidence_checked()
        );
        assert!(decoded.mean_confidence().is_finite());
    }

    #[test]
    fn training_requires_report_examples() {
        let labels = vec![LabeledRecord {
            time: wm_capture::time::SimTime::ZERO,
            length: 500,
            class: RecordClass::Other,
        }];
        assert!(WhiteMirror::train(&labels, WhiteMirrorConfig::realtime()).is_none());
    }

    #[test]
    fn model_save_load_roundtrip() {
        let train = run(
            500,
            &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
        );
        let attack = WhiteMirror::train(&train.labels, WhiteMirrorConfig::scaled(20)).unwrap();
        let dir = std::env::temp_dir().join("wm_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bands.json");
        attack.save_model(&path).unwrap();
        let loaded = WhiteMirror::load_model(&path, WhiteMirrorConfig::scaled(20)).unwrap();
        assert_eq!(loaded.classifier().type1, attack.classifier().type1);
        assert_eq!(loaded.classifier().type2, attack.classifier().type2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_confusion_on_heldout() {
        let train = run(
            400,
            &[Choice::NonDefault, Choice::Default, Choice::NonDefault],
        );
        let attack = WhiteMirror::train(&train.labels, WhiteMirrorConfig::scaled(20)).unwrap();
        let heldout = run(401, &[Choice::Default, Choice::NonDefault, Choice::Default]);
        let m = attack.record_confusion(&heldout.labels);
        assert!(m.total() > 10);
        assert!(m.accuracy() > 0.95, "record accuracy {}", m.accuracy());
        assert_eq!(m.recall(RecordClass::Type1), 1.0);
    }
}
