//! E4 / **§V Results**: choice identification across 10 viewing
//! sessions under different operational conditions.
//!
//! The paper: "the choices made by a user can be revealed 96% of the
//! time in the worst case", measured over 10 sessions, each with a
//! different person and a different combination of operational and
//! network conditions.
//!
//! ```sh
//! cargo run --release -p wm-bench --bin results_accuracy
//! ```

use wm_bench::{
    compare_line, graph, run_viewer, sample_behavior, train_attack_for, write_bench_json,
    TraceTally, TIME_SCALE,
};
use wm_core::{
    choice_accuracy, client_app_records, AttackTelemetry, ChoiceAccuracy, ChoiceDecoder,
    DecoderConfig,
};
use wm_dataset::{OperationalConditions, ViewerSpec};
use wm_telemetry::{Registry, Snapshot};

/// Sessions per condition used to evaluate (the paper used one viewing
/// each; more victims per condition tightens the estimate — the
/// per-session numbers are printed too).
const VICTIMS_PER_CONDITION: u64 = 4;

fn main() {
    let graph = graph();
    // Ten conditions spread across the operational grid, like the
    // paper's ten sessions "under different combinations of operational
    // and network conditions".
    let grid = OperationalConditions::grid();
    let conditions: Vec<&OperationalConditions> =
        (0..10).map(|i| &grid[(i * 7) % grid.len()]).collect();

    println!("=== §V Results (reproduced): choice identification accuracy ===\n");
    println!(
        "10 conditions, {} victim sessions each; attack trained per condition\n",
        VICTIMS_PER_CONDITION
    );

    // Attack-side metrics (classify/decode timings, per-class record
    // counts) accumulate in one registry across all conditions;
    // session-side snapshots merge per victim.
    let attack_registry = Registry::new();
    let mut telemetry = Snapshot::default();
    let mut tally = TraceTally::default();

    let mut per_condition: Vec<(String, ChoiceAccuracy, ChoiceAccuracy)> = Vec::new();
    for (i, cond) in conditions.iter().enumerate() {
        let (mut attack, _) = train_attack_for(
            &graph,
            cond,
            &[40_000 + i as u64, 41_000 + i as u64, 42_000 + i as u64],
        );
        attack.set_telemetry(AttackTelemetry::register(&attack_registry));
        let mut agg = ChoiceAccuracy::default();
        let mut greedy_agg = ChoiceAccuracy::default();
        let mut per_session = Vec::new();
        for v in 0..VICTIMS_PER_CONDITION {
            let seed = 50_000 + (i as u64) * 100 + v;
            let viewer = ViewerSpec {
                id: v as u32,
                seed,
                behavior: sample_behavior(seed),
                operational: **cond,
            };
            let out = run_viewer(&graph, &viewer);
            telemetry.merge(&out.telemetry);
            tally.observe(&out.trace_events);
            let (_, acc) = attack.evaluate(&out.trace, &graph, &out.decisions);
            per_session.push(acc.accuracy());
            agg.merge(&acc);
            // Paper-style per-choice (greedy) decoding for comparison.
            let features = client_app_records(&out.trace);
            let greedy = ChoiceDecoder::new(
                attack.classifier(),
                &graph,
                DecoderConfig::scaled(TIME_SCALE),
            )
            .decode(&features.records);
            greedy_agg.merge(&choice_accuracy(&greedy, &out.decisions));
        }
        println!(
            "  session {:>2}  {:<44} beam {:>5.1}%  greedy {:>5.1}%   (beam per-viewing: {})",
            i + 1,
            cond.label(),
            100.0 * agg.accuracy(),
            100.0 * greedy_agg.accuracy(),
            per_session
                .iter()
                .map(|a| format!("{:.0}%", 100.0 * a))
                .collect::<Vec<_>>()
                .join(" ")
        );
        per_condition.push((cond.label(), agg, greedy_agg));
    }

    let mut overall = ChoiceAccuracy::default();
    let mut overall_greedy = ChoiceAccuracy::default();
    for (_, acc, greedy) in &per_condition {
        overall.merge(acc);
        overall_greedy.merge(greedy);
    }
    let worst = per_condition
        .iter()
        .min_by(|a, b| a.1.accuracy().partial_cmp(&b.1.accuracy()).expect("finite"))
        .expect("ten conditions");
    let worst_greedy = per_condition
        .iter()
        .min_by(|a, b| a.2.accuracy().partial_cmp(&b.2.accuracy()).expect("finite"))
        .expect("ten conditions");

    println!();
    println!(
        "{}",
        compare_line(
            "mean accuracy (beam decoder)",
            100.0 * overall.accuracy(),
            "—"
        )
    );
    println!(
        "{}",
        compare_line(
            "mean accuracy (paper-style greedy)",
            100.0 * overall_greedy.accuracy(),
            "—"
        )
    );
    println!(
        "{}",
        compare_line(
            &format!("worst case, beam ({})", worst.0),
            100.0 * worst.1.accuracy(),
            "96% worst case",
        )
    );
    println!(
        "{}",
        compare_line(
            &format!("worst case, greedy ({})", worst_greedy.0),
            100.0 * worst_greedy.2.accuracy(),
            "96% worst case",
        )
    );
    println!(
        "\n  choices evaluated: {} total, {} correct, {} path-misaligned",
        overall.total, overall.correct, overall.misaligned
    );

    telemetry.merge(&attack_registry.snapshot());
    write_bench_json(
        "results_accuracy",
        &[
            ("mean_accuracy_beam", overall.accuracy()),
            ("mean_accuracy_greedy", overall_greedy.accuracy()),
            ("worst_case_beam", worst.1.accuracy()),
            ("worst_case_greedy", worst_greedy.2.accuracy()),
            ("choices_total", overall.total as f64),
        ],
        &telemetry,
        &tally,
    );
}
