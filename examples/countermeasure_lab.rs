//! Countermeasure lab — §VI's "easy fixes" put to the test.
//!
//! ```sh
//! cargo run --release --example countermeasure_lab
//! ```
//!
//! Runs the same viewer under no defense, JSON splitting, compression
//! and constant-size padding; attacks each capture with (a) the
//! record-length decoder and (b) the timing/count decoder the paper
//! predicts survives the fixes.

use std::sync::Arc;
use white_mirror::core::{choice_accuracy, client_app_records};
use white_mirror::defense::{TimingDecoder, TimingDecoderConfig};
use white_mirror::net::time::Duration;
use white_mirror::prelude::*;

const TIME_SCALE: u32 = 40;

fn main() {
    let graph = Arc::new(story::bandersnatch::bandersnatch());
    let defenses = [
        Defense::None,
        Defense::Split { max: 700 },
        Defense::Compress,
        Defense::PadToConstant { size: 4096 },
    ];

    println!(
        "{:<18} {:>14} {:>14}",
        "defense", "length-decoder", "timing-decoder"
    );
    for defense in defenses {
        // Train under the same defense (the attacker adapts), across
        // several controlled sessions so the learned bands cover the
        // full report-length jitter.
        let mut training_labels = Vec::new();
        for seed in [50u64, 52, 53] {
            let mut train_cfg =
                SessionConfig::fast(graph.clone(), seed, ViewerScript::sample(seed, 14, 0.5));
            train_cfg.player.time_scale = TIME_SCALE;
            train_cfg.defense = defense;
            let train = run_session(&train_cfg).expect("training session");
            training_labels.extend(train.labels);
        }

        let mut victim_cfg =
            SessionConfig::fast(graph.clone(), 51, ViewerScript::sample(51, 14, 0.45));
        victim_cfg.player.time_scale = TIME_SCALE;
        victim_cfg.defense = defense;
        let victim = run_session(&victim_cfg).expect("victim session");

        // (a) record-length attack.
        let length_acc =
            match WhiteMirror::train(&training_labels, WhiteMirrorConfig::scaled(TIME_SCALE)) {
                Some(attack) => {
                    let (_, acc) = attack.evaluate(&victim.trace, &graph, &victim.decisions);
                    format!("{:>13.1}%", 100.0 * acc.accuracy())
                }
                None => "  no signature".to_string(),
            };

        // (b) timing/count attack — meaningful when the post sizes are
        // known-constant (padding); without that hint, background
        // telemetry swamps the event stream, so we report it only for
        // the padded condition.
        let features = client_app_records(&victim.trace);
        let mut tcfg = TimingDecoderConfig::new(Duration::from_secs_f64(10.0 / TIME_SCALE as f64));
        // A burst gap shorter than any scaled human reaction time, so
        // the type-1 and a following type-2 never merge into one burst.
        tcfg.burst_gap = Duration::from_secs_f64(0.5 / TIME_SCALE as f64);
        if let Defense::PadToConstant { size } = defense {
            tcfg.exact_post_len = Some(size as u16 + 16);
        }
        if !matches!(defense, Defense::PadToConstant { .. }) {
            println!("{:<18} {} {:>14}", defense.label(), length_acc, "—");
            continue;
        }
        let events = TimingDecoder::new(tcfg).decode(&features.records);
        // Score the timing decoder positionally against the truth.
        let decoded: Vec<white_mirror::core::DecodedChoice> = events
            .iter()
            .zip(victim.decisions.iter())
            .map(|(e, (cp, _))| white_mirror::core::DecodedChoice {
                cp: *cp,
                choice: e.choice,
                time: e.time,
                observed: true,
                confidence: 1.0,
            })
            .collect();
        let timing_acc = choice_accuracy(&decoded, &victim.decisions);

        println!(
            "{:<18} {} {:>13.1}%",
            defense.label(),
            length_acc,
            100.0 * timing_acc.accuracy()
        );
    }
    println!("\nThe paper's prediction holds: splitting/compressing the JSON dents the\nlength channel but the report *pattern* still leaks; even constant-size\npadding leaves the count/timing channel open.");
}
